//! Look-at camera with perspective projection.

use crate::math::{Mat4, Vec3};

/// A pinhole camera; `project` maps world points to pixel coordinates plus
/// a depth value suitable for z-buffering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Point the camera looks at.
    pub target: Vec3,
    /// Up direction hint.
    pub up: Vec3,
    /// Vertical field of view in radians.
    pub fov_y: f64,
    /// Near clip distance.
    pub near: f64,
    /// Far clip distance.
    pub far: f64,
}

impl Camera {
    /// A camera at `eye` looking at `target` with a 60° field of view.
    pub fn look_at(eye: [f64; 3], target: [f64; 3]) -> Self {
        Self {
            eye: Vec3::from_array(eye),
            target: Vec3::from_array(target),
            up: Vec3::new(0.0, 0.0, 1.0),
            fov_y: 60f64.to_radians(),
            near: 0.01,
            far: 1000.0,
        }
    }

    /// Frame an axis-aligned bounding box from direction `dir` so it fills
    /// most of the view — what a ParaView script's `ResetCamera` does.
    pub fn framing(bounds: [f64; 6], dir: [f64; 3]) -> Self {
        let center = Vec3::new(
            0.5 * (bounds[0] + bounds[1]),
            0.5 * (bounds[2] + bounds[3]),
            0.5 * (bounds[4] + bounds[5]),
        );
        let diag = Vec3::new(
            bounds[1] - bounds[0],
            bounds[3] - bounds[2],
            bounds[5] - bounds[4],
        )
        .length()
        .max(1e-9);
        let d = Vec3::from_array(dir).normalized();
        // Fit the bounding sphere in the vertical field of view with a
        // small margin (what ParaView's ResetCamera does).
        let fov_y = 50f64.to_radians();
        let distance = (0.5 * diag) / (fov_y * 0.5).tan() * 1.15;
        let eye = center + d * distance;
        let up = if d.cross(Vec3::new(0.0, 0.0, 1.0)).length() < 1e-6 {
            Vec3::new(0.0, 1.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        Self {
            eye,
            target: center,
            up,
            fov_y: 50f64.to_radians(),
            near: diag * 0.01,
            far: diag * 10.0,
        }
    }

    /// The view matrix (world → camera).
    pub fn view_matrix(&self) -> Mat4 {
        let f = (self.target - self.eye).normalized();
        let s = f.cross(self.up.normalized()).normalized();
        let u = s.cross(f);
        let mut m = Mat4::identity();
        m.m[0] = [s.x, s.y, s.z, -s.dot(self.eye)];
        m.m[1] = [u.x, u.y, u.z, -u.dot(self.eye)];
        m.m[2] = [-f.x, -f.y, -f.z, f.dot(self.eye)];
        m
    }

    /// The perspective projection matrix for an image aspect ratio.
    pub fn projection_matrix(&self, aspect: f64) -> Mat4 {
        let t = 1.0 / (self.fov_y * 0.5).tan();
        let (n, fr) = (self.near, self.far);
        let mut m = Mat4 { m: [[0.0; 4]; 4] };
        m.m[0][0] = t / aspect;
        m.m[1][1] = t;
        m.m[2][2] = (fr + n) / (n - fr);
        m.m[2][3] = 2.0 * fr * n / (n - fr);
        m.m[3][2] = -1.0;
        m
    }

    /// Project a world point to `(pixel_x, pixel_y, depth)`; `None` when
    /// behind the near plane. Depth increases away from the camera.
    pub fn project(&self, p: [f64; 3], width: usize, height: usize) -> Option<(f64, f64, f64)> {
        let aspect = width as f64 / height as f64;
        let vp = self.projection_matrix(aspect).mul(&self.view_matrix());
        let h = vp.transform_point(Vec3::from_array(p));
        if h[3] <= 1e-12 {
            return None;
        }
        let ndc = [h[0] / h[3], h[1] / h[3], h[2] / h[3]];
        let x = (ndc[0] * 0.5 + 0.5) * width as f64;
        let y = (1.0 - (ndc[1] * 0.5 + 0.5)) * height as f64;
        Some((x, y, h[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_projects_to_image_center() {
        let cam = Camera::look_at([5.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        let (x, y, depth) = cam.project([0.0, 0.0, 0.0], 200, 100).unwrap();
        assert!((x - 100.0).abs() < 1e-9);
        assert!((y - 50.0).abs() < 1e-9);
        assert!(
            (depth - 5.0).abs() < 1e-9,
            "depth is eye distance along view"
        );
    }

    #[test]
    fn points_behind_camera_are_rejected() {
        let cam = Camera::look_at([5.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        assert!(cam.project([10.0, 0.0, 0.0], 100, 100).is_none());
    }

    #[test]
    fn nearer_points_have_smaller_depth() {
        let cam = Camera::look_at([5.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        let (_, _, d_near) = cam.project([2.0, 0.0, 0.0], 100, 100).unwrap();
        let (_, _, d_far) = cam.project([-2.0, 0.0, 0.0], 100, 100).unwrap();
        assert!(d_near < d_far);
    }

    #[test]
    fn framing_sees_the_whole_box() {
        let bounds = [0.0, 1.0, 0.0, 1.0, 0.0, 2.0];
        let cam = Camera::framing(bounds, [1.0, 1.0, 0.3]);
        for corner in [
            [0.0, 0.0, 0.0],
            [1.0, 1.0, 2.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 2.0],
        ] {
            let p = cam.project(corner, 400, 400);
            assert!(p.is_some());
            let (x, y, _) = p.unwrap();
            assert!(x > -40.0 && x < 440.0, "x={x}");
            assert!(y > -40.0 && y < 440.0, "y={y}");
        }
    }

    #[test]
    fn framing_straight_down_picks_valid_up() {
        let cam = Camera::framing([0.0, 1.0, 0.0, 1.0, 0.0, 1.0], [0.0, 0.0, 1.0]);
        assert!(cam.project([0.5, 0.5, 0.5], 100, 100).is_some());
    }
}
