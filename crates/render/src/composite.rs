//! Sort-last parallel compositing.
//!
//! Every rank rasterizes its local blocks into a full-size framebuffer;
//! the images are then merged by per-pixel depth test. Two strategies are
//! provided (an ablation in DESIGN.md):
//!
//! * [`composite_to_root`] — serial gather: every rank sends its image to
//!   rank 0, which merges. O(P) messages into one rank.
//! * [`composite_tree`] — binary-tree exchange: ⌈log₂P⌉ rounds of pairwise
//!   merges; rank 0 ends with the result.

use crate::raster::Framebuffer;
use commsim::Comm;

const TAG_COMPOSITE: u64 = 0x636f_6d70;

/// Wire/work size of a framebuffer. Image data does not scale with the
/// mesh, so on throughput-derated machine models (see
/// [`commsim::MachineModel::derate_throughput`]) the declared size is
/// divided by the derate factor — charging image traffic at the machine's
/// *true* rates.
fn fb_nbytes(comm: &Comm, fb: &Framebuffer) -> u64 {
    let raw = (fb.color.len() * 3 + fb.depth.len() * 4) as f64;
    (raw / comm.machine().derate_factor).max(1.0) as u64
}

/// Gather-and-merge compositing. Returns the composited image on rank 0,
/// `None` elsewhere.
pub fn composite_to_root(comm: &mut Comm, fb: Framebuffer) -> Option<Framebuffer> {
    let rank = comm.rank();
    let size = comm.size();
    if size == 1 {
        return Some(fb);
    }
    if rank != 0 {
        let bytes = fb_nbytes(comm, &fb);
        comm.send(0, TAG_COMPOSITE, fb, bytes);
        return None;
    }
    let mut acc = fb;
    // Merge cost: one pass over the image per peer (pixel-proportional, so
    // charged at true rates via the derate-adjusted size).
    for src in 1..size {
        let other: Framebuffer = comm.recv(src, TAG_COMPOSITE);
        let work = fb_nbytes(comm, &acc) as f64;
        comm.compute_host(work * 0.3, work * 2.0);
        acc.composite_in(&other);
    }
    Some(acc)
}

/// Binary-tree compositing: ranks pair up across ⌈log₂P⌉ stages; the lower
/// rank of each pair keeps the merged image. Rank 0 returns the result.
pub fn composite_tree(comm: &mut Comm, fb: Framebuffer) -> Option<Framebuffer> {
    let rank = comm.rank();
    let size = comm.size();
    let mut acc = Some(fb);
    let mut stride = 1;
    while stride < size {
        if rank.is_multiple_of(2 * stride) {
            let partner = rank + stride;
            if partner < size {
                let other: Framebuffer = comm.recv(partner, TAG_COMPOSITE);
                let mine = acc.as_mut().expect("active rank holds an image");
                let work = fb_nbytes(comm, mine) as f64;
                comm.compute_host(work * 0.3, work * 2.0);
                mine.composite_in(&other);
            }
        } else if rank % (2 * stride) == stride {
            let partner = rank - stride;
            let mine = acc.take().expect("active rank holds an image");
            let bytes = fb_nbytes(comm, &mine);
            comm.send(partner, TAG_COMPOSITE, mine, bytes);
            // This rank is done; it still loops to keep collective symmetry
            // but sends nothing further.
        }
        stride *= 2;
    }
    if rank == 0 {
        acc
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::colormap::Colormap;
    use crate::filters::TriangleSoup;
    use commsim::{run_ranks, MachineModel};

    fn cam() -> Camera {
        let mut c = Camera::look_at([0.0, 0.0, 5.0], [0.0, 0.0, 0.0]);
        c.up = crate::math::Vec3::new(0.0, 1.0, 0.0);
        c
    }

    /// Each rank draws a triangle at depth = rank; rank 0's must win.
    fn rank_triangle(rank: usize) -> TriangleSoup {
        let z = 1.0 - rank as f64; // rank 0 nearest to the camera at z=5
        TriangleSoup {
            positions: vec![[-1.0, -1.0, z], [1.0, -1.0, z], [0.0, 1.0, z]],
            scalars: vec![rank as f64; 3],
        }
    }

    fn render_local(rank: usize) -> Framebuffer {
        let mut fb = Framebuffer::new(24, 24);
        fb.draw(
            &cam(),
            &rank_triangle(rank),
            &Colormap::grayscale(),
            (0.0, 4.0),
        );
        fb
    }

    #[test]
    fn gather_compositing_keeps_nearest_rank() {
        let res = run_ranks(4, MachineModel::test_tiny(), |comm| {
            let fb = render_local(comm.rank());
            composite_to_root(comm, fb).map(|f| f.color[12 * 24 + 12])
        });
        // Only root has an image; center pixel belongs to rank 0 (scalar 0
        // → dark gray, not background).
        assert!(res[1].is_none() && res[2].is_none() && res[3].is_none());
        let center = res[0].unwrap();
        assert_ne!(center, crate::raster::BACKGROUND);
        assert!(
            center[0] < 60,
            "rank 0 (scalar 0) must be in front: {center:?}"
        );
    }

    #[test]
    fn tree_and_gather_agree() {
        let gather = run_ranks(4, MachineModel::test_tiny(), |comm| {
            composite_to_root(comm, render_local(comm.rank())).map(|f| f.color)
        });
        let tree = run_ranks(4, MachineModel::test_tiny(), |comm| {
            composite_tree(comm, render_local(comm.rank())).map(|f| f.color)
        });
        assert_eq!(gather[0], tree[0]);
    }

    #[test]
    fn tree_works_for_non_power_of_two() {
        let res = run_ranks(3, MachineModel::test_tiny(), |comm| {
            composite_tree(comm, render_local(comm.rank())).map(|f| f.coverage())
        });
        assert!(res[0].unwrap() > 0.0);
        assert!(res[1].is_none());
        assert!(res[2].is_none());
    }

    #[test]
    fn single_rank_is_identity() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let fb = render_local(0);
            let before = fb.color.clone();
            let out = composite_to_root(comm, fb).unwrap();
            out.color == before
        });
        assert!(res[0]);
    }
}
