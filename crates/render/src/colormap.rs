//! Scalar → color lookup tables.

/// A piecewise-linear colormap over control points in [0, 1].
#[derive(Debug, Clone, PartialEq)]
pub struct Colormap {
    /// (position in [0,1], rgb) control points, ascending.
    stops: Vec<(f64, [f64; 3])>,
}

impl Colormap {
    /// The perceptually-uniform default used by ParaView/matplotlib.
    pub fn viridis() -> Self {
        Self {
            stops: vec![
                (0.00, [0.267, 0.005, 0.329]),
                (0.25, [0.229, 0.322, 0.546]),
                (0.50, [0.128, 0.567, 0.551]),
                (0.75, [0.369, 0.789, 0.383]),
                (1.00, [0.993, 0.906, 0.144]),
            ],
        }
    }

    /// The diverging cool-warm map (classic CFD pressure rendering).
    pub fn cool_warm() -> Self {
        Self {
            stops: vec![
                (0.0, [0.230, 0.299, 0.754]),
                (0.5, [0.865, 0.865, 0.865]),
                (1.0, [0.706, 0.016, 0.150]),
            ],
        }
    }

    /// Grayscale.
    pub fn grayscale() -> Self {
        Self {
            stops: vec![(0.0, [0.0; 3]), (1.0, [1.0; 3])],
        }
    }

    /// By name ("viridis", "cool-warm", "grayscale"); unknown → viridis.
    pub fn by_name(name: &str) -> Self {
        match name {
            "cool-warm" | "coolwarm" => Self::cool_warm(),
            "grayscale" | "gray" => Self::grayscale(),
            _ => Self::viridis(),
        }
    }

    /// The control points, for fingerprinting a colormap into a cache key.
    pub fn stops(&self) -> &[(f64, [f64; 3])] {
        &self.stops
    }

    /// Map `value` within `[lo, hi]` to 8-bit RGB (clamped; NaN → black).
    pub fn map(&self, value: f64, lo: f64, hi: f64) -> [u8; 3] {
        if value.is_nan() {
            return [0, 0, 0];
        }
        let t = if hi > lo {
            ((value - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.5
        };
        let rgb = self.sample(t);
        [
            (rgb[0] * 255.0).round() as u8,
            (rgb[1] * 255.0).round() as u8,
            (rgb[2] * 255.0).round() as u8,
        ]
    }

    fn sample(&self, t: f64) -> [f64; 3] {
        let stops = &self.stops;
        if t <= stops[0].0 {
            return stops[0].1;
        }
        for w in stops.windows(2) {
            let (t0, c0) = w[0];
            let (t1, c1) = w[1];
            if t <= t1 {
                let f = (t - t0) / (t1 - t0);
                return [
                    c0[0] + f * (c1[0] - c0[0]),
                    c0[1] + f * (c1[1] - c0[1]),
                    c0[2] + f * (c1[2] - c0[2]),
                ];
            }
        }
        stops[stops.len() - 1].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_stops() {
        let cm = Colormap::viridis();
        assert_eq!(cm.map(0.0, 0.0, 1.0), [68, 1, 84]);
        assert_eq!(cm.map(1.0, 0.0, 1.0), [253, 231, 37]);
    }

    #[test]
    fn values_clamp_outside_range() {
        let cm = Colormap::grayscale();
        assert_eq!(cm.map(-10.0, 0.0, 1.0), [0, 0, 0]);
        assert_eq!(cm.map(10.0, 0.0, 1.0), [255, 255, 255]);
    }

    #[test]
    fn midpoint_interpolates() {
        let cm = Colormap::grayscale();
        let [r, g, b] = cm.map(0.5, 0.0, 1.0);
        assert_eq!(r, g);
        assert_eq!(g, b);
        assert!((r as i32 - 128).abs() <= 1);
    }

    #[test]
    fn degenerate_range_and_nan_are_safe() {
        let cm = Colormap::cool_warm();
        // lo == hi → midpoint color.
        assert_eq!(cm.map(5.0, 5.0, 5.0), cm.map(0.5, 0.0, 1.0));
        assert_eq!(cm.map(f64::NAN, 0.0, 1.0), [0, 0, 0]);
    }

    #[test]
    fn by_name_selects() {
        assert_eq!(Colormap::by_name("cool-warm"), Colormap::cool_warm());
        assert_eq!(Colormap::by_name("gray"), Colormap::grayscale());
        assert_eq!(Colormap::by_name("whatever"), Colormap::viridis());
    }
}
