//! Z-buffered triangle rasterizer with Lambertian shading.

use crate::camera::Camera;
use crate::colormap::Colormap;
use crate::filters::TriangleSoup;
use crate::math::Vec3;

/// An RGB color + depth image.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// RGB8 pixels, row-major.
    pub color: Vec<[u8; 3]>,
    /// Depth per pixel; `f32::INFINITY` = background.
    pub depth: Vec<f32>,
}

/// Background color (dark slate, ParaView-like).
pub const BACKGROUND: [u8; 3] = [32, 32, 40];

impl Default for Framebuffer {
    /// An empty 0×0 framebuffer — a placeholder for `mem::take` when a
    /// buffer is handed off to the compositor.
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl Framebuffer {
    /// A cleared framebuffer.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            color: vec![BACKGROUND; width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Clear to background without touching the allocations (buffer reuse
    /// across passes/triggers).
    pub fn reset(&mut self) {
        self.color.fill(BACKGROUND);
        self.depth.fill(f32::INFINITY);
    }

    /// Resize if needed, then clear. When the size already matches, the
    /// existing allocations are reused as-is.
    pub fn reset_to(&mut self, width: usize, height: usize) {
        if self.width != width || self.height != height {
            self.width = width;
            self.height = height;
            self.color.resize(width * height, BACKGROUND);
            self.depth.resize(width * height, f32::INFINITY);
        }
        self.reset();
    }

    /// Bytes held (for memory accounting).
    pub fn heap_bytes(&self) -> u64 {
        (self.color.capacity() * 3 + self.depth.capacity() * 4) as u64
    }

    /// Fraction of pixels covered by geometry.
    pub fn coverage(&self) -> f64 {
        let hit = self.depth.iter().filter(|d| d.is_finite()).count();
        hit as f64 / self.depth.len().max(1) as f64
    }

    /// Rasterize a triangle soup through `camera`, coloring scalars with
    /// `colormap` over `range`. Returns the number of triangles drawn.
    pub fn draw(
        &mut self,
        camera: &Camera,
        soup: &TriangleSoup,
        colormap: &Colormap,
        range: (f64, f64),
    ) -> usize {
        let light = Vec3::new(0.4, 0.3, 0.85).normalized();
        let mut drawn = 0;
        for t in 0..soup.n_triangles() {
            let p = [
                soup.positions[3 * t],
                soup.positions[3 * t + 1],
                soup.positions[3 * t + 2],
            ];
            let s = [
                soup.scalars[3 * t],
                soup.scalars[3 * t + 1],
                soup.scalars[3 * t + 2],
            ];
            // World-space normal for shading.
            let e1 = Vec3::from_array(p[1]) - Vec3::from_array(p[0]);
            let e2 = Vec3::from_array(p[2]) - Vec3::from_array(p[0]);
            let normal = e1.cross(e2).normalized();
            let intensity = 0.35 + 0.65 * normal.dot(light).abs();

            let Some(v0) = camera.project(p[0], self.width, self.height) else {
                continue;
            };
            let Some(v1) = camera.project(p[1], self.width, self.height) else {
                continue;
            };
            let Some(v2) = camera.project(p[2], self.width, self.height) else {
                continue;
            };
            if self.raster_one(v0, v1, v2, s, intensity, colormap, range) {
                drawn += 1;
            }
        }
        drawn
    }

    #[allow(clippy::too_many_arguments)]
    fn raster_one(
        &mut self,
        v0: (f64, f64, f64),
        v1: (f64, f64, f64),
        v2: (f64, f64, f64),
        s: [f64; 3],
        intensity: f64,
        colormap: &Colormap,
        range: (f64, f64),
    ) -> bool {
        let area = edge(v0, v1, v2);
        if area.abs() < 1e-12 {
            return false;
        }
        let min_x = v0.0.min(v1.0).min(v2.0).floor().max(0.0) as usize;
        let max_x = (v0.0.max(v1.0).max(v2.0).ceil() as isize).min(self.width as isize - 1);
        let min_y = v0.1.min(v1.1).min(v2.1).floor().max(0.0) as usize;
        let max_y = (v0.1.max(v1.1).max(v2.1).ceil() as isize).min(self.height as isize - 1);
        if max_x < min_x as isize || max_y < min_y as isize {
            return false;
        }
        let mut touched = false;
        for y in min_y..=(max_y as usize) {
            for x in min_x..=(max_x as usize) {
                let pt = (x as f64 + 0.5, y as f64 + 0.5, 0.0);
                let w0 = edge(v1, v2, pt) / area;
                let w1 = edge(v2, v0, pt) / area;
                let w2 = edge(v0, v1, pt) / area;
                if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                    continue;
                }
                let depth = (w0 * v0.2 + w1 * v1.2 + w2 * v2.2) as f32;
                let idx = y * self.width + x;
                if depth < self.depth[idx] {
                    self.depth[idx] = depth;
                    let scalar = w0 * s[0] + w1 * s[1] + w2 * s[2];
                    let rgb = colormap.map(scalar, range.0, range.1);
                    self.color[idx] = [
                        (rgb[0] as f64 * intensity) as u8,
                        (rgb[1] as f64 * intensity) as u8,
                        (rgb[2] as f64 * intensity) as u8,
                    ];
                    touched = true;
                }
            }
        }
        touched
    }

    /// Burn a vertical colormap legend into the right edge of the image
    /// (strip + tick marks), as ParaView's scalar bar does. Call after
    /// compositing, on the rank that owns the final image.
    pub fn draw_legend(&mut self, colormap: &Colormap, range: (f64, f64)) {
        if self.width < 40 || self.height < 40 {
            return; // too small for a legend
        }
        let bar_w = (self.width / 40).clamp(6, 24);
        let margin = bar_w;
        let x0 = self.width - margin - bar_w;
        let y0 = self.height / 10;
        let y1 = self.height - self.height / 10;
        for y in y0..y1 {
            // Top of the bar = max of the range.
            let t = 1.0 - (y - y0) as f64 / (y1 - y0).max(1) as f64;
            let rgb = colormap.map(range.0 + t * (range.1 - range.0), range.0, range.1);
            for x in x0..x0 + bar_w {
                self.color[y * self.width + x] = rgb;
            }
        }
        // Tick marks at 0, ½, 1 of the range.
        for frac in [0.0f64, 0.5, 1.0] {
            let y = y1 - 1 - ((y1 - y0 - 1) as f64 * frac) as usize;
            for x in x0.saturating_sub(4)..x0 {
                self.color[y * self.width + x] = [255, 255, 255];
            }
        }
    }

    /// Merge another framebuffer into this one by depth test (the
    /// compositing operator for sort-last parallel rendering).
    pub fn composite_in(&mut self, other: &Framebuffer) {
        assert_eq!(self.width, other.width, "framebuffer size mismatch");
        assert_eq!(self.height, other.height, "framebuffer size mismatch");
        for i in 0..self.depth.len() {
            if other.depth[i] < self.depth[i] {
                self.depth[i] = other.depth[i];
                self.color[i] = other.color[i];
            }
        }
    }

    /// Flatten to bytes (RGB interleaved) for image encoders.
    pub fn rgb_bytes(&self) -> Vec<u8> {
        self.color.iter().flat_map(|c| c.iter().copied()).collect()
    }
}

fn edge(a: (f64, f64, f64), b: (f64, f64, f64), p: (f64, f64, f64)) -> f64 {
    (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_soup(z: f64, scalar: f64) -> TriangleSoup {
        TriangleSoup {
            positions: vec![[-1.0, -1.0, z], [1.0, -1.0, z], [0.0, 1.0, z]],
            scalars: vec![scalar; 3],
        }
    }

    fn camera() -> Camera {
        // Look down -z from above at the x-y plane... actually from +z.
        let mut c = Camera::look_at([0.0, 0.0, 5.0], [0.0, 0.0, 0.0]);
        c.up = crate::math::Vec3::new(0.0, 1.0, 0.0);
        c
    }

    #[test]
    fn draw_covers_center_pixels() {
        let mut fb = Framebuffer::new(64, 64);
        let drawn = fb.draw(
            &camera(),
            &triangle_soup(0.0, 0.5),
            &Colormap::grayscale(),
            (0.0, 1.0),
        );
        assert_eq!(drawn, 1);
        assert!(fb.coverage() > 0.02, "coverage {}", fb.coverage());
        let center = fb.color[32 * 64 + 32];
        assert_ne!(center, BACKGROUND);
        assert!(fb.depth[32 * 64 + 32].is_finite());
    }

    #[test]
    fn nearer_triangle_wins_depth_test() {
        let mut fb = Framebuffer::new(32, 32);
        let cm = Colormap::grayscale();
        fb.draw(&camera(), &triangle_soup(0.0, 0.0), &cm, (0.0, 1.0)); // far, dark
        fb.draw(&camera(), &triangle_soup(1.0, 1.0), &cm, (0.0, 1.0)); // near, bright
        let center = fb.color[16 * 32 + 16];
        assert!(center[0] > 128, "near bright triangle must win: {center:?}");
        // Draw order must not matter.
        let mut fb2 = Framebuffer::new(32, 32);
        fb2.draw(&camera(), &triangle_soup(1.0, 1.0), &cm, (0.0, 1.0));
        fb2.draw(&camera(), &triangle_soup(0.0, 0.0), &cm, (0.0, 1.0));
        assert_eq!(fb.color, fb2.color);
    }

    #[test]
    fn composite_in_keeps_nearest_fragments() {
        let cm = Colormap::grayscale();
        let mut a = Framebuffer::new(32, 32);
        a.draw(&camera(), &triangle_soup(0.0, 0.0), &cm, (0.0, 1.0));
        let mut b = Framebuffer::new(32, 32);
        b.draw(&camera(), &triangle_soup(1.0, 1.0), &cm, (0.0, 1.0));
        let mut direct = Framebuffer::new(32, 32);
        direct.draw(&camera(), &triangle_soup(0.0, 0.0), &cm, (0.0, 1.0));
        direct.draw(&camera(), &triangle_soup(1.0, 1.0), &cm, (0.0, 1.0));
        a.composite_in(&b);
        assert_eq!(a.color, direct.color, "compositing == single-pass render");
    }

    #[test]
    fn degenerate_triangles_are_skipped() {
        let mut fb = Framebuffer::new(16, 16);
        let soup = TriangleSoup {
            positions: vec![[0.0; 3], [0.0; 3], [0.0; 3]],
            scalars: vec![0.0; 3],
        };
        assert_eq!(
            fb.draw(&camera(), &soup, &Colormap::viridis(), (0.0, 1.0)),
            0
        );
        assert_eq!(fb.coverage(), 0.0);
    }

    #[test]
    fn offscreen_triangles_do_not_panic() {
        let mut fb = Framebuffer::new(16, 16);
        let soup = TriangleSoup {
            positions: vec![
                [100.0, 100.0, 0.0],
                [101.0, 100.0, 0.0],
                [100.0, 101.0, 0.0],
            ],
            scalars: vec![0.0; 3],
        };
        fb.draw(&camera(), &soup, &Colormap::viridis(), (0.0, 1.0));
        assert_eq!(fb.coverage(), 0.0);
    }

    #[test]
    fn legend_paints_colormap_strip_with_ticks() {
        let mut fb = Framebuffer::new(200, 100);
        fb.draw_legend(&Colormap::grayscale(), (0.0, 1.0));
        // The strip lives near the right edge; top should be bright (max),
        // bottom dark (min).
        let bar_w = (200usize / 40).clamp(6, 24);
        let x = 200 - bar_w - bar_w / 2;
        let top = fb.color[(100 / 10) * 200 + x];
        let bottom = fb.color[(100 - 100 / 10 - 1) * 200 + x];
        assert!(top[0] > 200, "top of bar near max: {top:?}");
        assert!(bottom[0] < 60, "bottom of bar near min: {bottom:?}");
        // White tick marks appear left of the bar.
        let has_tick = fb.color.contains(&[255, 255, 255]);
        assert!(has_tick);
        // The image center is untouched.
        assert_eq!(fb.color[50 * 200 + 100], BACKGROUND);
    }

    #[test]
    fn legend_skips_tiny_images() {
        let mut fb = Framebuffer::new(16, 16);
        let before = fb.color.clone();
        fb.draw_legend(&Colormap::viridis(), (0.0, 1.0));
        assert_eq!(fb.color, before);
    }

    #[test]
    fn rgb_bytes_layout() {
        let fb = Framebuffer::new(2, 1);
        let bytes = fb.rgb_bytes();
        assert_eq!(bytes.len(), 6);
        assert_eq!(&bytes[0..3], &BACKGROUND);
    }
}
