//! Image encoders: PNG (stored-deflate, spec-compliant) and PPM.
//!
//! The PNG encoder emits uncompressed deflate blocks inside a valid zlib
//! stream with correct CRC32/Adler32 checksums — readable by any viewer,
//! no compression dependency. The paper's storage-economy claim (6.5 MB of
//! images vs 19 GB of checkpoints) is reproduced from the byte counts these
//! encoders return.

use crate::raster::Framebuffer;

/// Encode a framebuffer as a binary PPM (P6).
pub fn encode_ppm(fb: &Framebuffer) -> Vec<u8> {
    let mut out = format!("P6\n{} {}\n255\n", fb.width, fb.height).into_bytes();
    out.extend(fb.rgb_bytes());
    out
}

/// Encode a framebuffer as an 8-bit RGB PNG.
pub fn encode_png(fb: &Framebuffer) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);

    // IHDR
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&(fb.width as u32).to_be_bytes());
    ihdr.extend_from_slice(&(fb.height as u32).to_be_bytes());
    ihdr.extend_from_slice(&[8, 2, 0, 0, 0]); // 8-bit, RGB, deflate, none, none
    write_chunk(&mut out, b"IHDR", &ihdr);

    // Raw scanlines, each prefixed with filter type 0.
    let rgb = fb.rgb_bytes();
    let stride = fb.width * 3;
    let mut raw = Vec::with_capacity((stride + 1) * fb.height);
    for row in 0..fb.height {
        raw.push(0);
        raw.extend_from_slice(&rgb[row * stride..(row + 1) * stride]);
    }
    write_chunk(&mut out, b"IDAT", &zlib_stored(&raw));
    write_chunk(&mut out, b"IEND", &[]);
    out
}

fn write_chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let mut crc = Crc32::new();
    crc.update(kind);
    crc.update(data);
    out.extend_from_slice(&crc.finish().to_be_bytes());
}

/// Wrap raw bytes in a zlib stream of stored (uncompressed) deflate blocks.
fn zlib_stored(raw: &[u8]) -> Vec<u8> {
    let mut z = vec![0x78, 0x01]; // 32K window, fastest
    let mut chunks = raw.chunks(65535).peekable();
    if raw.is_empty() {
        // A zero-length final stored block.
        z.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
    }
    while let Some(c) = chunks.next() {
        let final_block = chunks.peek().is_none();
        z.push(if final_block { 1 } else { 0 });
        let len = c.len() as u16;
        z.extend_from_slice(&len.to_le_bytes());
        z.extend_from_slice(&(!len).to_le_bytes());
        z.extend_from_slice(c);
    }
    z.extend_from_slice(&adler32(raw).to_be_bytes());
    z
}

fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for &byte in data {
        a = (a + byte as u32) % MOD;
        b = (b + a) % MOD;
    }
    (b << 16) | a
}

/// Incremental CRC-32 (ISO 3309, as PNG requires).
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, data: &[u8]) {
        for &byte in data {
            let mut c = (self.state ^ byte as u32) & 0xFF;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            self.state = (self.state >> 8) ^ c;
        }
    }

    fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC32("123456789") = 0xCBF43926.
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn adler32_known_vector() {
        // Adler32("Wikipedia") = 0x11E60398.
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn ppm_header_and_size() {
        let fb = Framebuffer::new(4, 3);
        let ppm = encode_ppm(&fb);
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn png_structure_is_valid() {
        let mut fb = Framebuffer::new(8, 8);
        fb.color[0] = [255, 0, 0];
        let png = encode_png(&fb);
        assert_eq!(
            &png[0..8],
            &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]
        );
        // IHDR immediately after the signature.
        assert_eq!(&png[12..16], b"IHDR");
        assert_eq!(u32::from_be_bytes(png[16..20].try_into().unwrap()), 8);
        assert_eq!(u32::from_be_bytes(png[20..24].try_into().unwrap()), 8);
        // IEND terminates the file.
        assert_eq!(&png[png.len() - 8..png.len() - 4], b"IEND");
    }

    #[test]
    fn png_decodes_back_with_a_manual_inflater() {
        // Parse our own stored-deflate stream: enough to verify round-trip.
        let mut fb = Framebuffer::new(3, 2);
        for (i, px) in fb.color.iter_mut().enumerate() {
            *px = [i as u8, (i * 2) as u8, (i * 3) as u8];
        }
        let png = encode_png(&fb);
        // Locate IDAT.
        let mut pos = 8;
        let mut idat = Vec::new();
        while pos < png.len() {
            let len = u32::from_be_bytes(png[pos..pos + 4].try_into().unwrap()) as usize;
            let kind = &png[pos + 4..pos + 8];
            if kind == b"IDAT" {
                idat.extend_from_slice(&png[pos + 8..pos + 8 + len]);
            }
            pos += 12 + len;
        }
        // Skip zlib header, read stored blocks.
        let mut raw = Vec::new();
        let mut p = 2;
        loop {
            let final_block = idat[p] & 1 == 1;
            let len = u16::from_le_bytes(idat[p + 1..p + 3].try_into().unwrap()) as usize;
            raw.extend_from_slice(&idat[p + 5..p + 5 + len]);
            p += 5 + len;
            if final_block {
                break;
            }
        }
        assert_eq!(adler32(&raw).to_be_bytes(), idat[p..p + 4]);
        // Row 0: filter byte + 9 RGB bytes.
        assert_eq!(raw[0], 0);
        assert_eq!(&raw[1..4], &[0, 0, 0]);
        assert_eq!(&raw[4..7], &[1, 2, 3]);
    }

    #[test]
    fn empty_image_still_encodes() {
        let fb = Framebuffer::new(0, 0);
        let png = encode_png(&fb);
        assert!(png.len() > 40);
        assert_eq!(&png[png.len() - 8..png.len() - 4], b"IEND");
    }

    #[test]
    fn large_image_splits_deflate_blocks() {
        // > 65535 raw bytes forces multiple stored blocks.
        let fb = Framebuffer::new(200, 120); // 200*3+1 = 601 B/row × 120 = 72120
        let png = encode_png(&fb);
        assert!(png.len() > 72120, "all raw bytes must be present");
    }
}
