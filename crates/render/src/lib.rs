//! `render` — a software scientific-visualization pipeline, the
//! reproduction's **ParaView Catalyst (+OSPRay)**.
//!
//! The paper's Catalyst configurations "render two images using ParaView
//! over Python" per trigger. With no VTK/ParaView available, this crate
//! rebuilds the pipeline stages that workload exercises:
//!
//! * [`filters`] — geometry extraction from unstructured grids: plane
//!   slices and isocontours via marching tetrahedra (each hex split into
//!   six tets), plus external-surface extraction.
//! * [`colormap`] — viridis / cool-warm lookup tables over a scalar range.
//! * [`camera`] — look-at + perspective projection.
//! * [`raster`] — a z-buffered triangle rasterizer with Lambertian shading
//!   (the OSPRay stand-in; same output contract: a shaded, depth-correct
//!   image of the extracted geometry).
//! * [`composite`] — sort-last parallel rendering: every rank rasterizes
//!   its local blocks, then color+depth images are depth-composited to
//!   rank 0 (serial gather or binary-tree exchange).
//! * [`image`] — PNG (stored-deflate, CRC-correct) and PPM encoders.
//! * [`pipeline`] — a declarative render pipeline (the `analysis.py`
//!   analogue) and [`pipeline::CatalystAnalysis`], the
//!   [`insitu::AnalysisAdaptor`] that the paper's Catalyst configuration
//!   enables.
//!
//! Rendering work charges host compute time on the virtual clock (Catalyst
//! rendering is CPU-side in the paper's setup), and image files charge
//! filesystem writes — giving the figure harnesses the same measurable
//! quantities the paper reports.

pub mod camera;
pub mod colormap;
pub mod composite;
pub mod filters;
pub mod image;
pub mod math;
pub mod pipeline;
pub mod raster;

pub use camera::Camera;
pub use colormap::Colormap;
pub use composite::composite_to_root;
pub use filters::{contour, slice_plane, surface, threshold, TriangleSoup};
pub use pipeline::{
    CatalystAnalysis, FrameCache, FrameKey, RenderPass, RenderPipeline, RenderScratch,
};
pub use raster::Framebuffer;
