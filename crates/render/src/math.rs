//! Minimal 3-D vector / 4×4 matrix math for the rendering pipeline.

/// A 3-vector of f64.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// From a coordinate array.
    pub fn from_array(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector (zero vector stays zero).
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l > 0.0 {
            self * (1.0 / l)
        } else {
            self
        }
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

/// Row-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Rows of the matrix.
    pub m: [[f64; 4]; 4],
}

impl Mat4 {
    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Self { m }
    }

    /// Matrix product `self * o`.
    #[allow(clippy::needless_range_loop)] // ij-indexing mirrors the math
    pub fn mul(&self, o: &Mat4) -> Mat4 {
        let mut out = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                out[i][j] = (0..4).map(|k| self.m[i][k] * o.m[k][j]).sum();
            }
        }
        Mat4 { m: out }
    }

    /// Transform a point (w = 1) and return the homogeneous 4-vector.
    pub fn transform_point(&self, p: Vec3) -> [f64; 4] {
        let v = [p.x, p.y, p.z, 1.0];
        let mut out = [0.0; 4];
        for (i, row) in self.m.iter().enumerate() {
            out[i] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(a.dot(b), 0.0);
        assert_eq!((a + b).length(), 2.0f64.sqrt());
        assert!(((a + b).normalized().length() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::default().normalized(), Vec3::default());
    }

    #[test]
    fn identity_transform_is_noop() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        let h = Mat4::identity().transform_point(p);
        assert_eq!(h, [1.0, -2.0, 3.0, 1.0]);
    }

    #[test]
    fn matrix_product_associates_with_transform() {
        let mut a = Mat4::identity();
        a.m[0][3] = 5.0; // translate x by 5
        let mut b = Mat4::identity();
        b.m[1][1] = 2.0; // scale y by 2
        let ab = a.mul(&b);
        let p = Vec3::new(1.0, 1.0, 0.0);
        let direct = a.transform_point(Vec3::new(1.0, 2.0, 0.0));
        let composed = ab.transform_point(p);
        assert_eq!(direct, composed);
    }
}
