//! The declarative render pipeline and the Catalyst-style analysis adaptor.
//!
//! A [`RenderPipeline`] plays the role of the paper's `analysis.py`
//! ParaView script: a fixed list of passes (filter → colormap → camera),
//! each producing one image per trigger. [`CatalystAnalysis`] wires a
//! pipeline into the SENSEI-style [`insitu::AnalysisAdaptor`] contract; the
//! paper's Catalyst endpoint "renders two images using ParaView" — the
//! default pipeline here does exactly that (a slice and a contour).

use crate::camera::Camera;
use crate::colormap::Colormap;
use crate::composite::{composite_to_root, composite_tree};
use crate::filters::{self, TriangleSoup};
use crate::image::encode_png;
use crate::raster::Framebuffer;
use commsim::{Comm, ReduceOp};
use insitu::configurable::{AdaptorFactory, AnalysisSpec};
use insitu::{AnalysisAdaptor, DataAdaptor};
use meshdata::{Centering, MultiBlock};
use std::io::Write;

/// Geometry extraction for one pass.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterKind {
    /// Plane cut.
    Slice {
        /// Point on the plane.
        origin: [f64; 3],
        /// Plane normal.
        normal: [f64; 3],
    },
    /// Isosurface at `lo + fraction·(hi−lo)` of the array's global range.
    ContourAtFraction(f64),
    /// External surface of the blocks.
    Surface,
    /// External surface of cells whose `array` mean lies in the given
    /// fractional range of the global scalar range (VTK Threshold).
    ThresholdBand {
        /// Lower bound as a fraction of the global range.
        lo: f64,
        /// Upper bound as a fraction of the global range.
        hi: f64,
    },
}

/// One image per trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderPass {
    /// Pass name (becomes part of the file name).
    pub name: String,
    /// Geometry extraction.
    pub filter: FilterKind,
    /// Point array to color by (and to contour on).
    pub array: String,
    /// Colors.
    pub colormap: Colormap,
    /// Fixed scalar range; `None` → global range per trigger.
    pub range: Option<(f64, f64)>,
    /// View direction for the framing camera.
    pub camera_dir: [f64; 3],
}

/// Compositing strategy (ablation: serial gather vs binary tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compositing {
    /// Everyone sends to rank 0.
    Gather,
    /// ⌈log₂P⌉ pairwise rounds.
    Tree,
}

/// The full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderPipeline {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// The passes (images) per trigger.
    pub passes: Vec<RenderPass>,
    /// Parallel compositing strategy.
    pub compositing: Compositing,
    /// Burn a colormap legend into each image (ParaView scalar bar).
    pub legend: bool,
}

/// One rendered image (pixels only on rank 0).
#[derive(Debug, Clone)]
pub struct RenderedImage {
    /// `<pass>_<step>` identifier.
    pub name: String,
    /// Encoded PNG (rank 0 only).
    pub png: Option<Vec<u8>>,
}

/// Reusable buffers for [`RenderPipeline::execute_with`]: the triangle
/// soup and the local framebuffer survive across passes and triggers, so
/// steady-state rendering stops reallocating its two largest buffers.
/// (Non-root ranks still hand their framebuffer to the compositor each
/// pass — that transfer is the simulated MPI payload.)
#[derive(Debug, Default)]
pub struct RenderScratch {
    fb: Framebuffer,
    soup: TriangleSoup,
}

/// Identity of one rendered frame set: the step plus a fingerprint over
/// every visual input of the pipeline (camera directions, colormap stops,
/// filters, arrays, image size, legend). Two requests with equal keys
/// would rasterize identical pixels, so the second can be served from a
/// [`FrameCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameKey {
    /// Simulation step the frame shows.
    pub step: u64,
    /// FNV-64 fingerprint of the pipeline's visual configuration.
    pub fingerprint: u64,
}

/// Bounded LRU cache of rendered frames keyed by [`FrameKey`]. The
/// staging tier uses it to serve N consumers requesting the same
/// (step, camera, colormap) without re-rasterizing N times.
///
/// The hit/miss decision depends only on the key — never on field data —
/// so when a multi-rank pipeline consults the cache, every rank takes the
/// same branch and the collective schedule stays uniform.
#[derive(Debug)]
pub struct FrameCache {
    capacity: usize,
    /// Most recently used at the back.
    entries: Vec<(FrameKey, Vec<RenderedImage>)>,
    hits: u64,
    misses: u64,
}

impl FrameCache {
    /// A cache retaining at most `capacity` frame sets (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, refreshing its recency. Clones the frame set out so
    /// the cache keeps serving later requests.
    pub fn get(&mut self, key: &FrameKey) -> Option<Vec<RenderedImage>> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let images = entry.1.clone();
        self.entries.push(entry);
        self.hits += 1;
        Some(images)
    }

    /// Insert a freshly rendered frame set, evicting the least recently
    /// used entry if full.
    pub fn insert(&mut self, key: FrameKey, images: Vec<RenderedImage>) {
        self.misses += 1;
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, images));
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a render ([`Self::insert`] calls).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Frame sets currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn fnv1a_f64(hash: &mut u64, v: f64) {
    fnv1a(hash, &v.to_bits().to_le_bytes());
}

impl RenderPipeline {
    /// The paper's two-image Catalyst setup: a pressure slice and a
    /// velocity-magnitude contour.
    pub fn two_image_default(slice_array: &str, contour_array: &str) -> Self {
        Self {
            width: 800,
            height: 600,
            passes: vec![
                RenderPass {
                    name: format!("{slice_array}_slice"),
                    filter: FilterKind::Slice {
                        origin: [0.5, 0.5, 0.5],
                        normal: [0.0, 1.0, 0.0],
                    },
                    array: slice_array.to_string(),
                    colormap: Colormap::cool_warm(),
                    range: None,
                    camera_dir: [0.0, -1.0, 0.25],
                },
                RenderPass {
                    name: format!("{contour_array}_contour"),
                    filter: FilterKind::ContourAtFraction(0.5),
                    array: contour_array.to_string(),
                    colormap: Colormap::viridis(),
                    range: None,
                    camera_dir: [1.0, 1.0, 0.4],
                },
            ],
            compositing: Compositing::Gather,
            legend: true,
        }
    }

    /// FNV-64 fingerprint of everything that determines the pixels for a
    /// given mesh: image size, legend, compositing, and per pass the
    /// filter, array, colormap stops, fixed range, and camera direction.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv1a(&mut h, &(self.width as u64).to_le_bytes());
        fnv1a(&mut h, &(self.height as u64).to_le_bytes());
        fnv1a(&mut h, &[u8::from(self.legend)]);
        fnv1a(
            &mut h,
            &[match self.compositing {
                Compositing::Gather => 0u8,
                Compositing::Tree => 1,
            }],
        );
        for pass in &self.passes {
            fnv1a(&mut h, pass.name.as_bytes());
            fnv1a(&mut h, pass.array.as_bytes());
            for d in pass.camera_dir {
                fnv1a_f64(&mut h, d);
            }
            for &(pos, rgb) in pass.colormap.stops() {
                fnv1a_f64(&mut h, pos);
                for c in rgb {
                    fnv1a_f64(&mut h, c);
                }
            }
            match pass.range {
                Some((lo, hi)) => {
                    fnv1a(&mut h, &[1]);
                    fnv1a_f64(&mut h, lo);
                    fnv1a_f64(&mut h, hi);
                }
                None => fnv1a(&mut h, &[0]),
            }
            match &pass.filter {
                FilterKind::Slice { origin, normal } => {
                    fnv1a(&mut h, &[1]);
                    for v in origin.iter().chain(normal.iter()) {
                        fnv1a_f64(&mut h, *v);
                    }
                }
                FilterKind::ContourAtFraction(f) => {
                    fnv1a(&mut h, &[2]);
                    fnv1a_f64(&mut h, *f);
                }
                FilterKind::Surface => fnv1a(&mut h, &[3]),
                FilterKind::ThresholdBand { lo, hi } => {
                    fnv1a(&mut h, &[4]);
                    fnv1a_f64(&mut h, *lo);
                    fnv1a_f64(&mut h, *hi);
                }
            }
        }
        h
    }

    /// The [`FrameCache`] key for this pipeline at `step`.
    pub fn frame_key(&self, step: u64) -> FrameKey {
        FrameKey {
            step,
            fingerprint: self.fingerprint(),
        }
    }

    /// Arrays the pipeline needs from the simulation.
    pub fn required_arrays(&self) -> Vec<String> {
        let mut names: Vec<String> = self.passes.iter().map(|p| p.array.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Run every pass over the local blocks; images materialize on rank 0.
    pub fn execute(&self, comm: &mut Comm, mb: &MultiBlock, step: u64) -> Vec<RenderedImage> {
        self.execute_with(comm, mb, step, &mut RenderScratch::default())
    }

    /// [`execute`](Self::execute) with caller-owned scratch buffers, so
    /// repeated triggers reuse the framebuffer and triangle-soup
    /// allocations. Results are identical to `execute`.
    pub fn execute_with(
        &self,
        comm: &mut Comm,
        mb: &MultiBlock,
        step: u64,
        scratch: &mut RenderScratch,
    ) -> Vec<RenderedImage> {
        let t_render_start = comm.now();
        // Global bounds for camera framing.
        let local = mb.bounds().unwrap_or([0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        let mut packed = [
            -local[0], local[1], -local[2], local[3], -local[4], local[5],
        ];
        comm.allreduce_vec(&mut packed, ReduceOp::Max);
        let bounds = [
            -packed[0], packed[1], -packed[2], packed[3], -packed[4], packed[5],
        ];

        let render_acct = comm.accountant("render");
        let mut images = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let filter_span = comm.span("render/filter");
            // Global scalar range for this pass's array.
            let (lo, hi) = match pass.range {
                Some(r) => r,
                None => global_array_range(comm, mb, &pass.array),
            };

            // Filter: extract local geometry (host-side work) into the
            // reusable soup.
            let soup = &mut scratch.soup;
            soup.clear();
            let mut n_cells = 0usize;
            for (_, g) in mb.local_blocks() {
                n_cells += g.n_cells();
                match &pass.filter {
                    FilterKind::Slice { origin, normal } => {
                        filters::slice_plane_into(g, *origin, *normal, &pass.array, soup)
                    }
                    FilterKind::ContourAtFraction(f) => {
                        filters::contour_into(g, &pass.array, lo + f * (hi - lo), soup)
                    }
                    FilterKind::Surface => filters::surface_into(g, &pass.array, soup),
                    FilterKind::ThresholdBand { lo: f0, hi: f1 } => filters::threshold_into(
                        g,
                        &pass.array,
                        lo + f0 * (hi - lo),
                        lo + f1 * (hi - lo),
                        &pass.array,
                        soup,
                    ),
                }
            }
            // ~6 tets × ~40 flops per cell for extraction.
            comm.compute_host(n_cells as f64 * 240.0, n_cells as f64 * 64.0);
            let _soup_charge = render_acct.charge(soup.heap_bytes());
            drop(filter_span);
            let raster_span = comm.span("render/raster");

            // Rasterize locally into the reusable framebuffer. Triangle
            // setup scales with the mesh (charged at the possibly-derated
            // rates); per-pixel fill does not, so it is charged at the
            // machine's true rates via the derate factor.
            scratch.fb.reset_to(self.width, self.height);
            // Framebuffer memory is pixel-proportional: account the
            // derate-adjusted size so it stays in proportion to the
            // mesh-proportional accountants on scaled runs.
            let fb_account =
                (scratch.fb.heap_bytes() as f64 / comm.machine().derate_factor).max(1.0) as u64;
            let _fb_charge = render_acct.charge(fb_account);
            let camera = Camera::framing(bounds, pass.camera_dir);
            let n_tris = soup.n_triangles();
            scratch.fb.draw(&camera, soup, &pass.colormap, (lo, hi));
            let s = 1.0 / comm.machine().derate_factor;
            comm.compute_host(n_tris as f64 * 300.0, soup.heap_bytes() as f64);
            comm.compute_host(
                (self.width * self.height) as f64 * 4.0 * s,
                scratch.fb.heap_bytes() as f64 * s,
            );
            drop(raster_span);
            let _composite_span = comm.span("render/composite");

            // Composite and encode on root. The compositor takes the
            // framebuffer by value (it is the message payload off-root);
            // rank 0 gets the merged image back and returns it to the
            // scratch afterwards so the next pass reuses the allocation.
            let local_fb = std::mem::take(&mut scratch.fb);
            let composited = match self.compositing {
                Compositing::Gather => composite_to_root(comm, local_fb),
                Compositing::Tree => composite_tree(comm, local_fb),
            };
            let png = match composited {
                Some(mut fb) => {
                    if self.legend {
                        fb.draw_legend(&pass.colormap, (lo, hi));
                    }
                    let png = encode_png(&fb);
                    // Encoding is pixel-proportional: true rates.
                    let s = 1.0 / comm.machine().derate_factor;
                    comm.compute_host(png.len() as f64 * s, png.len() as f64 * 2.0 * s);
                    scratch.fb = fb;
                    Some(png)
                }
                None => None,
            };
            images.push(RenderedImage {
                name: format!("{}_{:06}", pass.name, step),
                png,
            });
        }
        let telemetry = comm.telemetry();
        if telemetry.enabled() {
            telemetry.counter("render/frames").add(images.len() as u64);
            telemetry
                .histogram("render/execute_time")
                .observe(comm.now() - t_render_start);
        }
        images
    }

    /// Cache-aware [`execute_with`](Self::execute_with): serve the frame
    /// set from `cache` when an identical (step, camera, colormap, …)
    /// request was rendered before, otherwise render and populate the
    /// cache. Returns the images plus whether they came from cache.
    ///
    /// On a hit every collective (bounds and range allreduces) is skipped;
    /// the hit decision is a pure function of the key, so all ranks of a
    /// multi-rank pipeline agree on the branch.
    pub fn execute_cached(
        &self,
        comm: &mut Comm,
        mb: &MultiBlock,
        step: u64,
        scratch: &mut RenderScratch,
        cache: &mut FrameCache,
    ) -> (Vec<RenderedImage>, bool) {
        let key = self.frame_key(step);
        if let Some(images) = cache.get(&key) {
            let telemetry = comm.telemetry();
            if telemetry.enabled() {
                telemetry.counter("render/cache_hits").inc();
            }
            return (images, true);
        }
        let images = self.execute_with(comm, mb, step, scratch);
        let telemetry = comm.telemetry();
        if telemetry.enabled() {
            telemetry.counter("render/cache_misses").inc();
        }
        cache.insert(key, images.clone());
        (images, false)
    }
}

fn global_array_range(comm: &mut Comm, mb: &MultiBlock, array: &str) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, g) in mb.local_blocks() {
        if let Some(a) = g.find_array(array, Centering::Point) {
            for v in filters::scalar_view(a) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    let glo = comm.allreduce(lo, ReduceOp::Min);
    let ghi = comm.allreduce(hi, ReduceOp::Max);
    if glo.is_finite() && ghi.is_finite() && ghi > glo {
        (glo, ghi)
    } else if glo.is_finite() {
        (glo, glo + 1.0)
    } else {
        (0.0, 1.0)
    }
}

/// The Catalyst-style analysis adaptor: runs a [`RenderPipeline`] per
/// trigger and (optionally) writes the PNGs.
pub struct CatalystAnalysis {
    mesh: String,
    pipeline: RenderPipeline,
    output_dir: Option<std::path::PathBuf>,
    images_rendered: u64,
    bytes_written: u64,
    last_images: Vec<RenderedImage>,
    scratch: RenderScratch,
}

impl CatalystAnalysis {
    /// Render `pipeline` against `mesh`; write files under `output_dir` if
    /// given (rank 0 only).
    pub fn new(
        mesh: impl Into<String>,
        pipeline: RenderPipeline,
        output_dir: Option<std::path::PathBuf>,
    ) -> Self {
        Self {
            mesh: mesh.into(),
            pipeline,
            output_dir,
            images_rendered: 0,
            bytes_written: 0,
            last_images: Vec::new(),
            scratch: RenderScratch::default(),
        }
    }

    /// Build from `<analysis type="catalyst" slice_array=".."
    /// contour_array=".." width=".." height=".." output="dir"/>`.
    ///
    /// # Errors
    /// None currently — all attributes have defaults.
    pub fn from_spec(spec: &AnalysisSpec) -> insitu::Result<Self> {
        let slice_array = spec.attr_or("slice_array", "pressure").to_string();
        let contour_array = spec.attr_or("contour_array", "velocity").to_string();
        let mut pipeline = RenderPipeline::two_image_default(&slice_array, &contour_array);
        pipeline.width = spec.attr_parse_or("width", 800usize);
        pipeline.height = spec.attr_parse_or("height", 600usize);
        if spec.attr("compositing") == Some("tree") {
            pipeline.compositing = Compositing::Tree;
        }
        let output_dir = spec.attr("output").map(std::path::PathBuf::from);
        Ok(Self::new(
            spec.attr_or("mesh", "mesh").to_string(),
            pipeline,
            output_dir,
        ))
    }

    /// Factory handling `type="catalyst"` for [`insitu::ConfigurableAnalysis`].
    pub fn factory() -> AdaptorFactory {
        Box::new(|spec: &AnalysisSpec| {
            if spec.kind != "catalyst" {
                return Ok(None);
            }
            Ok(Some(
                Box::new(CatalystAnalysis::from_spec(spec)?) as Box<dyn AnalysisAdaptor>
            ))
        })
    }

    /// Images produced so far.
    pub fn images_rendered(&self) -> u64 {
        self.images_rendered
    }

    /// Bytes written to storage so far (the storage-economy metric).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The most recent trigger's images (pixels on rank 0 only).
    pub fn last_images(&self) -> &[RenderedImage] {
        &self.last_images
    }
}

impl AnalysisAdaptor for CatalystAnalysis {
    fn name(&self) -> &str {
        "catalyst"
    }

    fn required_arrays(&self) -> Vec<String> {
        self.pipeline.required_arrays()
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> insitu::Result<bool> {
        let copy = comm.span("insitu/copy");
        let mut mb = data.mesh(comm, &self.mesh)?;
        for array in self.pipeline.required_arrays() {
            data.add_array(comm, &mut mb, &self.mesh, Centering::Point, &array)?;
        }
        drop(copy);
        let images = self
            .pipeline
            .execute_with(comm, &mb, data.time_step(), &mut self.scratch);
        let _write = comm.span("render/write");
        for img in &images {
            if let Some(png) = &img.png {
                self.images_rendered += 1;
                self.bytes_written += png.len() as u64;
                // Rank 0 writes one small PNG; image size does not scale
                // with the mesh, so charge the derate-adjusted size (true
                // write time; `bytes_written` above keeps the real count).
                let wire = (png.len() as f64 / comm.machine().derate_factor).max(1.0) as u64;
                comm.fs_write(wire, 1);
                if let Some(dir) = &self.output_dir {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| insitu::Error::Analysis(format!("mkdir {dir:?}: {e}")))?;
                    let path = dir.join(format!("{}.png", img.name));
                    let mut f = std::fs::File::create(&path)
                        .map_err(|e| insitu::Error::Analysis(format!("create {path:?}: {e}")))?;
                    f.write_all(png)
                        .map_err(|e| insitu::Error::Analysis(format!("write {path:?}: {e}")))?;
                }
            }
        }
        self.last_images = images;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};
    use insitu::data_adaptor::StaticDataAdaptor;
    use meshdata::{CellType, DataArray, UnstructuredGrid};

    /// One hex per rank, stacked along z, with pressure = z and a velocity
    /// vector field.
    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let z0 = rank as f64;
        let mut g = UnstructuredGrid::new();
        for z in [z0, z0 + 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            g.points.iter().map(|p| p[2]).collect(),
        ))
        .unwrap();
        g.add_point_data(DataArray::vectors_f64(
            "velocity",
            g.points.iter().flat_map(|p| [p[2], 0.0, 1.0]).collect(),
        ))
        .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn pipeline_renders_two_images_on_root() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let pipeline = RenderPipeline::two_image_default("pressure", "velocity");
            let mb = block(comm.rank(), comm.size());
            let images = pipeline.execute(comm, &mb, 100);
            images
                .iter()
                .map(|i| (i.name.clone(), i.png.as_ref().map(|p| p.len())))
                .collect::<Vec<_>>()
        });
        // Rank 0 has both PNGs, rank 1 none.
        assert_eq!(res[0].len(), 2);
        assert!(res[0].iter().all(|(_, png)| png.is_some()));
        assert!(res[1].iter().all(|(_, png)| png.is_none()));
        assert!(res[0][0].0.contains("pressure_slice_000100"));
        assert!(res[0][1].0.contains("velocity_contour_000100"));
        // Non-trivial image sizes.
        assert!(res[0][0].1.unwrap() > 1000);
    }

    #[test]
    fn rendered_geometry_shows_in_coverage() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut pipeline = RenderPipeline::two_image_default("pressure", "velocity");
            pipeline.passes.truncate(1);
            pipeline.passes[0].filter = FilterKind::Surface;
            pipeline.width = 100;
            pipeline.height = 100;
            let mb = block(0, 1);
            let images = pipeline.execute(comm, &mb, 0);
            images[0].png.as_ref().unwrap().len()
        });
        // A surface-covered 100×100 PNG of our stored encoder: roughly
        // 100*(301) bytes — in any case far beyond an empty image.
        assert!(res[0] > 5000, "suspiciously small PNG: {}", res[0]);
    }

    #[test]
    fn catalyst_adaptor_counts_and_charges_storage() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let pipeline = RenderPipeline {
                width: 64,
                height: 48,
                ..RenderPipeline::two_image_default("pressure", "velocity")
            };
            let mut analysis = CatalystAnalysis::new("mesh", pipeline, None);
            let mut da = StaticDataAdaptor::new("mesh", block(comm.rank(), comm.size()), 0.0, 7);
            analysis.execute(comm, &mut da).unwrap();
            analysis.execute(comm, &mut da).unwrap();
            (
                analysis.images_rendered(),
                analysis.bytes_written(),
                comm.stats().bytes_written_fs,
            )
        });
        // Rank 0 rendered 2 images × 2 triggers and wrote them.
        assert_eq!(res[0].0, 4);
        assert!(res[0].1 > 0);
        assert_eq!(res[0].1, res[0].2);
        // Rank 1 wrote nothing.
        assert_eq!(res[1].0, 0);
        assert_eq!(res[1].2, 0);
    }

    #[test]
    fn catalyst_factory_plugs_into_configurable() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let xml = r#"<sensei>
                <analysis type="catalyst" frequency="10" width="32" height="32"
                          slice_array="pressure" contour_array="velocity"/>
            </sensei>"#;
            let mut ca =
                insitu::ConfigurableAnalysis::from_xml(xml, &[CatalystAnalysis::factory()])
                    .unwrap();
            assert_eq!(ca.summaries(), vec![("catalyst".to_string(), 10)]);
            let mut da = StaticDataAdaptor::new("mesh", block(0, 1), 0.0, 0);
            for step in 1..=20 {
                ca.execute(comm, step, &mut da).unwrap();
            }
            assert_eq!(ca.execution_counts(), vec![2]);
        });
    }

    #[test]
    fn tree_compositing_option_works_in_pipeline() {
        let res = run_ranks(4, MachineModel::test_tiny(), |comm| {
            let mut pipeline = RenderPipeline::two_image_default("pressure", "velocity");
            pipeline.compositing = Compositing::Tree;
            pipeline.passes.truncate(1);
            pipeline.width = 64;
            pipeline.height = 64;
            let mb = block(comm.rank(), comm.size());
            let images = pipeline.execute(comm, &mb, 0);
            images[0].png.is_some()
        });
        assert_eq!(res, vec![true, false, false, false]);
    }
}
