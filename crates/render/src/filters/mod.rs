//! Geometry-extraction filters over unstructured grids.
//!
//! Slices and isocontours both reduce to marching tetrahedra: every
//! hexahedron is split into six tets, a level field is interpolated along
//! tet edges, and the zero crossing is triangulated. This is the same
//! strategy VTK's cutter/contour filters use on unstructured cells.

use meshdata::{Centering, DataArray, UnstructuredGrid};

/// Extracted triangles: three consecutive vertices per triangle, with one
/// color scalar per vertex.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriangleSoup {
    /// Vertex positions (len = 3 × triangles).
    pub positions: Vec<[f64; 3]>,
    /// Color scalar per vertex.
    pub scalars: Vec<f64>,
}

impl TriangleSoup {
    /// Number of triangles.
    pub fn n_triangles(&self) -> usize {
        self.positions.len() / 3
    }

    /// Append another soup.
    pub fn extend(&mut self, other: TriangleSoup) {
        self.positions.extend(other.positions);
        self.scalars.extend(other.scalars);
    }

    /// Drop all triangles but keep the allocations, so a soup can be
    /// refilled across passes/triggers without reallocating.
    pub fn clear(&mut self) {
        self.positions.clear();
        self.scalars.clear();
    }

    /// Scalar range over all vertices.
    pub fn scalar_range(&self) -> Option<(f64, f64)> {
        if self.scalars.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in &self.scalars {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        Some((lo, hi))
    }

    /// Heap bytes (memory accounting for the render stage).
    pub fn heap_bytes(&self) -> u64 {
        (self.positions.capacity() * 24 + self.scalars.capacity() * 8) as u64
    }
}

/// Six-tet decomposition of a VTK-ordered hexahedron around diagonal 0–6.
const HEX_TETS: [[usize; 4]; 6] = [
    [0, 1, 2, 6],
    [0, 2, 3, 6],
    [0, 3, 7, 6],
    [0, 7, 4, 6],
    [0, 4, 5, 6],
    [0, 5, 1, 6],
];

/// Per-point scalar view of an array: component 0 for scalars, magnitude
/// for vectors (ParaView's default coloring behavior).
pub fn scalar_view(array: &DataArray) -> Vec<f64> {
    if array.components == 1 {
        (0..array.len()).map(|i| array.get(i, 0)).collect()
    } else {
        (0..array.len()).map(|i| array.tuple_magnitude(i)).collect()
    }
}

/// Extract the isosurface `level(x) = iso` from `grid`, colored by the
/// point scalars `color`.
///
/// `level` and `color` are per-point values (use [`scalar_view`]).
pub fn marching_tets(
    grid: &UnstructuredGrid,
    level: &[f64],
    iso: f64,
    color: &[f64],
) -> TriangleSoup {
    let mut soup = TriangleSoup::default();
    marching_tets_into(grid, level, iso, color, &mut soup);
    soup
}

/// [`marching_tets`], appending into an existing soup (buffer reuse).
pub fn marching_tets_into(
    grid: &UnstructuredGrid,
    level: &[f64],
    iso: f64,
    color: &[f64],
    soup: &mut TriangleSoup,
) {
    assert_eq!(level.len(), grid.n_points(), "level field size mismatch");
    assert_eq!(color.len(), grid.n_points(), "color field size mismatch");
    for c in 0..grid.n_cells() {
        let pts = grid.cell_points(c);
        match grid.types[c] {
            meshdata::CellType::Hexahedron => {
                for tet in &HEX_TETS {
                    let ids = [
                        pts[tet[0]] as usize,
                        pts[tet[1]] as usize,
                        pts[tet[2]] as usize,
                        pts[tet[3]] as usize,
                    ];
                    march_one_tet(grid, &ids, level, iso, color, soup);
                }
            }
            meshdata::CellType::Tetra => {
                let ids = [
                    pts[0] as usize,
                    pts[1] as usize,
                    pts[2] as usize,
                    pts[3] as usize,
                ];
                march_one_tet(grid, &ids, level, iso, color, soup);
            }
            _ => { /* 1-D/2-D cells carry no isosurface */ }
        }
    }
}

fn march_one_tet(
    grid: &UnstructuredGrid,
    ids: &[usize; 4],
    level: &[f64],
    iso: f64,
    color: &[f64],
    soup: &mut TriangleSoup,
) {
    let d: [f64; 4] = [
        level[ids[0]] - iso,
        level[ids[1]] - iso,
        level[ids[2]] - iso,
        level[ids[3]] - iso,
    ];
    let mut above = [false; 4];
    let mut n_above = 0;
    for (i, &v) in d.iter().enumerate() {
        above[i] = v > 0.0;
        if above[i] {
            n_above += 1;
        }
    }
    if n_above == 0 || n_above == 4 {
        return;
    }
    // Edge crossing between local verts a and b.
    let crossing = |a: usize, b: usize| -> ([f64; 3], f64) {
        let t = d[a] / (d[a] - d[b]);
        let pa = grid.points[ids[a]];
        let pb = grid.points[ids[b]];
        let p = [
            pa[0] + t * (pb[0] - pa[0]),
            pa[1] + t * (pb[1] - pa[1]),
            pa[2] + t * (pb[2] - pa[2]),
        ];
        let s = color[ids[a]] + t * (color[ids[b]] - color[ids[a]]);
        (p, s)
    };
    // Collect the vertices on the minority side.
    let minority_above = n_above == 1;
    let minority: Vec<usize> = (0..4).filter(|&i| above[i] == minority_above).collect();
    let majority: Vec<usize> = (0..4).filter(|&i| above[i] != minority_above).collect();
    if minority.len() == 1 {
        // One triangle: crossings from the lone vertex to the other three.
        let a = minority[0];
        let v0 = crossing(a, majority[0]);
        let v1 = crossing(a, majority[1]);
        let v2 = crossing(a, majority[2]);
        push_tri(soup, v0, v1, v2);
    } else {
        // Two-two case: a quad from the four crossing edges, split into two
        // triangles. Edges: (m0,M0),(m0,M1),(m1,M1),(m1,M0) forms the loop.
        let (m0, m1) = (minority[0], minority[1]);
        let (ma, mb) = (majority[0], majority[1]);
        let v0 = crossing(m0, ma);
        let v1 = crossing(m0, mb);
        let v2 = crossing(m1, mb);
        let v3 = crossing(m1, ma);
        push_tri(soup, v0, v1, v2);
        push_tri(soup, v0, v2, v3);
    }
}

fn push_tri(soup: &mut TriangleSoup, a: ([f64; 3], f64), b: ([f64; 3], f64), c: ([f64; 3], f64)) {
    soup.positions.push(a.0);
    soup.positions.push(b.0);
    soup.positions.push(c.0);
    soup.scalars.push(a.1);
    soup.scalars.push(b.1);
    soup.scalars.push(c.1);
}

/// Cut `grid` with the plane through `origin` with `normal`, colored by the
/// point-centered array `color_array`.
///
/// Returns an empty soup if the array is missing (blocks without the array
/// contribute nothing, as in VTK).
pub fn slice_plane(
    grid: &UnstructuredGrid,
    origin: [f64; 3],
    normal: [f64; 3],
    color_array: &str,
) -> TriangleSoup {
    let mut soup = TriangleSoup::default();
    slice_plane_into(grid, origin, normal, color_array, &mut soup);
    soup
}

/// [`slice_plane`], appending into an existing soup (buffer reuse).
pub fn slice_plane_into(
    grid: &UnstructuredGrid,
    origin: [f64; 3],
    normal: [f64; 3],
    color_array: &str,
    soup: &mut TriangleSoup,
) {
    let Some(color) = grid.find_array(color_array, Centering::Point) else {
        return;
    };
    let color = scalar_view(color);
    let level: Vec<f64> = grid
        .points
        .iter()
        .map(|p| {
            (p[0] - origin[0]) * normal[0]
                + (p[1] - origin[1]) * normal[1]
                + (p[2] - origin[2]) * normal[2]
        })
        .collect();
    marching_tets_into(grid, &level, 0.0, &color, soup);
}

/// Extract the isosurface `array = value`, colored by the same array.
pub fn contour(grid: &UnstructuredGrid, array: &str, value: f64) -> TriangleSoup {
    let mut soup = TriangleSoup::default();
    contour_into(grid, array, value, &mut soup);
    soup
}

/// [`contour`], appending into an existing soup (buffer reuse).
pub fn contour_into(grid: &UnstructuredGrid, array: &str, value: f64, soup: &mut TriangleSoup) {
    let Some(a) = grid.find_array(array, Centering::Point) else {
        return;
    };
    let level = scalar_view(a);
    marching_tets_into(grid, &level, value, &level, soup);
}

/// Extract the external surface (faces owned by exactly one cell), colored
/// by a point array. Quads are emitted as two triangles.
pub fn surface(grid: &UnstructuredGrid, color_array: &str) -> TriangleSoup {
    let mut soup = TriangleSoup::default();
    surface_into(grid, color_array, &mut soup);
    soup
}

/// [`surface`], appending into an existing soup (buffer reuse).
pub fn surface_into(grid: &UnstructuredGrid, color_array: &str, soup: &mut TriangleSoup) {
    surface_of_cells(grid, color_array, |_| true, soup);
}

/// Threshold filter: keep hex cells whose mean point value of
/// `threshold_array` lies in `[lo, hi]`, then emit the external surface of
/// the kept subset colored by `color_array` (VTK's Threshold + Surface
/// combination).
pub fn threshold(
    grid: &UnstructuredGrid,
    threshold_array: &str,
    lo: f64,
    hi: f64,
    color_array: &str,
) -> TriangleSoup {
    let mut soup = TriangleSoup::default();
    threshold_into(grid, threshold_array, lo, hi, color_array, &mut soup);
    soup
}

/// [`threshold`], appending into an existing soup (buffer reuse).
pub fn threshold_into(
    grid: &UnstructuredGrid,
    threshold_array: &str,
    lo: f64,
    hi: f64,
    color_array: &str,
    soup: &mut TriangleSoup,
) {
    let Some(t) = grid.find_array(threshold_array, Centering::Point) else {
        return;
    };
    let values = scalar_view(t);
    surface_of_cells(
        grid,
        color_array,
        |cell_pts| {
            let mean: f64 =
                cell_pts.iter().map(|&p| values[p as usize]).sum::<f64>() / cell_pts.len() as f64;
            (lo..=hi).contains(&mean)
        },
        soup,
    );
}

fn surface_of_cells(
    grid: &UnstructuredGrid,
    color_array: &str,
    keep: impl Fn(&[i64]) -> bool,
    soup: &mut TriangleSoup,
) {
    use std::collections::HashMap;
    let color: Vec<f64> = match grid.find_array(color_array, Centering::Point) {
        Some(a) => scalar_view(a),
        None => vec![0.0; grid.n_points()],
    };
    // VTK hex faces (corner indices).
    const HEX_FACES: [[usize; 4]; 6] = [
        [0, 1, 5, 4],
        [1, 2, 6, 5],
        [2, 3, 7, 6],
        [3, 0, 4, 7],
        [0, 3, 2, 1],
        [4, 5, 6, 7],
    ];
    let mut faces: HashMap<[i64; 4], ([i64; 4], u32)> = HashMap::new();
    for c in 0..grid.n_cells() {
        if grid.types[c] != meshdata::CellType::Hexahedron {
            continue;
        }
        let pts = grid.cell_points(c);
        if !keep(pts) {
            continue;
        }
        for f in &HEX_FACES {
            let quad = [pts[f[0]], pts[f[1]], pts[f[2]], pts[f[3]]];
            let mut key = quad;
            key.sort_unstable();
            faces
                .entry(key)
                .and_modify(|(_, count)| *count += 1)
                .or_insert((quad, 1));
        }
    }
    let mut external: Vec<[i64; 4]> = faces
        .into_values()
        .filter_map(|(quad, count)| (count == 1).then_some(quad))
        .collect();
    external.sort_unstable(); // deterministic output order
    for quad in external {
        let p = |i: i64| grid.points[i as usize];
        let s = |i: i64| color[i as usize];
        push_tri(
            soup,
            (p(quad[0]), s(quad[0])),
            (p(quad[1]), s(quad[1])),
            (p(quad[2]), s(quad[2])),
        );
        push_tri(
            soup,
            (p(quad[0]), s(quad[0])),
            (p(quad[2]), s(quad[2])),
            (p(quad[3]), s(quad[3])),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshdata::CellType;

    /// Unit cube hex with a point scalar equal to z.
    fn unit_cube() -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "height",
            g.points.iter().map(|p| p[2]).collect(),
        ))
        .unwrap();
        g
    }

    #[test]
    fn slice_through_cube_center_covers_unit_area() {
        let g = unit_cube();
        let soup = slice_plane(&g, [0.5, 0.5, 0.5], [0.0, 0.0, 1.0], "height");
        assert!(soup.n_triangles() >= 2, "{} triangles", soup.n_triangles());
        // All vertices on the plane and inside the cube.
        for p in &soup.positions {
            assert!((p[2] - 0.5).abs() < 1e-12);
            assert!(p[0] >= -1e-12 && p[0] <= 1.0 + 1e-12);
        }
        // Total area of the cut is the unit square.
        let mut area = 0.0;
        for t in 0..soup.n_triangles() {
            let [a, b, c] = [
                soup.positions[3 * t],
                soup.positions[3 * t + 1],
                soup.positions[3 * t + 2],
            ];
            let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
            let cx = u[1] * v[2] - u[2] * v[1];
            let cy = u[2] * v[0] - u[0] * v[2];
            let cz = u[0] * v[1] - u[1] * v[0];
            area += 0.5 * (cx * cx + cy * cy + cz * cz).sqrt();
        }
        assert!((area - 1.0).abs() < 1e-9, "area = {area}");
        // Colors on the z=0.5 plane interpolate to 0.5.
        for &s in &soup.scalars {
            assert!((s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn slice_missing_the_cell_is_empty() {
        let g = unit_cube();
        let soup = slice_plane(&g, [0.0, 0.0, 5.0], [0.0, 0.0, 1.0], "height");
        assert_eq!(soup.n_triangles(), 0);
    }

    #[test]
    fn contour_equals_slice_for_coordinate_field() {
        // height == z, so contour(height=0.3) is the z=0.3 plane cut.
        let g = unit_cube();
        let soup = contour(&g, "height", 0.3);
        assert!(soup.n_triangles() >= 2);
        for p in &soup.positions {
            assert!((p[2] - 0.3).abs() < 1e-12);
        }
        for &s in &soup.scalars {
            assert!((s - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn contour_outside_range_is_empty() {
        let g = unit_cube();
        assert_eq!(contour(&g, "height", 2.0).n_triangles(), 0);
        assert_eq!(contour(&g, "height", -1.0).n_triangles(), 0);
    }

    #[test]
    fn missing_array_yields_empty_not_panic() {
        let g = unit_cube();
        assert_eq!(contour(&g, "nope", 0.5).n_triangles(), 0);
        assert_eq!(
            slice_plane(&g, [0.5; 3], [0.0, 0.0, 1.0], "nope").n_triangles(),
            0
        );
    }

    #[test]
    fn surface_of_single_hex_is_twelve_triangles() {
        let g = unit_cube();
        let soup = surface(&g, "height");
        assert_eq!(soup.n_triangles(), 12, "6 quad faces × 2");
    }

    #[test]
    fn shared_faces_are_not_external() {
        // Two hexes sharing a face: 10 external quads → 20 triangles.
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0, 2.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        let id = |x: i64, y: i64, z: i64| x + 3 * y + 6 * z;
        g.add_cell(
            CellType::Hexahedron,
            &[
                id(0, 0, 0),
                id(1, 0, 0),
                id(1, 1, 0),
                id(0, 1, 0),
                id(0, 0, 1),
                id(1, 0, 1),
                id(1, 1, 1),
                id(0, 1, 1),
            ],
        );
        g.add_cell(
            CellType::Hexahedron,
            &[
                id(1, 0, 0),
                id(2, 0, 0),
                id(2, 1, 0),
                id(1, 1, 0),
                id(1, 0, 1),
                id(2, 0, 1),
                id(2, 1, 1),
                id(1, 1, 1),
            ],
        );
        let soup = surface(&g, "none");
        assert_eq!(soup.n_triangles(), 20);
    }

    #[test]
    fn threshold_keeps_matching_cells_only() {
        // Two stacked hexes; "height" runs 0..2 in z, so cell means are
        // 0.5 (bottom) and 1.5 (top).
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0, 2.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        let id = |x: i64, y: i64, z: i64| x + 2 * y + 4 * z;
        for z in 0..2 {
            g.add_cell(
                CellType::Hexahedron,
                &[
                    id(0, 0, z),
                    id(1, 0, z),
                    id(1, 1, z),
                    id(0, 1, z),
                    id(0, 0, z + 1),
                    id(1, 0, z + 1),
                    id(1, 1, z + 1),
                    id(0, 1, z + 1),
                ],
            );
        }
        g.add_point_data(DataArray::scalars_f64(
            "height",
            g.points.iter().map(|p| p[2]).collect(),
        ))
        .unwrap();
        // Only the bottom cell passes: 6 faces → 12 triangles.
        let bottom = threshold(&g, "height", 0.0, 1.0, "height");
        assert_eq!(bottom.n_triangles(), 12);
        for p in &bottom.positions {
            assert!(p[2] <= 1.0 + 1e-12);
        }
        // Both cells pass: 10 external faces → 20 triangles.
        let both = threshold(&g, "height", 0.0, 2.0, "height");
        assert_eq!(both.n_triangles(), 20);
        // None pass.
        assert_eq!(threshold(&g, "height", 5.0, 6.0, "height").n_triangles(), 0);
        // Missing threshold array → empty, no panic.
        assert_eq!(threshold(&g, "nope", 0.0, 1.0, "height").n_triangles(), 0);
    }

    #[test]
    fn vector_arrays_color_by_magnitude() {
        let mut g = unit_cube();
        g.add_point_data(DataArray::vectors_f64(
            "velocity",
            (0..8).flat_map(|_| [3.0, 4.0, 0.0]).collect(),
        ))
        .unwrap();
        let a = g.find_array("velocity", Centering::Point).unwrap();
        let view = scalar_view(a);
        assert!(view.iter().all(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    fn soup_bookkeeping() {
        let g = unit_cube();
        let mut soup = surface(&g, "height");
        let n = soup.n_triangles();
        let other = surface(&g, "height");
        soup.extend(other);
        assert_eq!(soup.n_triangles(), 2 * n);
        let (lo, hi) = soup.scalar_range().unwrap();
        assert_eq!((lo, hi), (0.0, 1.0));
        assert!(soup.heap_bytes() > 0);
        assert_eq!(TriangleSoup::default().scalar_range(), None);
    }
}
