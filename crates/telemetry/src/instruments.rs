//! Typed instruments and the hub that registers them.
//!
//! Lock discipline: the hub's name→instrument map is behind a mutex,
//! taken once per `counter()`/`gauge()`/`histogram()` lookup. The
//! returned handles share atomics with the hub, so the hot path
//! (increment / set / observe) never touches a lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::recorder::{Event, FlightRecorder, StepSample};

/// Swallow mutex poisoning: telemetry must never abort a run that a
/// panicking rank already aborted.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Monotonic counter. Cloning shares the underlying atomic; the
/// `disabled` variant ignores updates and reads zero.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Self { cell: Some(cell) }
    }

    /// A no-op counter (what disabled telemetry hands out).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (zero when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits in an
/// `AtomicU64`). Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Self { cell: Some(cell) }
    }

    /// A no-op gauge.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (zero when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Sub-buckets per power of two. The bucket representative (geometric
/// midpoint of a 1/16-wide bucket) is at most `1/32` away in relative
/// terms from any value in the bucket, so quantile readout has a
/// relative error bound of `1/16` with margin.
const SUBS: usize = 16;
/// Smallest tracked exponent: values below `2^-40` (~1e-12 — far below
/// any virtual-clock latency) land in the underflow bucket.
const E_MIN: i32 = -40;
/// Largest tracked exponent: values at or above `2^24` (~1.7e7 — bytes
/// counts and queue depths stay below this) land in the overflow bucket.
const E_MAX: i32 = 24;
const N_BUCKETS: usize = ((E_MAX - E_MIN) as usize) * SUBS;

pub(crate) struct HistogramState {
    /// `[underflow, bucket 0 .. N-1, overflow]`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, f64 bits updated by CAS.
    sum_bits: AtomicU64,
    /// Exact min/max of observed values (f64 bits; observations are
    /// clamped to `>= 0`, where the bit pattern orders like the value).
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramState {
    fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS + 2).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
        }
    }
}

/// Bucket index (into the `N_BUCKETS + 2` array) for a non-negative
/// value, via exponent/mantissa extraction — exact, no float log.
fn bucket_index(v: f64) -> usize {
    if !(v.is_finite() && v > 0.0) {
        return 0; // underflow (0 and junk)
    }
    let bits = v.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if e < E_MIN {
        return 0;
    }
    if e >= E_MAX {
        return N_BUCKETS + 1;
    }
    let sub = ((bits >> 48) & 0xf) as usize; // top 4 mantissa bits
    1 + ((e - E_MIN) as usize) * SUBS + sub
}

/// Lower bound of linear bucket `i` (1-based within the linear range):
/// `2^e (1 + s/16)`.
fn bucket_lo(i: usize) -> f64 {
    let lin = i - 1;
    let e = E_MIN + (lin / SUBS) as i32;
    let s = (lin % SUBS) as f64;
    (2.0f64).powi(e) * (1.0 + s / SUBS as f64)
}

/// Upper bound of linear bucket `i`: the next bucket's lower bound
/// (`2^e (1 + (s+1)/16)`, which for `s = 15` is exactly `2^(e+1)`).
fn bucket_hi(i: usize) -> f64 {
    let lin = i - 1;
    let e = E_MIN + (lin / SUBS) as i32;
    let s = (lin % SUBS) as f64 + 1.0;
    (2.0f64).powi(e) * (1.0 + s / SUBS as f64)
}

/// Log-linear histogram with quantile readout. Cloning shares state;
/// `observe` is lock-free.
#[derive(Clone, Default)]
pub struct Histogram {
    state: Option<Arc<HistogramState>>,
}

/// Point-in-time readout of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Median (geometric in-bucket interpolation, relative error ≤ 1/16).
    pub p50: f64,
    /// 90th percentile (same error bound).
    pub p90: f64,
    /// 95th percentile (same error bound).
    pub p95: f64,
    /// 99th percentile (same error bound).
    pub p99: f64,
    /// Exact minimum observed.
    pub min: f64,
    /// Exact maximum observed.
    pub max: f64,
}

impl Histogram {
    pub(crate) fn live(state: Arc<HistogramState>) -> Self {
        Self { state: Some(state) }
    }

    /// A no-op histogram.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Record one observation (negatives clamp to zero).
    pub fn observe(&self, v: f64) {
        let Some(s) = &self.state else { return };
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = s.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match s
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        s.min_bits.fetch_min(v.to_bits(), Ordering::Relaxed);
        s.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Estimate the `q`-quantile (`0 ≤ q ≤ 1`) from bucket counts,
    /// interpolating geometrically *within* the landing bucket by rank
    /// fraction (a flat bucket-midpoint answer is discontinuous at
    /// bucket boundaries: p50 and p90 of a bucket holding both would
    /// read identical). Results are clamped to the exact observed
    /// `[min, max]`; zero when empty or disabled.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(s) = &self.state else { return 0.0 };
        let count = s.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let min = f64::from_bits(s.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(s.max_bits.load(Ordering::Relaxed));
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in s.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            seen += in_bucket;
            if seen >= target {
                let est = if i == 0 {
                    min
                } else if i == N_BUCKETS + 1 {
                    max
                } else {
                    // Rank of the target within this bucket (1-based),
                    // mapped to the bucket's geometric span.
                    let rank = target - (seen - in_bucket);
                    let frac = (rank as f64 - 0.5) / in_bucket as f64;
                    let lo = bucket_lo(i);
                    let hi = bucket_hi(i);
                    lo * (hi / lo).powf(frac)
                };
                return est.clamp(min, max);
            }
        }
        max
    }

    /// Full readout: count/sum exact, p50/p90/p95/p99 bucket estimates,
    /// min/max exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let Some(s) = &self.state else {
            return HistogramSnapshot::default();
        };
        let count = s.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        HistogramSnapshot {
            count,
            sum: f64::from_bits(s.sum_bits.load(Ordering::Relaxed)),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: f64::from_bits(s.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(s.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Final value of one named instrument, as it appears in a
/// [`crate::RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramState>),
}

#[derive(Default)]
struct HubInner {
    instruments: Mutex<BTreeMap<String, Slot>>,
    events: Mutex<Vec<Event>>,
    recorder: Mutex<FlightRecorder>,
}

/// The shared bus: instrument registry + event log + flight recorder.
/// Cloning shares the underlying state (it is an `Arc` inside).
#[derive(Clone, Default)]
pub struct TelemetryHub {
    inner: Arc<HubInner>,
}

impl TelemetryHub {
    /// A hub whose flight recorder holds at most `capacity` samples.
    pub fn with_recorder_capacity(capacity: usize) -> Self {
        let hub = Self::default();
        *lock(&hub.inner.recorder) = FlightRecorder::new(capacity);
        hub
    }

    /// Get or create the counter `name`. If `name` already names a
    /// different instrument type, returns a disabled handle (the
    /// registration wins; the caller's updates are dropped).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.inner.instruments);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))))
        {
            Slot::Counter(c) => Counter::live(c.clone()),
            _ => Counter::disabled(),
        }
    }

    /// Get or create the gauge `name` (same mismatch rule as
    /// [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.inner.instruments);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))))
        {
            Slot::Gauge(g) => Gauge::live(g.clone()),
            _ => Gauge::disabled(),
        }
    }

    /// Get or create the histogram `name` (same mismatch rule).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.inner.instruments);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramState::new())))
        {
            Slot::Histogram(h) => Histogram::live(h.clone()),
            _ => Histogram::disabled(),
        }
    }

    /// Append a structured event.
    pub fn push_event(&self, event: Event) {
        lock(&self.inner.events).push(event);
    }

    /// Record one per-step sample into the flight recorder.
    pub fn record(&self, sample: StepSample) {
        lock(&self.inner.recorder).record(sample);
    }

    /// Sum of every counter whose name ends with `/suffix` (used to
    /// aggregate e.g. `*/transport/retries` across ranks).
    pub fn counter_sum(&self, suffix: &str) -> u64 {
        let map = lock(&self.inner.instruments);
        map.iter()
            .filter(|(name, _)| name.ends_with(suffix))
            .map(|(_, slot)| match slot {
                Slot::Counter(c) => c.load(Ordering::Relaxed),
                _ => 0,
            })
            .sum()
    }

    /// Sum of every gauge whose name ends with `/suffix` (used to
    /// aggregate e.g. endpoint queue depths into one series column).
    pub fn gauge_sum(&self, suffix: &str) -> f64 {
        let map = lock(&self.inner.instruments);
        map.iter()
            .filter(|(name, _)| name.ends_with(suffix))
            .map(|(_, slot)| match slot {
                Slot::Gauge(g) => f64::from_bits(g.load(Ordering::Relaxed)),
                _ => 0.0,
            })
            .sum()
    }

    /// Final value of every registered instrument, sorted by name.
    pub fn metrics_snapshot(&self) -> Vec<(String, MetricValue)> {
        let map = lock(&self.inner.instruments);
        map.iter()
            .map(|(name, slot)| {
                let v = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Slot::Histogram(h) => {
                        MetricValue::Histogram(Histogram::live(h.clone()).snapshot())
                    }
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Drain the event log, sorted by `(virtual time, pid, rank)` so
    /// report output is deterministic regardless of thread interleave.
    pub fn take_events_sorted(&self) -> Vec<Event> {
        let mut events = std::mem::take(&mut *lock(&self.inner.events));
        events.sort_by(|a, b| {
            a.at.total_cmp(&b.at)
                .then(a.pid.cmp(&b.pid))
                .then(a.rank.cmp(&b.rank))
                .then(a.step.cmp(&b.step))
        });
        events
    }

    /// Drain the flight recorder: `(samples, evicted_count)`.
    pub fn take_series(&self) -> (Vec<StepSample>, u64) {
        lock(&self.inner.recorder).take()
    }

    /// Non-draining peek at the flight recorder's per-step windows:
    /// `(step, t_start, t_end)` per retained sample, in step order.
    /// Critical-path analysis needs the windows *before*
    /// `RunReport::collect` drains the recorder.
    pub fn step_bounds(&self) -> Vec<(u64, f64, f64)> {
        lock(&self.inner.recorder).bounds()
    }

    /// Metrics that changed since `prev`, which is replaced with the
    /// current snapshot — the delta engine behind live streaming. Both
    /// lists are name-sorted, so the diff is one linear merge; an empty
    /// `prev` yields the full snapshot.
    pub fn delta_snapshot(
        &self,
        prev: &mut Vec<(String, MetricValue)>,
    ) -> Vec<(String, MetricValue)> {
        let cur = self.metrics_snapshot();
        let mut delta = Vec::new();
        let mut pi = 0usize;
        for item in &cur {
            while pi < prev.len() && prev[pi].0 < item.0 {
                pi += 1;
            }
            let unchanged = pi < prev.len() && prev[pi].0 == item.0 && prev[pi].1 == item.1;
            if !unchanged {
                delta.push(item.clone());
            }
        }
        *prev = cur;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: log-linear bucket error bound. Quantile estimates
    /// must sit within 1/16 relative error of the exact quantile for
    /// values spanning many decades.
    #[test]
    fn histogram_quantiles_meet_log_linear_error_bound() {
        let hub = TelemetryHub::default();
        let h = hub.histogram("t");
        // Deterministic pseudo-random values over ~7 decades.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut values = Vec::new();
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let v = 1e-6 * (10.0f64).powf(7.0 * u);
            values.push(v);
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.10, 0.50, 0.90, 0.95, 0.99] {
            let exact =
                values[((q * values.len() as f64).ceil() as usize - 1).min(values.len() - 1)];
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 1.0 / 16.0,
                "q={q}: est {est} vs exact {exact} (rel err {rel})"
            );
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5000);
        assert!((snap.min - values[0]).abs() < 1e-18, "min is exact");
        assert!(
            (snap.max - values[values.len() - 1]).abs() < 1e-9,
            "max is exact"
        );
        let exact_sum: f64 = values.iter().sum();
        assert!(
            (snap.sum - exact_sum).abs() / exact_sum < 1e-9,
            "sum is exact"
        );
    }

    #[test]
    fn histogram_edge_values_land_in_terminal_buckets() {
        let hub = TelemetryHub::default();
        let h = hub.histogram("edges");
        h.observe(0.0);
        h.observe(-4.0); // clamps to 0
        h.observe(1e-20); // underflow bucket
        h.observe(1e12); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1e12);
        // p95 of {0,0,~0,1e12} resolves through the overflow bucket to
        // the exact max.
        assert_eq!(h.quantile(0.95), 1e12);
    }

    /// Satellite: empty-histogram edge case — every readout is zero and
    /// the snapshot is the default.
    #[test]
    fn empty_histogram_reads_zero_everywhere() {
        let hub = TelemetryHub::default();
        let h = hub.histogram("empty");
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0);
        }
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        assert_eq!(Histogram::disabled().quantile(0.5), 0.0);
    }

    /// Satellite: single-bucket edge case — when every observation is
    /// the same value, interpolation must not invent spread: all
    /// quantiles clamp to the exact observed value.
    #[test]
    fn single_bucket_histogram_quantiles_are_exact() {
        let hub = TelemetryHub::default();
        let h = hub.histogram("single");
        for _ in 0..100 {
            h.observe(3.25e-3);
        }
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.25e-3, "q={q}");
        }
        let s = h.snapshot();
        assert_eq!((s.p50, s.p90, s.p95, s.p99), (3.25e-3, 3.25e-3, 3.25e-3, 3.25e-3));
        assert_eq!(s.count, 100);
    }

    /// Satellite: quantiles within one bucket are monotone — the
    /// in-bucket geometric interpolation distinguishes ranks that the
    /// old flat bucket-midpoint readout collapsed.
    #[test]
    fn in_bucket_interpolation_is_monotone_across_boundaries() {
        let hub = TelemetryHub::default();
        let h = hub.histogram("mono");
        // Values dense enough that adjacent quantiles share buckets.
        for i in 1..=1000 {
            h.observe(1.0 + i as f64 / 1000.0); // (1, 2]
        }
        let mut last = 0.0;
        for i in 1..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile must be monotone: q={q} {v} < {last}");
            last = v;
        }
        // And the interpolated p50 sits near the true median, well
        // inside the 1/16 bucket bound.
        assert!((h.quantile(0.5) - 1.5).abs() / 1.5 < 1.0 / 16.0);
    }

    #[test]
    fn delta_snapshot_reports_only_changes() {
        let hub = TelemetryHub::default();
        hub.counter("a").add(1);
        hub.gauge("b").set(2.0);
        hub.histogram("c").observe(0.5);
        let mut prev = Vec::new();
        let full = hub.delta_snapshot(&mut prev);
        assert_eq!(full.len(), 3, "first delta is the full snapshot");
        assert!(hub.delta_snapshot(&mut prev).is_empty(), "no change, no delta");
        hub.counter("a").add(1);
        hub.counter("d").inc();
        let delta = hub.delta_snapshot(&mut prev);
        let names: Vec<&str> = delta.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "d"]);
        assert_eq!(prev.len(), 4, "prev tracks the full current snapshot");
    }

    #[test]
    fn step_bounds_peek_does_not_drain() {
        let hub = TelemetryHub::default();
        hub.record(StepSample {
            step: 1,
            t_start: 0.0,
            t_end: 0.5,
            ..StepSample::default()
        });
        hub.record(StepSample {
            step: 2,
            t_start: 0.5,
            t_end: 1.25,
            ..StepSample::default()
        });
        assert_eq!(hub.step_bounds(), vec![(1, 0.0, 0.5), (2, 0.5, 1.25)]);
        let (series, _) = hub.take_series();
        assert_eq!(series.len(), 2, "peek must leave the series intact");
    }

    #[test]
    fn counter_and_gauge_share_state_across_clones() {
        let hub = TelemetryHub::default();
        let a = hub.counter("rank0/c");
        let b = hub.counter("rank0/c");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let g = hub.gauge("rank0/g");
        hub.gauge("rank0/g").set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn type_mismatch_returns_disabled_handle() {
        let hub = TelemetryHub::default();
        hub.counter("x").add(2);
        let g = hub.gauge("x"); // wrong type: disabled, registration wins
        g.set(9.0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(hub.counter("x").get(), 2);
    }
}
