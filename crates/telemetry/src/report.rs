//! The `RunReport`: one serializable artifact per run.

use crate::instruments::{HistogramSnapshot, MetricValue, TelemetryHub};
use crate::json::{self, push_f64, push_str, Value};
use crate::recorder::{Event, EventKind, StepSample};
use std::fmt::Write as _;
use trace::{CritContrib, CriticalReport, RankSlack, StepCritical, CRITICAL_SCHEMA};

/// Schema tag written into every report (bump on breaking layout
/// changes; `nekstat` and CI validate it).
pub const REPORT_SCHEMA: &str = "nekstat/run-report/v1";

/// What was run: enough to reproduce the configuration and to label
/// the report in `nekstat` output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Manifest {
    /// Case name (`pb146`, `rbc`, …).
    pub case: String,
    /// `insitu` or `intransit` (or `render` for the image harnesses).
    pub workflow: String,
    /// In situ mode (`original` / `checkpointing` / `catalyst`) or the
    /// in-transit queue policy.
    pub mode: String,
    /// Execution mode (`synchronous` / `pipelined`).
    pub exec: String,
    /// Rank scheduler (`thread` / `event`): how the rank worlds were
    /// driven. Virtual-time results are bitwise identical either way;
    /// the label records which executor actually ran.
    pub sched: String,
    /// Wire engine carrying staged frames (`channel` / `tcp`; `none` for
    /// workflows with no staging transport).
    pub wire: String,
    /// Simulation ranks.
    pub ranks: usize,
    /// Endpoint (consumer world) ranks; 0 for pure in situ.
    pub endpoint_ranks: usize,
    /// Steps run.
    pub steps: u64,
    /// Analysis trigger cadence.
    pub trigger_every: u64,
    /// Machine model name.
    pub machine: String,
    /// Human-readable fault plan summary (`"none"` when clean).
    pub fault_plan: String,
    /// Shared thread-pool width on the host.
    pub pool_threads: usize,
    /// Pipeline credit depth (0 when synchronous).
    pub pipeline_depth: usize,
}

/// Host/GPU memory roll-up (mirrors `MemoryBreakdown` in core, kept
/// here as plain numbers so the crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemorySummary {
    /// Sum of host peaks over ranks.
    pub host_aggregate_peak: u64,
    /// Largest single-rank host peak.
    pub host_max_rank_peak: u64,
    /// Sum of GPU peaks over ranks.
    pub gpu_aggregate_peak: u64,
    /// Peak bytes in accountants with no `rank<r>/` prefix.
    pub unscoped: u64,
}

/// The single artifact a telemetry-enabled run emits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Run configuration.
    pub manifest: Manifest,
    /// Final value of every instrument, sorted by name.
    pub metrics: Vec<(String, MetricValue)>,
    /// Per-step time series (possibly ring-truncated to the newest
    /// steps; see `evicted_samples`).
    pub series: Vec<StepSample>,
    /// Samples dropped by the flight-recorder ring, oldest-first.
    pub evicted_samples: u64,
    /// Structured events sorted by virtual time.
    pub events: Vec<Event>,
    /// Per-accountant `(name, current, peak)` bytes, sorted by name.
    pub watermarks: Vec<(String, u64, u64)>,
    /// Memory roll-up.
    pub memory: MemorySummary,
    /// Critical-path analysis over the causal trace, when the run was
    /// traced (attached by the workflow driver after
    /// [`RunReport::collect`]; `None` when tracing was off).
    pub critical: Option<CriticalReport>,
}

impl RunReport {
    /// Drain `hub` into a report. `watermarks` and `memory` come from
    /// the caller's memtrack registry (core owns that translation).
    pub fn collect(
        manifest: Manifest,
        hub: &TelemetryHub,
        watermarks: Vec<(String, u64, u64)>,
        memory: MemorySummary,
    ) -> Self {
        let (series, evicted_samples) = hub.take_series();
        Self {
            manifest,
            metrics: hub.metrics_snapshot(),
            series,
            evicted_samples,
            events: hub.take_events_sorted(),
            watermarks,
            memory,
            critical: None,
        }
    }

    /// The final value of instrument `name`, if present.
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Events of one kind, in report (virtual-time) order.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Exact p95 of per-step wall (virtual) time from the series
    /// (zero when the series is empty).
    pub fn step_time_p95(&self) -> f64 {
        let mut times: Vec<f64> = self.series.iter().map(|s| s.t_end - s.t_start).collect();
        if times.is_empty() {
            return 0.0;
        }
        times.sort_by(f64::total_cmp);
        let idx = ((0.95 * times.len() as f64).ceil() as usize).max(1) - 1;
        times[idx.min(times.len() - 1)]
    }

    /// Total rank-0 backpressure wait over the series, in seconds.
    pub fn total_backpressure_wait(&self) -> f64 {
        self.series.iter().map(|s| s.backpressure_wait).sum()
    }

    /// Serialize to the `nekstat/run-report/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"schema\": ");
        push_str(&mut o, REPORT_SCHEMA);
        o.push_str(",\n  \"manifest\": {");
        let m = &self.manifest;
        let str_fields = [
            ("case", &m.case),
            ("workflow", &m.workflow),
            ("mode", &m.mode),
            ("exec", &m.exec),
            ("sched", &m.sched),
            ("wire", &m.wire),
            ("machine", &m.machine),
            ("fault_plan", &m.fault_plan),
        ];
        for (k, v) in str_fields {
            o.push_str("\n    ");
            push_str(&mut o, k);
            o.push_str(": ");
            push_str(&mut o, v);
            o.push(',');
        }
        let num_fields = [
            ("ranks", m.ranks as u64),
            ("endpoint_ranks", m.endpoint_ranks as u64),
            ("steps", m.steps),
            ("trigger_every", m.trigger_every),
            ("pool_threads", m.pool_threads as u64),
            ("pipeline_depth", m.pipeline_depth as u64),
        ];
        for (i, (k, v)) in num_fields.iter().enumerate() {
            o.push_str("\n    ");
            push_str(&mut o, k);
            let _ = write!(o, ": {v}");
            if i + 1 < num_fields.len() {
                o.push(',');
            }
        }
        o.push_str("\n  },\n  \"metrics\": [");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            o.push_str("{\"name\": ");
            push_str(&mut o, name);
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(o, ", \"type\": \"counter\", \"value\": {c}");
                }
                MetricValue::Gauge(g) => {
                    o.push_str(", \"type\": \"gauge\", \"value\": ");
                    push_f64(&mut o, *g);
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(o, ", \"type\": \"histogram\", \"count\": {}", h.count);
                    for (k, x) in [
                        ("sum", h.sum),
                        ("p50", h.p50),
                        ("p90", h.p90),
                        ("p95", h.p95),
                        ("p99", h.p99),
                        ("min", h.min),
                        ("max", h.max),
                    ] {
                        let _ = write!(o, ", \"{k}\": ");
                        push_f64(&mut o, x);
                    }
                }
            }
            o.push('}');
        }
        o.push_str("\n  ],\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            let _ = write!(o, "{{\"step\": {}, \"t_start\": ", s.step);
            push_f64(&mut o, s.t_start);
            o.push_str(", \"t_end\": ");
            push_f64(&mut o, s.t_end);
            o.push_str(", \"phase_self\": {");
            for (j, (name, secs)) in s.phase_self.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                push_str(&mut o, name);
                o.push_str(": ");
                push_f64(&mut o, *secs);
            }
            let _ = write!(
                o,
                "}}, \"pool_resident_bytes\": {}, \"pool_free_buffers\": {}",
                s.pool_resident_bytes, s.pool_free_buffers
            );
            o.push_str(", \"backpressure_wait\": ");
            push_f64(&mut o, s.backpressure_wait);
            o.push_str(", \"queue_depth\": ");
            push_f64(&mut o, s.queue_depth);
            let _ = write!(
                o,
                ", \"retries\": {}, \"mem_current\": {}, \"mem_peak\": {}}}",
                s.retries, s.mem_current, s.mem_peak
            );
        }
        let _ = write!(
            o,
            "\n  ],\n  \"evicted_samples\": {},\n  \"events\": [",
            self.evicted_samples
        );
        for (i, e) in self.events.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            o.push_str("{\"at\": ");
            push_f64(&mut o, e.at);
            let _ = write!(o, ", \"pid\": {}, \"rank\": {}, \"step\": ", e.pid, e.rank);
            match e.step {
                Some(s) => {
                    let _ = write!(o, "{s}");
                }
                None => o.push_str("null"),
            }
            o.push_str(", \"kind\": ");
            push_str(&mut o, e.kind.as_str());
            o.push_str(", \"detail\": ");
            push_str(&mut o, &e.detail);
            o.push('}');
        }
        o.push_str("\n  ],\n  \"watermarks\": [");
        for (i, (name, current, peak)) in self.watermarks.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            o.push_str("{\"name\": ");
            push_str(&mut o, name);
            let _ = write!(o, ", \"current\": {current}, \"peak\": {peak}}}");
        }
        let mem = &self.memory;
        let _ = write!(
            o,
            "\n  ],\n  \"memory\": {{\"host_aggregate_peak\": {}, \"host_max_rank_peak\": {}, \"gpu_aggregate_peak\": {}, \"unscoped\": {}}}",
            mem.host_aggregate_peak, mem.host_max_rank_peak, mem.gpu_aggregate_peak, mem.unscoped
        );
        if let Some(c) = &self.critical {
            o.push_str(",\n  \"critical\": ");
            push_critical(&mut o, c);
        }
        o.push_str("\n}\n");
        o
    }

    /// Parse a `nekstat/run-report/v1` document.
    ///
    /// # Errors
    /// Malformed JSON or a layout that does not match the schema.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != REPORT_SCHEMA {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let man = v.get("manifest").ok_or("missing manifest")?;
        let gs = |k: &str| -> String {
            man.get(k)
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let gn = |k: &str| -> u64 { man.get(k).and_then(Value::as_u64).unwrap_or(0) };
        let manifest = Manifest {
            case: gs("case"),
            workflow: gs("workflow"),
            mode: gs("mode"),
            exec: gs("exec"),
            sched: gs("sched"),
            wire: gs("wire"),
            ranks: gn("ranks") as usize,
            endpoint_ranks: gn("endpoint_ranks") as usize,
            steps: gn("steps"),
            trigger_every: gn("trigger_every"),
            machine: gs("machine"),
            fault_plan: gs("fault_plan"),
            pool_threads: gn("pool_threads") as usize,
            pipeline_depth: gn("pipeline_depth") as usize,
        };
        let mut metrics = Vec::new();
        for mv in v
            .get("metrics")
            .and_then(Value::as_arr)
            .ok_or("missing metrics")?
        {
            let name = mv
                .get("name")
                .and_then(Value::as_str)
                .ok_or("metric without name")?
                .to_string();
            let kind = mv.get("type").and_then(Value::as_str).unwrap_or("");
            let value = match kind {
                "counter" => {
                    MetricValue::Counter(mv.get("value").and_then(Value::as_u64).unwrap_or(0))
                }
                "gauge" => {
                    MetricValue::Gauge(mv.get("value").and_then(Value::as_f64).unwrap_or(0.0))
                }
                "histogram" => {
                    let f = |k: &str| mv.get(k).and_then(Value::as_f64).unwrap_or(0.0);
                    MetricValue::Histogram(HistogramSnapshot {
                        count: mv.get("count").and_then(Value::as_u64).unwrap_or(0),
                        sum: f("sum"),
                        p50: f("p50"),
                        p90: f("p90"),
                        p95: f("p95"),
                        p99: f("p99"),
                        min: f("min"),
                        max: f("max"),
                    })
                }
                other => return Err(format!("unknown metric type {other:?}")),
            };
            metrics.push((name, value));
        }
        let mut series = Vec::new();
        for sv in v
            .get("series")
            .and_then(Value::as_arr)
            .ok_or("missing series")?
        {
            let f = |k: &str| sv.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let n = |k: &str| sv.get(k).and_then(Value::as_u64).unwrap_or(0);
            let mut phase_self = Vec::new();
            if let Some(Value::Obj(m)) = sv.get("phase_self") {
                for (k, x) in m {
                    phase_self.push((k.clone(), x.as_f64().unwrap_or(0.0)));
                }
            }
            series.push(StepSample {
                step: n("step"),
                t_start: f("t_start"),
                t_end: f("t_end"),
                phase_self,
                pool_resident_bytes: n("pool_resident_bytes"),
                pool_free_buffers: n("pool_free_buffers"),
                backpressure_wait: f("backpressure_wait"),
                queue_depth: f("queue_depth"),
                retries: n("retries"),
                mem_current: n("mem_current"),
                mem_peak: n("mem_peak"),
            });
        }
        let mut events = Vec::new();
        for ev in v
            .get("events")
            .and_then(Value::as_arr)
            .ok_or("missing events")?
        {
            let kind = ev
                .get("kind")
                .and_then(Value::as_str)
                .and_then(EventKind::parse)
                .ok_or("event with unknown kind")?;
            events.push(Event {
                at: ev.get("at").and_then(Value::as_f64).unwrap_or(0.0),
                pid: ev.get("pid").and_then(Value::as_u64).unwrap_or(0) as u32,
                rank: ev.get("rank").and_then(Value::as_u64).unwrap_or(0) as usize,
                step: ev.get("step").and_then(Value::as_u64),
                kind,
                detail: ev
                    .get("detail")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        let mut watermarks = Vec::new();
        for wv in v
            .get("watermarks")
            .and_then(Value::as_arr)
            .unwrap_or_default()
        {
            watermarks.push((
                wv.get("name")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                wv.get("current").and_then(Value::as_u64).unwrap_or(0),
                wv.get("peak").and_then(Value::as_u64).unwrap_or(0),
            ));
        }
        let memv = v.get("memory").ok_or("missing memory")?;
        let mn = |k: &str| memv.get(k).and_then(Value::as_u64).unwrap_or(0);
        let critical = match v.get("critical") {
            Some(cv) => Some(parse_critical(cv)?),
            None => None,
        };
        Ok(Self {
            manifest,
            metrics,
            series,
            evicted_samples: v
                .get("evicted_samples")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            events,
            watermarks,
            memory: MemorySummary {
                host_aggregate_peak: mn("host_aggregate_peak"),
                host_max_rank_peak: mn("host_max_rank_peak"),
                gpu_aggregate_peak: mn("gpu_aggregate_peak"),
                unscoped: mn("unscoped"),
            },
            critical,
        })
    }
}

fn push_contribs(o: &mut String, list: &[CritContrib]) {
    o.push('[');
    for (i, c) in list.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        let _ = write!(o, "{{\"pid\": {}, \"rank\": {}, \"phase\": ", c.pid, c.rank);
        push_str(o, &c.phase);
        o.push_str(", \"secs\": ");
        push_f64(o, c.secs);
        o.push('}');
    }
    o.push(']');
}

/// Serialize a [`CriticalReport`] as the `nekstat/critical-path/v1`
/// object (embedded in the run report and emitted standalone by
/// `nekstat critical-path --json`).
pub fn push_critical(o: &mut String, c: &CriticalReport) {
    o.push_str("{\"schema\": ");
    push_str(o, CRITICAL_SCHEMA);
    let _ = write!(o, ", \"segments\": {}, \"total\": ", c.segments);
    push_f64(o, c.total);
    o.push_str(",\n    \"contrib\": ");
    push_contribs(o, &c.contrib);
    o.push_str(",\n    \"steps\": [");
    for (i, s) in c.steps.iter().enumerate() {
        o.push_str(if i == 0 { "\n      " } else { ",\n      " });
        let _ = write!(o, "{{\"step\": {}, \"t_from\": ", s.step);
        push_f64(o, s.t_from);
        o.push_str(", \"t_to\": ");
        push_f64(o, s.t_to);
        o.push_str(", \"total\": ");
        push_f64(o, s.total);
        let _ = write!(o, ", \"dropped\": {}, \"contrib\": ", s.dropped);
        push_contribs(o, &s.contrib);
        o.push('}');
    }
    o.push_str("],\n    \"slack\": [");
    for (i, s) in c.slack.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        let _ = write!(o, "{{\"pid\": {}, \"rank\": {}, \"wait_s\": ", s.pid, s.rank);
        push_f64(o, s.wait_s);
        o.push('}');
    }
    o.push_str("]}");
}

fn parse_contribs(v: Option<&Value>) -> Result<Vec<CritContrib>, String> {
    let mut out = Vec::new();
    for cv in v.and_then(Value::as_arr).ok_or("missing contrib list")? {
        out.push(CritContrib {
            pid: cv.get("pid").and_then(Value::as_u64).unwrap_or(0) as u32,
            rank: cv.get("rank").and_then(Value::as_u64).unwrap_or(0) as usize,
            phase: cv
                .get("phase")
                .and_then(Value::as_str)
                .ok_or("contrib without phase")?
                .to_string(),
            secs: cv.get("secs").and_then(Value::as_f64).unwrap_or(0.0),
        });
    }
    Ok(out)
}

/// Parse the `nekstat/critical-path/v1` object.
///
/// # Errors
/// Malformed JSON or a schema tag mismatch.
pub fn parse_critical(cv: &Value) -> Result<CriticalReport, String> {
    let schema = cv
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("critical block without schema tag")?;
    if schema != CRITICAL_SCHEMA {
        return Err(format!("unsupported critical-path schema {schema:?}"));
    }
    let mut steps = Vec::new();
    for sv in cv.get("steps").and_then(Value::as_arr).unwrap_or_default() {
        let f = |k: &str| sv.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        steps.push(StepCritical {
            step: sv.get("step").and_then(Value::as_u64).unwrap_or(0),
            t_from: f("t_from"),
            t_to: f("t_to"),
            total: f("total"),
            contrib: parse_contribs(sv.get("contrib"))?,
            dropped: sv.get("dropped").and_then(Value::as_u64).unwrap_or(0),
        });
    }
    let mut slack = Vec::new();
    for rv in cv.get("slack").and_then(Value::as_arr).unwrap_or_default() {
        slack.push(RankSlack {
            pid: rv.get("pid").and_then(Value::as_u64).unwrap_or(0) as u32,
            rank: rv.get("rank").and_then(Value::as_u64).unwrap_or(0) as usize,
            wait_s: rv.get("wait_s").and_then(Value::as_f64).unwrap_or(0.0),
        });
    }
    Ok(CriticalReport {
        total: cv.get("total").and_then(Value::as_f64).unwrap_or(0.0),
        segments: cv.get("segments").and_then(Value::as_u64).unwrap_or(0),
        contrib: parse_contribs(cv.get("contrib"))?,
        steps,
        slack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> RunReport {
        let hub = TelemetryHub::default();
        let rt = crate::RankTelemetry::new(&hub, 0, 0);
        rt.counter("transport/retries").add(3);
        rt.gauge("pool/free").set(2.0);
        let h = rt.histogram("sem/step_time");
        for v in [0.1, 0.2, 0.3, 0.9] {
            h.observe(v);
        }
        rt.event(1.25, EventKind::CircuitBreakerOpen, Some(6), "3 strikes");
        rt.event(0.5, EventKind::FaultInjected, Some(2), "stall 50s");
        hub.record(StepSample {
            step: 1,
            t_start: 0.0,
            t_end: 0.4,
            phase_self: vec![("sem/cg".into(), 0.3), ("snapshot/publish".into(), 0.05)],
            pool_resident_bytes: 1024,
            pool_free_buffers: 2,
            backpressure_wait: 0.0,
            queue_depth: 0.0,
            retries: 0,
            mem_current: 4096,
            mem_peak: 8192,
        });
        hub.record(StepSample {
            step: 2,
            t_start: 0.5,
            t_end: 1.5,
            backpressure_wait: 0.25,
            retries: 3,
            ..StepSample::default()
        });
        RunReport::collect(
            Manifest {
                case: "pb146".into(),
                workflow: "insitu".into(),
                mode: "checkpointing".into(),
                exec: "pipelined".into(),
                sched: "thread".into(),
                wire: "channel".into(),
                ranks: 4,
                endpoint_ranks: 0,
                steps: 2,
                trigger_every: 1,
                machine: "polaris-derated".into(),
                fault_plan: "consumer stall @2".into(),
                pool_threads: 4,
                pipeline_depth: 2,
            },
            &hub,
            vec![("rank0/solver".into(), 100, 200)],
            MemorySummary {
                host_aggregate_peak: 200,
                host_max_rank_peak: 200,
                gpu_aggregate_peak: 50,
                unscoped: 7,
            },
        )
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = fixture();
        let text = report.to_json();
        let parsed = RunReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_round_trip_keeps_critical_block() {
        let mut report = fixture();
        report.critical = Some(CriticalReport {
            total: 1.5,
            segments: 3,
            contrib: vec![CritContrib {
                pid: 0,
                rank: 2,
                phase: "sem/cg".into(),
                secs: 1.25,
            }],
            steps: vec![StepCritical {
                step: 1,
                t_from: 0.0,
                t_to: 0.75,
                total: 0.75,
                contrib: vec![CritContrib {
                    pid: 1,
                    rank: 0,
                    phase: "net/wire".into(),
                    secs: 0.5,
                }],
                dropped: 2,
            }],
            slack: vec![RankSlack {
                pid: 0,
                rank: 0,
                wait_s: 0.25,
            }],
        });
        let text = report.to_json();
        assert!(text.contains(CRITICAL_SCHEMA));
        let parsed = RunReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn collect_sorts_events_by_virtual_time() {
        let report = fixture();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].kind, EventKind::FaultInjected);
        assert_eq!(report.events[1].kind, EventKind::CircuitBreakerOpen);
        assert!(report.events[0].at < report.events[1].at);
    }

    #[test]
    fn derived_readouts_match_series() {
        let report = fixture();
        assert_eq!(report.step_time_p95(), 1.0, "slowest of two steps");
        assert_eq!(report.total_backpressure_wait(), 0.25);
        assert_eq!(
            report.metric("rank0/transport/retries"),
            Some(&MetricValue::Counter(3))
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(RunReport::from_json("{\"schema\": \"other/v9\"}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
