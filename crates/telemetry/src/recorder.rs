//! The flight recorder: a bounded per-step time series plus the
//! structured event log, both on the virtual-time axis.

use std::collections::VecDeque;

/// What kind of run-level incident an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A `FaultPlan` entry fired (drop, corruption, delay, stall).
    FaultInjected,
    /// A transport writer's circuit breaker opened (endpoint presumed
    /// dead; subsequent writes fail fast).
    CircuitBreakerOpen,
    /// A producer switched from the SST engine to the BP file engine.
    EngineSwitch,
    /// An fld checkpoint was written.
    CheckpointWrite,
    /// An endpoint rank crashed per the fault plan.
    EndpointCrash,
    /// The run supervisor observed a recoverable failure and began a
    /// restore-and-restart cycle.
    RecoveryStarted,
    /// The run supervisor restored from a checkpoint generation and
    /// resumed the run.
    RecoveryCompleted,
    /// A checkpoint generation failed manifest/CRC validation and was
    /// quarantined (it will never be restored from).
    GenerationQuarantined,
}

impl EventKind {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::FaultInjected => "fault_injected",
            Self::CircuitBreakerOpen => "circuit_breaker_open",
            Self::EngineSwitch => "engine_switch",
            Self::CheckpointWrite => "checkpoint_write",
            Self::EndpointCrash => "endpoint_crash",
            Self::RecoveryStarted => "recovery_started",
            Self::RecoveryCompleted => "recovery_completed",
            Self::GenerationQuarantined => "generation_quarantined",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "fault_injected" => Self::FaultInjected,
            "circuit_breaker_open" => Self::CircuitBreakerOpen,
            "engine_switch" => Self::EngineSwitch,
            "checkpoint_write" => Self::CheckpointWrite,
            "endpoint_crash" => Self::EndpointCrash,
            "recovery_started" => Self::RecoveryStarted,
            "recovery_completed" => Self::RecoveryCompleted,
            "generation_quarantined" => Self::GenerationQuarantined,
            _ => return None,
        })
    }
}

/// One structured incident, stamped with virtual time and rank
/// identity (pid 0 = simulation world, pid ≥ 1 = endpoint world).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time on the emitting rank's clock.
    pub at: f64,
    /// World id.
    pub pid: u32,
    /// Rank within the world.
    pub rank: usize,
    /// Solver / trigger step the event belongs to, when known.
    pub step: Option<u64>,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (`"stall 50s"`, `"parked to bp4l"`, …).
    pub detail: String,
}

/// One row of the per-step time series, sampled on simulation rank 0
/// after each step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepSample {
    /// Solver step number (1-based).
    pub step: u64,
    /// Rank 0 virtual time when the step began.
    pub t_start: f64,
    /// Rank 0 virtual time when the step (and any synchronous in situ
    /// work) finished.
    pub t_end: f64,
    /// Per-phase self time accrued *during this step*, from the span
    /// tracer (`(span name, seconds)`; empty when tracing is off).
    pub phase_self: Vec<(String, f64)>,
    /// Snapshot-pool resident bytes after the step.
    pub pool_resident_bytes: u64,
    /// Snapshot-pool free buffers after the step.
    pub pool_free_buffers: u64,
    /// Seconds rank 0 spent waiting for pipeline credits this step.
    pub backpressure_wait: f64,
    /// Staging queue depth summed over endpoint readers (bytes).
    pub queue_depth: f64,
    /// Cumulative transport retries across all producers.
    pub retries: u64,
    /// Host bytes currently allocated (tracked ranks, all subsystems).
    pub mem_current: u64,
    /// Host high-water mark so far.
    pub mem_peak: u64,
}

/// Fixed-capacity ring of [`StepSample`]s: when full, recording a new
/// step evicts the **oldest** so the retained series stays contiguous
/// and ends at the latest step.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    samples: VecDeque<StepSample>,
    evicted: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring size — ample for every figure harness (≤ a few
    /// thousand steps) while bounding memory for long runs.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A recorder retaining at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            samples: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Append a sample, evicting the oldest when at capacity.
    pub fn record(&mut self, sample: StepSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(sample);
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// How many samples have been evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Non-draining peek: `(step, t_start, t_end)` of every retained
    /// sample, in step order.
    pub fn bounds(&self) -> Vec<(u64, f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.step, s.t_start, s.t_end))
            .collect()
    }

    /// Drain: `(samples in step order, evicted count)`.
    pub fn take(&mut self) -> (Vec<StepSample>, u64) {
        let evicted = self.evicted;
        self.evicted = 0;
        (std::mem::take(&mut self.samples).into(), evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: u64) -> StepSample {
        StepSample {
            step,
            t_start: step as f64,
            t_end: step as f64 + 0.5,
            ..StepSample::default()
        }
    }

    /// Satellite: ring overflow evicts oldest-first and keeps the
    /// retained series contiguous.
    #[test]
    fn overflow_evicts_oldest_and_series_stays_contiguous() {
        let mut r = FlightRecorder::new(8);
        for step in 1..=20 {
            r.record(sample(step));
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.evicted(), 12);
        let (series, evicted) = r.take();
        assert_eq!(evicted, 12);
        let steps: Vec<u64> = series.iter().map(|s| s.step).collect();
        assert_eq!(steps, (13..=20).collect::<Vec<_>>(), "newest 8, in order");
        for w in series.windows(2) {
            assert_eq!(w[1].step, w[0].step + 1, "no gaps after eviction");
        }
        assert!(r.is_empty(), "take drains");
        assert_eq!(r.evicted(), 0, "take resets the eviction counter");
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = FlightRecorder::new(100);
        for step in 1..=5 {
            r.record(sample(step));
        }
        let (series, evicted) = r.take();
        assert_eq!(evicted, 0);
        assert_eq!(series.len(), 5);
        assert_eq!(series[0].step, 1);
    }

    #[test]
    fn event_kind_tags_roundtrip() {
        for kind in [
            EventKind::FaultInjected,
            EventKind::CircuitBreakerOpen,
            EventKind::EngineSwitch,
            EventKind::CheckpointWrite,
            EventKind::EndpointCrash,
            EventKind::RecoveryStarted,
            EventKind::RecoveryCompleted,
            EventKind::GenerationQuarantined,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("nope"), None);
    }
}
