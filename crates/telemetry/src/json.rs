//! Minimal JSON reader/writer helpers (the workspace vendors no serde).
//!
//! The writer side is a handful of escape/format helpers used by
//! [`crate::RunReport::to_json`]; the reader side is a small
//! recursive-descent parser producing a [`Value`] tree, enough for
//! `nekstat` and the report round-trip tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String (unescaped).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (key order not preserved; keys are unique).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse `text` as a single JSON document.
///
/// # Errors
/// A human-readable message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let step = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >> 5 == 0b110 => 2,
                        b if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..step])
                            .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?,
                    );
                    self.pos += step;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Append `s` as a JSON string (with quotes) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number (shortest round-trip form; non-finite
/// values — which no virtual-clock quantity produces — write as 0).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x\n\"y\""], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn writer_escapes_round_trip() {
        let mut out = String::new();
        push_str(&mut out, "line\nwith \"quotes\" and \\ tab\t\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("line\nwith \"quotes\" and \\ tab\t\u{1}"));
    }

    #[test]
    fn f64_round_trips_shortest_form() {
        for x in [0.0, 1.5, 0.1, 1e-12, 123456.789, 2.5e8] {
            let mut out = String::new();
            push_f64(&mut out, x);
            let v = parse(&out).unwrap();
            assert_eq!(v.as_f64(), Some(x), "{out}");
        }
    }
}
