//! Unified telemetry bus for the NekRS-SENSEI reproduction.
//!
//! Three layers, all driven by the **virtual clock** (never the wall
//! clock, so telemetry can never perturb the deterministic timings it
//! observes):
//!
//! 1. **Typed instruments** ([`Counter`], [`Gauge`], [`Histogram`])
//!    registered under hierarchical names (`rank3/transport/retries`)
//!    on a shared [`TelemetryHub`]. Handles are cheap clones of atomics:
//!    registration takes a short mutex once, every subsequent update is
//!    a lock-free atomic op. A handle obtained from a disabled
//!    [`RankTelemetry`] is a no-op, so producer code stays branch-free.
//! 2. **Flight recorder**: a fixed-capacity ring buffer of per-step
//!    [`StepSample`]s (step time, per-phase self time, snapshot-pool
//!    occupancy, backpressure wait, transport queue depth/retries,
//!    memory watermarks) plus a structured [`Event`] log (fault
//!    injections, circuit-breaker opens, engine switches, checkpoint
//!    writes) with virtual timestamps.
//! 3. **[`RunReport`]**: one serializable artifact per run — manifest,
//!    final metric values, the time series, and the event log — written
//!    by `--report-out` on the figure harnesses and read back by the
//!    `nekstat` bin (hand-rolled JSON both ways; the workspace has no
//!    serde).
//!
//! The crate is substrate-free (std only): `commsim` carries a
//! [`RankTelemetry`] per rank and stamps events with its clock, while
//! `core::workflow` owns the hub and collects the report.

mod instruments;
mod recorder;
mod report;

pub mod json;

pub use instruments::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, TelemetryHub};
pub use recorder::{Event, EventKind, FlightRecorder, StepSample};
pub use report::{
    parse_critical, push_critical, Manifest, MemorySummary, RunReport, REPORT_SCHEMA,
};

use std::sync::Arc;

/// Per-rank handle onto a [`TelemetryHub`]: prefixes instrument names
/// with the rank scope and stamps events with pid/rank identity.
///
/// `Default` is the **disabled** handle: every method is a no-op and
/// every instrument it hands out is a no-op, so instrumented code paths
/// need no `if telemetry_enabled` branches.
#[derive(Clone, Default)]
pub struct RankTelemetry {
    inner: Option<Arc<RankScope>>,
}

struct RankScope {
    hub: TelemetryHub,
    prefix: String,
    pid: u32,
    rank: usize,
}

impl RankTelemetry {
    /// An enabled handle scoped to `rank` of world `pid`. Pid 0 (the
    /// simulation world) scopes names under `rank{r}/`; any other pid
    /// (the in-transit endpoint world) under `endpoint{r}/`, so the two
    /// worlds — which both number their ranks from zero — cannot
    /// collide in the hub's namespace.
    pub fn new(hub: &TelemetryHub, pid: u32, rank: usize) -> Self {
        let prefix = if pid == 0 {
            format!("rank{rank}/")
        } else {
            format!("endpoint{rank}/")
        };
        Self {
            inner: Some(Arc::new(RankScope {
                hub: hub.clone(),
                prefix,
                pid,
                rank,
            })),
        }
    }

    /// True when this handle feeds a live hub.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Monotonic counter `prefix + name` (no-op when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(s) => s.hub.counter(&format!("{}{name}", s.prefix)),
            None => Counter::disabled(),
        }
    }

    /// Gauge `prefix + name` (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(s) => s.hub.gauge(&format!("{}{name}", s.prefix)),
            None => Gauge::disabled(),
        }
    }

    /// Log-linear histogram `prefix + name` (no-op when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(s) => s.hub.histogram(&format!("{}{name}", s.prefix)),
            None => Histogram::disabled(),
        }
    }

    /// Append a structured event at virtual time `at`.
    pub fn event(&self, at: f64, kind: EventKind, step: Option<u64>, detail: impl Into<String>) {
        if let Some(s) = &self.inner {
            s.hub.push_event(Event {
                at,
                pid: s.pid,
                rank: s.rank,
                step,
                kind,
                detail: detail.into(),
            });
        }
    }

    /// The hub behind this handle, if enabled.
    pub fn hub(&self) -> Option<&TelemetryHub> {
        self.inner.as_ref().map(|s| &s.hub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = RankTelemetry::default();
        assert!(!t.enabled());
        let c = t.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = t.gauge("y");
        g.set(3.0);
        assert_eq!(g.get(), 0.0);
        let h = t.histogram("z");
        h.observe(1.0);
        assert_eq!(h.snapshot().count, 0);
        t.event(1.0, EventKind::FaultInjected, None, "ignored");
    }

    #[test]
    fn rank_scope_prefixes_names_by_world() {
        let hub = TelemetryHub::default();
        let sim = RankTelemetry::new(&hub, 0, 3);
        let ep = RankTelemetry::new(&hub, 1, 3);
        sim.counter("transport/retries").add(2);
        ep.counter("transport/retries").add(7);
        let metrics = hub.metrics_snapshot();
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["endpoint3/transport/retries", "rank3/transport/retries"]
        );
        assert_eq!(hub.counter_sum("transport/retries"), 9);
    }

    #[test]
    fn events_carry_identity_and_sort_by_time() {
        let hub = TelemetryHub::default();
        let t0 = RankTelemetry::new(&hub, 0, 0);
        let t1 = RankTelemetry::new(&hub, 1, 2);
        t1.event(2.5, EventKind::EndpointCrash, Some(4), "crash");
        t0.event(1.0, EventKind::CheckpointWrite, Some(2), "fld");
        let events = hub.take_events_sorted();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 1.0);
        assert_eq!(events[0].kind, EventKind::CheckpointWrite);
        assert_eq!(events[1].pid, 1);
        assert_eq!(events[1].rank, 2);
    }
}
