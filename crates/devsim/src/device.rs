//! The device handle and kernel-launch mechanism.

use crate::buffer::DeviceBuf;
use commsim::Comm;
use memtrack::Accountant;

/// Capability token proving code runs "on the device".
///
/// Only [`Device::launch`] can construct one; [`DeviceBuf::view`] and
/// [`DeviceBuf::view_mut`] require it. This is how the crate guarantees that
/// every host-side consumer of simulation data went through an explicit,
/// costed device→host copy — the invariant the paper's overhead numbers
/// hinge on.
pub struct KernelCtx {
    _private: (),
}

/// Cost declaration for one kernel launch: floating-point work and device
/// memory traffic. The virtual clock charges the roofline maximum of the
/// two, matching how SEM kernels are reported in the NekRS literature
/// (mostly bandwidth-bound at low polynomial order, flop-bound at high).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read + written in device memory.
    pub bytes: f64,
}

impl KernelSpec {
    /// A kernel with explicit flop and byte counts.
    pub fn new(flops: f64, bytes: f64) -> Self {
        Self { flops, bytes }
    }

    /// Convenience alias emphasizing a bandwidth-bound kernel.
    pub fn streaming(flops: f64, bytes: f64) -> Self {
        Self { flops, bytes }
    }
}

/// A simulated GPU attached to one rank (the paper maps one MPI rank to one
/// A100 on both Polaris and JUWELS Booster).
pub struct Device {
    accountant: Accountant,
}

impl Device {
    /// Create the device for this rank; device allocations are charged to
    /// the rank's `gpu` accountant.
    pub fn new(comm: &Comm) -> Self {
        Self {
            accountant: comm.accountant("gpu"),
        }
    }

    /// Allocate a zero-initialized device buffer of `n` elements.
    pub fn malloc<T: Copy + Default>(&self, n: usize) -> DeviceBuf<T> {
        DeviceBuf::new(vec![T::default(); n], &self.accountant)
    }

    /// Allocate a device buffer and fill it from host data, charging the
    /// host→device transfer.
    pub fn upload<T: Copy + Default>(&self, comm: &mut Comm, host: &[T]) -> DeviceBuf<T> {
        let mut buf = self.malloc::<T>(host.len());
        buf.copy_from_host(comm, host);
        buf
    }

    /// Run a "device kernel": charge `spec`'s roofline cost to the rank's
    /// virtual clock, then execute `body` with the kernel capability token.
    pub fn launch<R>(
        &self,
        comm: &mut Comm,
        spec: KernelSpec,
        body: impl FnOnce(&KernelCtx) -> R,
    ) -> R {
        let ctx = self.begin_kernel(comm, spec);
        body(&ctx)
    }

    /// Charge `spec`'s cost and hand back the kernel token directly.
    ///
    /// Solver code prefers this over [`Device::launch`] when a kernel body
    /// must interleave with communication (e.g. CG inner products): the
    /// token and buffer views borrow the buffers, leaving the communicator
    /// free for `allreduce` between kernel stages.
    pub fn begin_kernel(&self, comm: &mut Comm, spec: KernelSpec) -> KernelCtx {
        comm.compute_gpu(spec.flops, spec.bytes);
        KernelCtx { _private: () }
    }

    /// Bytes currently allocated on this device.
    pub fn bytes_allocated(&self) -> u64 {
        self.accountant.current()
    }

    /// Peak bytes allocated on this device.
    pub fn peak_bytes_allocated(&self) -> u64 {
        self.accountant.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};

    #[test]
    fn malloc_charges_and_drop_credits_device_memory() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let buf = device.malloc::<f64>(1000);
            let during = device.bytes_allocated();
            drop(buf);
            (
                during,
                device.bytes_allocated(),
                device.peak_bytes_allocated(),
            )
        });
        let (during, after, peak) = res[0];
        assert_eq!(during, 8000);
        assert_eq!(after, 0);
        assert_eq!(peak, 8000);
    }

    #[test]
    fn launch_charges_roofline_time() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let t0 = comm.now();
            // 2e9 flops at 1 GF/s => 2 s (flop-bound in the tiny model).
            device.launch(comm, KernelSpec::new(2.0e9, 8.0), |_| {});
            comm.now() - t0
        });
        assert!((res[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn upload_charges_h2d_bytes() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let _buf = device.upload(comm, &[0u8; 500]);
            comm.stats().bytes_h2d
        });
        assert_eq!(res[0], 500);
    }
}
