//! Device-resident buffers.

use crate::device::KernelCtx;
use commsim::Comm;
use memtrack::{Accountant, Charge};

/// A typed allocation in simulated device memory.
///
/// Host code cannot obtain a slice from a `DeviceBuf`; the only ways data
/// crosses the host/device boundary are [`DeviceBuf::copy_to_host`] and
/// [`DeviceBuf::copy_from_host`], both of which charge the rank's virtual
/// clock with the transfer cost — mirroring `occa::memory::copyTo/copyFrom`.
pub struct DeviceBuf<T> {
    data: Vec<T>,
    _charge: Charge,
}

impl<T: Copy + Default> DeviceBuf<T> {
    pub(crate) fn new(data: Vec<T>, accountant: &Accountant) -> Self {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        Self {
            data,
            _charge: accountant.charge(bytes),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (what a D2H copy of the whole buffer moves).
    pub fn nbytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }

    /// Read access from device code (requires the kernel token).
    pub fn view<'a>(&'a self, _ctx: &KernelCtx) -> &'a [T] {
        &self.data
    }

    /// Write access from device code (requires the kernel token).
    pub fn view_mut<'a>(&'a mut self, _ctx: &KernelCtx) -> &'a mut [T] {
        &mut self.data
    }

    /// Copy the whole buffer to `out` (resized to fit), charging D2H time.
    pub fn copy_to_host(&self, comm: &mut Comm, out: &mut Vec<T>) {
        out.clear();
        out.extend_from_slice(&self.data);
        comm.d2h(self.nbytes());
    }

    /// Copy a prefix range `[0, n)` to `out`, charging D2H time for `n`
    /// elements only (partial field staging).
    pub fn copy_prefix_to_host(&self, comm: &mut Comm, n: usize, out: &mut Vec<T>) {
        assert!(n <= self.data.len(), "prefix longer than buffer");
        out.clear();
        out.extend_from_slice(&self.data[..n]);
        comm.d2h((n * std::mem::size_of::<T>()) as u64);
    }

    /// Overwrite the buffer from host data, charging H2D time.
    ///
    /// # Panics
    /// Panics if `src.len() != self.len()` — device allocations are fixed
    /// size, like `occa::memory`.
    pub fn copy_from_host(&mut self, comm: &mut Comm, src: &[T]) {
        assert_eq!(
            src.len(),
            self.data.len(),
            "host/device size mismatch in copy_from_host"
        );
        self.data.copy_from_slice(src);
        comm.h2d(self.nbytes());
    }
}

#[cfg(test)]
mod tests {
    use crate::device::{Device, KernelSpec};
    use commsim::{run_ranks, MachineModel};

    #[test]
    fn copy_roundtrip_preserves_data() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let src: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
            let buf = device.upload(comm, &src);
            let mut back = Vec::new();
            buf.copy_to_host(comm, &mut back);
            (src, back)
        });
        let (src, back) = res[0].clone();
        assert_eq!(src, back);
    }

    #[test]
    fn partial_copy_charges_partial_bytes() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let buf = device.upload(comm, &vec![1.0f64; 100]);
            let before = comm.stats().bytes_d2h;
            let mut out = Vec::new();
            buf.copy_prefix_to_host(comm, 10, &mut out);
            (out.len(), comm.stats().bytes_d2h - before)
        });
        assert_eq!(res[0], (10, 80));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn copy_from_host_rejects_wrong_size() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let mut buf = device.malloc::<f64>(4);
            buf.copy_from_host(comm, &[1.0; 5]);
        });
    }

    #[test]
    fn kernel_views_mutate_device_data() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let mut buf = device.upload(comm, &[1.0f64, 2.0]);
            device.launch(comm, KernelSpec::new(2.0, 32.0), |ctx| {
                for v in buf.view_mut(ctx) {
                    *v *= 10.0;
                }
            });
            let mut out = Vec::new();
            buf.copy_to_host(comm, &mut out);
            out
        });
        assert_eq!(res[0], vec![10.0, 20.0]);
    }
}
