//! `devsim` — an OCCA-like device abstraction.
//!
//! NekRS keeps every field on the GPU through OCCA device memory, and the
//! paper's central engineering constraint is that **VTK (and therefore
//! SENSEI) cannot consume device memory**: each in situ trigger must copy
//! fields to the host first, paying PCIe bandwidth and host memory.
//!
//! `devsim` enforces that constraint *structurally*:
//!
//! * [`DeviceBuf`] holds data that host code cannot read or write directly —
//!   there is no `Deref` to a slice.
//! * Compute happens inside [`Device::launch`], which charges the rank's
//!   virtual clock with a roofline kernel cost and hands the closure a
//!   [`KernelCtx`] token; only with that token can buffers be viewed as
//!   slices (that is "device code").
//! * Moving data to host code requires [`DeviceBuf::copy_to_host`] /
//!   [`DeviceBuf::copy_from_host`], which charge the D2H/H2D transfer cost
//!   exactly like `occa::memcpy` over PCIe.
//!
//! Device allocations are tracked in a per-rank `gpu` accountant so the
//! harnesses can report device vs host footprints separately.

pub mod buffer;
pub mod device;

pub use buffer::DeviceBuf;
pub use device::{Device, KernelCtx, KernelSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};

    #[test]
    fn end_to_end_saxpy_on_device() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let device = Device::new(comm);
            let x = device.upload(comm, &[1.0f64, 2.0, 3.0]);
            let mut y = device.upload(comm, &[10.0f64, 20.0, 30.0]);
            device.launch(
                comm,
                KernelSpec::streaming(2.0 * 3.0, (3 * 8 * 3) as f64),
                |ctx| {
                    let ys = y.view_mut(ctx);
                    let xs = x.view(ctx);
                    for (yi, xi) in ys.iter_mut().zip(xs) {
                        *yi += 2.0 * *xi;
                    }
                },
            );
            let mut out = vec![0.0; 3];
            y.copy_to_host(comm, &mut out);
            (out, comm.stats().bytes_d2h, comm.now())
        });
        let (out, d2h, t) = res[0].clone();
        assert_eq!(out, vec![12.0, 24.0, 36.0]);
        assert_eq!(d2h, 24);
        assert!(t > 0.0, "kernel + transfers must cost virtual time");
    }
}
