//! `meshdata` — a VTK-like scientific data model.
//!
//! SENSEI's contract is that simulations present their data "aligned with
//! the VTK data model"; Catalyst consumes VTK datasets; the in-transit
//! endpoint of the paper writes **VTU** files as its checkpointing mode.
//! With VTK unavailable in Rust, this crate rebuilds the slice of the model
//! the paper exercises:
//!
//! * [`DataArray`] — named, typed, multi-component tuples (point/cell data).
//! * [`UnstructuredGrid`] — points + mixed-type cells + attached arrays;
//!   spectral elements become hexahedra here, exactly as NekRS's VTK
//!   export subdivides each high-order element into `N³` linear hexes.
//! * [`MultiBlock`] — one block per rank, SENSEI's multi-block convention.
//! * [`MeshMetadata`] — the `GetMeshMetadata` answer: array names,
//!   centerings, counts, bounds.
//! * [`writer`] — legacy `.vtk` ASCII, `.vtu` XML (inline-ASCII or raw
//!   appended binary), and `.pvtu` parallel index files. Checkpointing
//!   cost/size measurements in the figure harnesses use the exact byte
//!   counts these writers produce.
//! * [`reader`] — a `.vtu` reader for round-trip validation.
//! * [`xml`] — the minimal XML parser backing both the VTU reader and the
//!   SENSEI-style runtime configuration files.

pub mod array;
pub mod metadata;
pub mod multiblock;
pub mod reader;
pub mod ugrid;
pub mod writer;
pub mod xml;

pub use array::{ArrayData, Centering, DataArray};
pub use metadata::{ArrayInfo, MeshMetadata};
pub use multiblock::MultiBlock;
pub use ugrid::{CellType, UnstructuredGrid};

/// Errors produced by readers/writers and model validation.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in a dataset (mismatched lengths, bad cell ids).
    Invalid(String),
    /// Malformed file or XML while reading.
    Parse(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Invalid(m) => write!(f, "invalid dataset: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
