//! Mesh metadata — the answer to SENSEI's `GetMeshMetadata`.
//!
//! Analyses use metadata to decide which arrays to pull *before* any heavy
//! data movement happens; this is what lets the Catalyst adaptor request
//! only pressure + velocity instead of every solver field.

use crate::array::Centering;
use crate::multiblock::MultiBlock;

/// Description of one available array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    /// Array name.
    pub name: String,
    /// Point or cell centered.
    pub centering: Centering,
    /// Components per tuple.
    pub components: usize,
}

/// Global description of one mesh a simulation can provide.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshMetadata {
    /// Mesh name ("mesh" for the paper's single-mesh NekRS coupling).
    pub mesh_name: String,
    /// Total blocks (= ranks).
    pub n_blocks: usize,
    /// Global number of points (summed over blocks).
    pub global_points: u64,
    /// Global number of cells.
    pub global_cells: u64,
    /// Available arrays.
    pub arrays: Vec<ArrayInfo>,
    /// Global bounding box, if known.
    pub bounds: Option<[f64; 6]>,
    /// Simulation time of the current state.
    pub time: f64,
    /// Simulation timestep index.
    pub time_step: u64,
}

impl MeshMetadata {
    /// Derive local metadata from a multiblock (callers allreduce the
    /// global counts/bounds across ranks before exposing it).
    pub fn from_local(mesh_name: impl Into<String>, mb: &MultiBlock) -> Self {
        let mut arrays = Vec::new();
        if let Some((_, g)) = mb.local_blocks().next() {
            for a in &g.point_data {
                arrays.push(ArrayInfo {
                    name: a.name.clone(),
                    centering: Centering::Point,
                    components: a.components,
                });
            }
            for a in &g.cell_data {
                arrays.push(ArrayInfo {
                    name: a.name.clone(),
                    centering: Centering::Cell,
                    components: a.components,
                });
            }
        }
        Self {
            mesh_name: mesh_name.into(),
            n_blocks: mb.n_blocks(),
            global_points: mb.local_points() as u64,
            global_cells: mb.local_cells() as u64,
            arrays,
            bounds: mb.bounds(),
            time: 0.0,
            time_step: 0,
        }
    }

    /// Look up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Merge another rank's metadata into this one: sums counts, unions
    /// bounds, keeps the array list (which must agree across ranks).
    pub fn merge(&mut self, other: &MeshMetadata) {
        debug_assert_eq!(self.mesh_name, other.mesh_name);
        self.global_points += other.global_points;
        self.global_cells += other.global_cells;
        self.bounds = match (self.bounds, other.bounds) {
            (Some(a), Some(b)) => Some([
                a[0].min(b[0]),
                a[1].max(b[1]),
                a[2].min(b[2]),
                a[3].max(b[3]),
                a[4].min(b[4]),
                a[5].max(b[5]),
            ]),
            (a, b) => a.or(b),
        };
        if self.arrays.is_empty() {
            self.arrays = other.arrays.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DataArray;
    use crate::ugrid::{CellType, UnstructuredGrid};

    fn sample() -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for i in 0..8 {
            g.add_point([i as f64, 0.0, 0.0]);
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.add_point_data(DataArray::scalars_f64("pressure", vec![0.0; 8]))
            .unwrap();
        g.add_point_data(DataArray::vectors_f64("velocity", vec![0.0; 24]))
            .unwrap();
        MultiBlock::local(0, 2, g)
    }

    #[test]
    fn from_local_lists_arrays() {
        let md = MeshMetadata::from_local("mesh", &sample());
        assert_eq!(md.n_blocks, 2);
        assert_eq!(md.global_points, 8);
        assert_eq!(md.global_cells, 1);
        assert_eq!(md.arrays.len(), 2);
        let v = md.array("velocity").unwrap();
        assert_eq!(v.components, 3);
        assert_eq!(v.centering, Centering::Point);
        assert!(md.array("temperature").is_none());
    }

    #[test]
    fn merge_sums_counts_and_unions_bounds() {
        let mut a = MeshMetadata::from_local("mesh", &sample());
        let mut b = MeshMetadata::from_local("mesh", &sample());
        b.bounds = Some([10.0, 20.0, 0.0, 1.0, 0.0, 1.0]);
        a.merge(&b);
        assert_eq!(a.global_points, 16);
        assert_eq!(a.global_cells, 2);
        let bounds = a.bounds.unwrap();
        assert_eq!(bounds[0], 0.0);
        assert_eq!(bounds[1], 20.0);
    }

    #[test]
    fn merge_into_empty_adopts_arrays() {
        let mut empty = MeshMetadata::from_local("mesh", &MultiBlock::new(2));
        let full = MeshMetadata::from_local("mesh", &sample());
        empty.merge(&full);
        assert_eq!(empty.arrays.len(), 2);
        assert_eq!(empty.global_points, 8);
    }
}
