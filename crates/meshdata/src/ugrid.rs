//! Unstructured grids (the `vtkUnstructuredGrid` analogue).

use crate::array::{ArrayData, Centering, DataArray};
use crate::{Error, Result};

fn gather_tuples<T: Copy>(values: &[T], kept: &[usize], components: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(kept.len() * components);
    for &i in kept {
        out.extend_from_slice(&values[i * components..(i + 1) * components]);
    }
    out
}

/// VTK cell types (numeric values match VTK's so written files are honest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CellType {
    /// A single point.
    Vertex = 1,
    /// Two-point line segment.
    Line = 3,
    /// Three-point triangle.
    Triangle = 5,
    /// Four-point quadrilateral.
    Quad = 9,
    /// Four-point tetrahedron.
    Tetra = 10,
    /// Eight-point hexahedron (the SEM sub-element).
    Hexahedron = 12,
}

impl CellType {
    /// Number of points in a cell of this type.
    pub fn n_points(self) -> usize {
        match self {
            CellType::Vertex => 1,
            CellType::Line => 2,
            CellType::Triangle => 3,
            CellType::Quad => 4,
            CellType::Tetra => 4,
            CellType::Hexahedron => 8,
        }
    }

    /// Parse a VTK numeric cell type.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => CellType::Vertex,
            3 => CellType::Line,
            5 => CellType::Triangle,
            9 => CellType::Quad,
            10 => CellType::Tetra,
            12 => CellType::Hexahedron,
            _ => return None,
        })
    }
}

/// Points + mixed cells + attribute arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnstructuredGrid {
    /// Point coordinates.
    pub points: Vec<[f64; 3]>,
    /// Flat connectivity (point ids, cell after cell).
    pub connectivity: Vec<i64>,
    /// Exclusive end offset of each cell in `connectivity` (VTU convention).
    pub offsets: Vec<i64>,
    /// Cell type of each cell.
    pub types: Vec<CellType>,
    /// Point-centered arrays.
    pub point_data: Vec<DataArray>,
    /// Cell-centered arrays.
    pub cell_data: Vec<DataArray>,
}

impl UnstructuredGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.types.len()
    }

    /// Append a point, returning its id.
    pub fn add_point(&mut self, p: [f64; 3]) -> i64 {
        self.points.push(p);
        (self.points.len() - 1) as i64
    }

    /// Append a cell of `ctype` over existing point ids.
    ///
    /// # Panics
    /// Panics if `ids.len()` does not match the cell type's arity.
    pub fn add_cell(&mut self, ctype: CellType, ids: &[i64]) {
        assert_eq!(
            ids.len(),
            ctype.n_points(),
            "cell of type {ctype:?} needs {} points",
            ctype.n_points()
        );
        self.connectivity.extend_from_slice(ids);
        self.offsets.push(self.connectivity.len() as i64);
        self.types.push(ctype);
    }

    /// Point ids of cell `c`.
    pub fn cell_points(&self, c: usize) -> &[i64] {
        let end = self.offsets[c] as usize;
        let start = if c == 0 {
            0
        } else {
            self.offsets[c - 1] as usize
        };
        &self.connectivity[start..end]
    }

    /// Attach a point-centered array.
    ///
    /// # Errors
    /// Rejects arrays whose tuple count differs from `n_points`.
    pub fn add_point_data(&mut self, array: DataArray) -> Result<()> {
        if array.len() != self.n_points() {
            return Err(Error::Invalid(format!(
                "point array '{}' has {} tuples for {} points",
                array.name,
                array.len(),
                self.n_points()
            )));
        }
        self.point_data.push(array);
        Ok(())
    }

    /// Attach a cell-centered array.
    ///
    /// # Errors
    /// Rejects arrays whose tuple count differs from `n_cells`.
    pub fn add_cell_data(&mut self, array: DataArray) -> Result<()> {
        if array.len() != self.n_cells() {
            return Err(Error::Invalid(format!(
                "cell array '{}' has {} tuples for {} cells",
                array.name,
                array.len(),
                self.n_cells()
            )));
        }
        self.cell_data.push(array);
        Ok(())
    }

    /// Find an attached array by name and centering.
    pub fn find_array(&self, name: &str, centering: Centering) -> Option<&DataArray> {
        let list = match centering {
            Centering::Point => &self.point_data,
            Centering::Cell => &self.cell_data,
        };
        list.iter().find(|a| a.name == name)
    }

    /// Axis-aligned bounding box `[xmin,xmax,ymin,ymax,zmin,zmax]`; `None`
    /// for an empty grid.
    pub fn bounds(&self) -> Option<[f64; 6]> {
        if self.points.is_empty() {
            return None;
        }
        let mut b = [
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for p in &self.points {
            for d in 0..3 {
                b[2 * d] = b[2 * d].min(p[d]);
                b[2 * d + 1] = b[2 * d + 1].max(p[d]);
            }
        }
        Some(b)
    }

    /// Total heap bytes held by the grid (geometry + arrays), for the
    /// memory-footprint accounting of Figures 3 and 6.
    pub fn heap_bytes(&self) -> u64 {
        let geom = (self.points.capacity() * 24
            + self.connectivity.capacity() * 8
            + self.offsets.capacity() * 8
            + self.types.capacity()) as u64;
        let arrays: u64 = self
            .point_data
            .iter()
            .chain(&self.cell_data)
            .map(|a| a.heap_bytes())
            .sum();
        geom + arrays
    }

    /// Merge coincident points (within `tolerance` per axis) and rewrite the
    /// connectivity — "point welding". Element-major SEM exports duplicate
    /// every shared face/edge/corner node; welding shrinks checkpoints and
    /// gives downstream tools a conforming mesh. Point data is taken from
    /// the first occurrence of each merged point (duplicates carry equal
    /// values for continuous fields); cell data is untouched.
    pub fn welded(&self, tolerance: f64) -> UnstructuredGrid {
        use std::collections::HashMap;
        let quant = |v: f64| -> i64 {
            if tolerance > 0.0 {
                (v / tolerance).round() as i64
            } else {
                v.to_bits() as i64
            }
        };
        let mut first_at: HashMap<[i64; 3], i64> = HashMap::new();
        let mut remap = Vec::with_capacity(self.n_points());
        let mut out = UnstructuredGrid::new();
        let mut kept: Vec<usize> = Vec::new();
        for (i, p) in self.points.iter().enumerate() {
            let key = [quant(p[0]), quant(p[1]), quant(p[2])];
            match first_at.get(&key) {
                Some(&id) => remap.push(id),
                None => {
                    let id = out.add_point(*p);
                    first_at.insert(key, id);
                    remap.push(id);
                    kept.push(i);
                }
            }
        }
        for c in 0..self.n_cells() {
            let ids: Vec<i64> = self
                .cell_points(c)
                .iter()
                .map(|&i| remap[i as usize])
                .collect();
            out.add_cell(self.types[c], &ids);
        }
        for a in &self.point_data {
            let data = match &a.data {
                ArrayData::F64(v) => ArrayData::F64(gather_tuples(v, &kept, a.components)),
                // Welding subsets the tuples, so the result is owned.
                ArrayData::F64Shared(v) => ArrayData::F64(gather_tuples(v, &kept, a.components)),
                ArrayData::F32(v) => ArrayData::F32(gather_tuples(v, &kept, a.components)),
                ArrayData::I64(v) => ArrayData::I64(gather_tuples(v, &kept, a.components)),
                ArrayData::U8(v) => ArrayData::U8(gather_tuples(v, &kept, a.components)),
            };
            out.point_data.push(DataArray {
                name: a.name.clone(),
                components: a.components,
                data,
            });
        }
        out.cell_data = self.cell_data.clone();
        out
    }

    /// Check structural invariants: monotone offsets, in-range connectivity,
    /// type/offset agreement, array lengths.
    ///
    /// # Errors
    /// Describes the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        if self.offsets.len() != self.types.len() {
            return Err(Error::Invalid(format!(
                "{} offsets vs {} types",
                self.offsets.len(),
                self.types.len()
            )));
        }
        let mut prev = 0i64;
        for (c, (&off, &ty)) in self.offsets.iter().zip(&self.types).enumerate() {
            let n = off - prev;
            if n != ty.n_points() as i64 {
                return Err(Error::Invalid(format!(
                    "cell {c} of type {ty:?} spans {n} points, expected {}",
                    ty.n_points()
                )));
            }
            prev = off;
        }
        if prev != self.connectivity.len() as i64 {
            return Err(Error::Invalid(format!(
                "last offset {prev} != connectivity length {}",
                self.connectivity.len()
            )));
        }
        let np = self.n_points() as i64;
        if let Some(&bad) = self.connectivity.iter().find(|&&id| id < 0 || id >= np) {
            return Err(Error::Invalid(format!(
                "connectivity references point {bad}, grid has {np} points"
            )));
        }
        for a in &self.point_data {
            if a.len() != self.n_points() {
                return Err(Error::Invalid(format!(
                    "point array '{}' length mismatch",
                    a.name
                )));
            }
        }
        for a in &self.cell_data {
            if a.len() != self.n_cells() {
                return Err(Error::Invalid(format!(
                    "cell array '{}' length mismatch",
                    a.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayData;

    /// A unit cube as one hexahedron, with a point scalar.
    pub(crate) fn unit_hex() -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        // VTK hexahedron ordering: bottom quad CCW, then top quad CCW.
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "height",
            g.points.iter().map(|p| p[2]).collect(),
        ))
        .unwrap();
        g
    }

    #[test]
    fn build_and_validate_unit_hex() {
        let g = unit_hex();
        assert_eq!(g.n_points(), 8);
        assert_eq!(g.n_cells(), 1);
        g.validate().unwrap();
        assert_eq!(g.cell_points(0), &[0, 1, 3, 2, 4, 5, 7, 6]);
        assert_eq!(g.bounds(), Some([0.0, 1.0, 0.0, 1.0, 0.0, 1.0]));
    }

    #[test]
    fn point_data_length_is_enforced() {
        let mut g = unit_hex();
        let err = g.add_point_data(DataArray::scalars_f64("bad", vec![1.0]));
        assert!(err.is_err());
    }

    #[test]
    fn cell_data_length_is_enforced() {
        let mut g = unit_hex();
        g.add_cell_data(DataArray::scalars_f64("c", vec![7.0]))
            .unwrap();
        assert!(g
            .add_cell_data(DataArray::scalars_f64("bad", vec![1.0, 2.0]))
            .is_err());
    }

    #[test]
    fn validate_catches_out_of_range_connectivity() {
        let mut g = unit_hex();
        g.connectivity[0] = 99;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_offset_type_mismatch() {
        let mut g = unit_hex();
        g.types[0] = CellType::Tetra; // hex footprint, tetra type
        assert!(g.validate().is_err());
    }

    #[test]
    fn find_array_respects_centering() {
        let mut g = unit_hex();
        g.add_cell_data(DataArray::scalars_f64("height", vec![0.5]))
            .unwrap();
        let p = g.find_array("height", Centering::Point).unwrap();
        assert_eq!(p.len(), 8);
        let c = g.find_array("height", Centering::Cell).unwrap();
        assert_eq!(c.len(), 1);
        assert!(g.find_array("nope", Centering::Point).is_none());
    }

    #[test]
    fn empty_grid_bounds_none_and_validates() {
        let g = UnstructuredGrid::new();
        assert!(g.bounds().is_none());
        g.validate().unwrap();
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let empty = UnstructuredGrid::new().heap_bytes();
        let full = unit_hex().heap_bytes();
        assert!(full > empty);
        // 8 points × 24 B is a hard lower bound.
        assert!(full >= 8 * 24);
    }

    #[test]
    fn mixed_cell_types_validate() {
        let mut g = UnstructuredGrid::new();
        for i in 0..4 {
            g.add_point([i as f64, 0.0, 0.0]);
        }
        g.add_cell(CellType::Line, &[0, 1]);
        g.add_cell(CellType::Triangle, &[0, 1, 2]);
        g.add_cell(CellType::Tetra, &[0, 1, 2, 3]);
        g.validate().unwrap();
        assert_eq!(g.cell_points(1), &[0, 1, 2]);
        assert_eq!(
            ArrayData::U8(g.types.iter().map(|t| *t as u8).collect()).scalar_len(),
            3
        );
    }

    #[test]
    fn welding_merges_duplicated_sem_nodes() {
        // Two hexes exported element-major share a face: 16 points with 4
        // duplicates; welding yields 12 points and identical topology.
        let mut g = UnstructuredGrid::new();
        for e in 0..2 {
            let x0 = e as f64;
            for z in [0.0, 1.0] {
                for y in [0.0, 1.0] {
                    for x in [x0, x0 + 1.0] {
                        g.add_point([x, y, z]);
                    }
                }
            }
            let b = (e * 8) as i64;
            g.add_cell(
                CellType::Hexahedron,
                &[b, b + 1, b + 3, b + 2, b + 4, b + 5, b + 7, b + 6],
            );
        }
        g.add_point_data(DataArray::scalars_f64(
            "x",
            g.points.iter().map(|p| p[0]).collect(),
        ))
        .unwrap();
        let w = g.welded(1e-9);
        w.validate().unwrap();
        assert_eq!(g.n_points(), 16);
        assert_eq!(w.n_points(), 12);
        assert_eq!(w.n_cells(), 2);
        // Field values ride along and still match the coordinates.
        let a = w.find_array("x", Centering::Point).unwrap();
        for i in 0..w.n_points() {
            assert_eq!(a.get(i, 0), w.points[i][0]);
        }
        // Geometry is unchanged where it matters: same bounds.
        assert_eq!(g.bounds(), w.bounds());
    }

    #[test]
    fn welding_without_duplicates_is_identity_shaped() {
        let g = unit_hex();
        let w = g.welded(1e-9);
        assert_eq!(w.n_points(), g.n_points());
        assert_eq!(w.connectivity, g.connectivity);
        assert_eq!(w.point_data, g.point_data);
    }

    #[test]
    fn welding_respects_tolerance() {
        let mut g = UnstructuredGrid::new();
        g.add_point([0.0, 0.0, 0.0]);
        g.add_point([0.4, 0.0, 0.0]);
        g.add_cell(CellType::Line, &[0, 1]);
        // Coarse tolerance quantizes both points into one bucket...
        assert_eq!(g.welded(1.0).n_points(), 1);
        // ...a fine tolerance keeps them apart.
        assert_eq!(g.welded(1e-3).n_points(), 2);
    }

    #[test]
    fn cell_type_numeric_roundtrip() {
        for t in [
            CellType::Vertex,
            CellType::Line,
            CellType::Triangle,
            CellType::Quad,
            CellType::Tetra,
            CellType::Hexahedron,
        ] {
            assert_eq!(CellType::from_u8(t as u8), Some(t));
        }
        assert_eq!(CellType::from_u8(42), None);
    }
}
