//! `.vtu` reader for both encodings produced by [`crate::writer::vtu`].
//!
//! Exists so checkpoints can be round-trip-validated: the integration tests
//! write a solver state, read it back, and compare field values exactly.

use crate::array::{ArrayData, DataArray};
use crate::ugrid::{CellType, UnstructuredGrid};
use crate::xml::{self, XmlNode};
use crate::{Error, Result};

/// Parse a `.vtu` document (bytes, because appended blocks are binary).
///
/// # Errors
/// Malformed XML, unknown encodings, size mismatches, or invalid grids.
pub fn read_vtu(input: &[u8]) -> Result<UnstructuredGrid> {
    // Split off the appended blob if present: the XML before <AppendedData>
    // plus a synthetic close tag is well-formed on its own.
    let (header_xml, blob) = match find_bytes(input, b"<AppendedData") {
        Some(tag_pos) => {
            let underscore = find_bytes(&input[tag_pos..], b">_")
                .map(|i| tag_pos + i + 2)
                .ok_or_else(|| Error::Parse("AppendedData without '_' marker".into()))?;
            let end = find_bytes(&input[underscore..], b"</AppendedData>")
                .map(|i| underscore + i)
                .ok_or_else(|| Error::Parse("unterminated AppendedData".into()))?;
            let mut header = String::from_utf8(input[..tag_pos].to_vec())
                .map_err(|_| Error::Parse("non-utf8 vtu header".into()))?;
            header.push_str("</VTKFile>");
            (header, Some(&input[underscore..end]))
        }
        None => (
            String::from_utf8(input.to_vec())
                .map_err(|_| Error::Parse("non-utf8 vtu document".into()))?,
            None,
        ),
    };

    let root = xml::parse(&header_xml)?;
    if root.name != "VTKFile" {
        return Err(Error::Parse(format!(
            "expected VTKFile root, got {}",
            root.name
        )));
    }
    let piece = root
        .find("Piece")
        .ok_or_else(|| Error::Parse("no <Piece> element".into()))?;
    let n_points: usize = piece.attr_parse("NumberOfPoints")?;
    let n_cells: usize = piece.attr_parse("NumberOfCells")?;

    let mut grid = UnstructuredGrid::new();

    // Points.
    let points_da = piece
        .child("Points")
        .and_then(|p| p.child("DataArray"))
        .ok_or_else(|| Error::Parse("missing Points/DataArray".into()))?;
    let coords = read_array_values(points_da, blob)?;
    let coords = as_f64(&coords);
    if coords.len() != n_points * 3 {
        return Err(Error::Parse(format!(
            "points array has {} scalars, expected {}",
            coords.len(),
            n_points * 3
        )));
    }
    for c in coords.chunks_exact(3) {
        grid.add_point([c[0], c[1], c[2]]);
    }

    // Cells.
    let cells = piece
        .child("Cells")
        .ok_or_else(|| Error::Parse("missing <Cells>".into()))?;
    let mut conn = None;
    let mut offs = None;
    let mut types = None;
    for da in cells.children_named("DataArray") {
        let name = da.attr("Name").unwrap_or("");
        let values = read_array_values(da, blob)?;
        match name {
            "connectivity" => conn = Some(values),
            "offsets" => offs = Some(values),
            "types" => types = Some(values),
            other => return Err(Error::Parse(format!("unknown cell array '{other}'"))),
        }
    }
    let conn = conn.ok_or_else(|| Error::Parse("missing connectivity".into()))?;
    let offs = offs.ok_or_else(|| Error::Parse("missing offsets".into()))?;
    let types = types.ok_or_else(|| Error::Parse("missing types".into()))?;
    let conn = as_i64(&conn);
    let offs = as_i64(&offs);
    if offs.len() != n_cells {
        return Err(Error::Parse("offsets length != cell count".into()));
    }
    let type_vals: Vec<u8> = match &types {
        ArrayData::U8(v) => v.clone(),
        other => as_i64(other).iter().map(|&x| x as u8).collect(),
    };
    let mut start = 0usize;
    for (c, (&end, tv)) in offs.iter().zip(&type_vals).enumerate() {
        let ctype = CellType::from_u8(*tv)
            .ok_or_else(|| Error::Parse(format!("cell {c} has unknown type {tv}")))?;
        let ids = &conn[start..end as usize];
        grid.add_cell(ctype, ids);
        start = end as usize;
    }

    // Attributes.
    if let Some(pd) = piece.child("PointData") {
        for da in pd.children_named("DataArray") {
            grid.add_point_data(read_attribute(da, blob)?)?;
        }
    }
    if let Some(cd) = piece.child("CellData") {
        for da in cd.children_named("DataArray") {
            grid.add_cell_data(read_attribute(da, blob)?)?;
        }
    }

    grid.validate()?;
    Ok(grid)
}

fn read_attribute(da: &XmlNode, blob: Option<&[u8]>) -> Result<DataArray> {
    let name = da.attr("Name").unwrap_or("unnamed").to_string();
    let components: usize = da
        .attr("NumberOfComponents")
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(1);
    let data = read_array_values(da, blob)?;
    Ok(DataArray {
        name,
        components,
        data,
    })
}

fn read_array_values(da: &XmlNode, blob: Option<&[u8]>) -> Result<ArrayData> {
    let ty = da
        .attr("type")
        .ok_or_else(|| Error::Parse("DataArray without type".into()))?
        .to_string();
    match da.attr("format") {
        Some("ascii") | None => parse_ascii(&ty, &da.text),
        Some("appended") => {
            let blob =
                blob.ok_or_else(|| Error::Parse("appended array but no AppendedData".into()))?;
            let offset: usize = da.attr_parse("offset")?;
            if offset + 4 > blob.len() {
                return Err(Error::Parse("appended offset beyond blob".into()));
            }
            let nbytes = u32::from_le_bytes(blob[offset..offset + 4].try_into().unwrap()) as usize;
            let start = offset + 4;
            if start + nbytes > blob.len() {
                return Err(Error::Parse("appended payload beyond blob".into()));
            }
            parse_raw(&ty, &blob[start..start + nbytes])
        }
        Some(other) => Err(Error::Parse(format!("unsupported format '{other}'"))),
    }
}

fn parse_ascii(ty: &str, text: &str) -> Result<ArrayData> {
    let tokens = text.split_whitespace();
    macro_rules! collect {
        ($t:ty) => {
            tokens
                .map(|t| {
                    t.parse::<$t>()
                        .map_err(|_| Error::Parse(format!("bad {ty} value '{t}'")))
                })
                .collect::<Result<Vec<$t>>>()?
        };
    }
    Ok(match ty {
        "Float32" => ArrayData::F32(collect!(f32)),
        "Float64" => ArrayData::F64(collect!(f64)),
        "Int64" | "Int32" => ArrayData::I64(collect!(i64)),
        "UInt8" => ArrayData::U8(collect!(u8)),
        other => return Err(Error::Parse(format!("unsupported array type '{other}'"))),
    })
}

fn parse_raw(ty: &str, bytes: &[u8]) -> Result<ArrayData> {
    fn chunked<const N: usize, T>(bytes: &[u8], f: impl Fn([u8; N]) -> T) -> Result<Vec<T>> {
        if !bytes.len().is_multiple_of(N) {
            return Err(Error::Parse(
                "raw payload not a multiple of scalar size".into(),
            ));
        }
        Ok(bytes
            .chunks_exact(N)
            .map(|c| f(c.try_into().unwrap()))
            .collect())
    }
    Ok(match ty {
        "Float32" => ArrayData::F32(chunked(bytes, f32::from_le_bytes)?),
        "Float64" => ArrayData::F64(chunked(bytes, f64::from_le_bytes)?),
        "Int64" => ArrayData::I64(chunked(bytes, i64::from_le_bytes)?),
        "UInt8" => ArrayData::U8(bytes.to_vec()),
        other => return Err(Error::Parse(format!("unsupported array type '{other}'"))),
    })
}

fn as_f64(data: &ArrayData) -> Vec<f64> {
    (0..data.scalar_len()).map(|i| data.get_as_f64(i)).collect()
}

fn as_i64(data: &ArrayData) -> Vec<i64> {
    (0..data.scalar_len())
        .map(|i| data.get_as_f64(i) as i64)
        .collect()
}

fn find_bytes(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::vtu::{write_vtu, Encoding};

    fn sample_grid() -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 2.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.5] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| (i as f64).sqrt()).collect(),
        ))
        .unwrap();
        g.add_point_data(DataArray::vectors_f64(
            "velocity",
            (0..24).map(|i| i as f64 * 0.1 - 1.0).collect(),
        ))
        .unwrap();
        g.add_cell_data(DataArray::scalars_f32("rank", vec![7.0]))
            .unwrap();
        g
    }

    #[test]
    fn ascii_roundtrip_is_exact_for_representable_values() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_vtu(&g, Encoding::Ascii, &mut buf).unwrap();
        let back = read_vtu(&buf).unwrap();
        assert_eq!(back.n_points(), g.n_points());
        assert_eq!(back.n_cells(), g.n_cells());
        assert_eq!(back.connectivity, g.connectivity);
        assert_eq!(back.types, g.types);
        // Rust prints f64 with enough digits to round-trip exactly.
        assert_eq!(back.point_data[0], g.point_data[0]);
        assert_eq!(back.cell_data[0], g.cell_data[0]);
    }

    #[test]
    fn appended_roundtrip_is_bit_exact() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_vtu(&g, Encoding::Appended, &mut buf).unwrap();
        let back = read_vtu(&buf).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn rejects_truncated_appended_blob() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_vtu(&g, Encoding::Appended, &mut buf).unwrap();
        // Chop the file in the middle of the blob.
        let cut = buf.len() - 40;
        assert!(read_vtu(&buf[..cut]).is_err());
    }

    #[test]
    fn rejects_wrong_root_element() {
        assert!(read_vtu(b"<NotVtk></NotVtk>").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_vtu(b"plainly not xml").is_err());
        assert!(read_vtu(&[]).is_err());
    }
}
