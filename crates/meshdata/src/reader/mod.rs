//! File readers.

pub mod vtu;

pub use vtu::read_vtu;
