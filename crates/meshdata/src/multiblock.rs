//! Multi-block datasets: one block per rank, SENSEI's convention for
//! distributed meshes (`vtkMultiBlockDataSet` analogue).

use crate::ugrid::UnstructuredGrid;

/// A collection of blocks; on rank *r* of a *P*-rank job, blocks other than
/// *r* are `None` (data lives remotely), exactly like VTK's null blocks.
#[derive(Debug, Clone, Default)]
pub struct MultiBlock {
    /// Block slots; index = owning rank.
    pub blocks: Vec<Option<UnstructuredGrid>>,
}

impl MultiBlock {
    /// `n` empty slots.
    pub fn new(n: usize) -> Self {
        Self {
            blocks: (0..n).map(|_| None).collect(),
        }
    }

    /// A single-rank dataset holding one local block.
    pub fn local(rank: usize, n_ranks: usize, grid: UnstructuredGrid) -> Self {
        let mut mb = Self::new(n_ranks);
        mb.blocks[rank] = Some(grid);
        mb
    }

    /// Number of block slots.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over blocks present locally, with their block index.
    pub fn local_blocks(&self) -> impl Iterator<Item = (usize, &UnstructuredGrid)> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.as_ref().map(|g| (i, g)))
    }

    /// Sum of points over local blocks.
    pub fn local_points(&self) -> usize {
        self.local_blocks().map(|(_, g)| g.n_points()).sum()
    }

    /// Sum of cells over local blocks.
    pub fn local_cells(&self) -> usize {
        self.local_blocks().map(|(_, g)| g.n_cells()).sum()
    }

    /// Heap bytes of local blocks (memory accounting).
    pub fn heap_bytes(&self) -> u64 {
        self.local_blocks().map(|(_, g)| g.heap_bytes()).sum()
    }

    /// Union of local block bounds.
    pub fn bounds(&self) -> Option<[f64; 6]> {
        let mut acc: Option<[f64; 6]> = None;
        for (_, g) in self.local_blocks() {
            if let Some(b) = g.bounds() {
                acc = Some(match acc {
                    None => b,
                    Some(a) => [
                        a[0].min(b[0]),
                        a[1].max(b[1]),
                        a[2].min(b[2]),
                        a[3].max(b[3]),
                        a[4].min(b[4]),
                        a[5].max(b[5]),
                    ],
                });
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugrid::CellType;

    fn grid_at(x0: f64) -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [x0, x0 + 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g
    }

    #[test]
    fn local_block_layout() {
        let mb = MultiBlock::local(2, 4, grid_at(0.0));
        assert_eq!(mb.n_blocks(), 4);
        assert_eq!(mb.local_blocks().count(), 1);
        assert_eq!(mb.local_blocks().next().unwrap().0, 2);
        assert_eq!(mb.local_points(), 8);
        assert_eq!(mb.local_cells(), 1);
    }

    #[test]
    fn bounds_union_over_blocks() {
        let mut mb = MultiBlock::new(2);
        mb.blocks[0] = Some(grid_at(0.0));
        mb.blocks[1] = Some(grid_at(5.0));
        let b = mb.bounds().unwrap();
        assert_eq!(b[0], 0.0);
        assert_eq!(b[1], 6.0);
    }

    #[test]
    fn empty_multiblock() {
        let mb = MultiBlock::new(3);
        assert_eq!(mb.local_points(), 0);
        assert!(mb.bounds().is_none());
        assert_eq!(mb.heap_bytes(), 0);
    }
}
