//! A minimal XML parser.
//!
//! Two consumers: the VTU reader (VTK XML files) and the SENSEI-style
//! runtime configuration (`<sensei><analysis .../></sensei>`, Listing 1 of
//! the paper). Supports elements, attributes, text, self-closing tags,
//! comments, XML declarations, and the five predefined entities. No
//! namespaces, DTDs, or CDATA — none appear in the formats we read.

use crate::{Error, Result};

/// One parsed element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XmlNode {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

impl XmlNode {
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute parsed to a type, with a descriptive error.
    ///
    /// # Errors
    /// Missing attribute or failed parse.
    pub fn attr_parse<T: std::str::FromStr>(&self, name: &str) -> Result<T> {
        let raw = self
            .attr(name)
            .ok_or_else(|| Error::Parse(format!("<{}> missing attribute '{name}'", self.name)))?;
        raw.parse().map_err(|_| {
            Error::Parse(format!(
                "<{}> attribute '{name}'='{raw}' failed to parse",
                self.name
            ))
        })
    }

    /// First child element with this tag name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with this tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Depth-first search for the first descendant with this tag name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Parse a document and return its root element.
///
/// # Errors
/// Any malformed construct yields [`Error::Parse`] with position context.
pub fn parse(input: &str) -> Result<XmlNode> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, and processing instructions/declarations.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                match find_sub(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with("<?") {
                match find_sub(self.bytes, self.pos + 2, "?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated declaration")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 name"))?
            .to_string())
    }

    fn parse_element(&mut self) -> Result<XmlNode> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut node = XmlNode {
            name,
            ..Default::default()
        };
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.err("expected '/>'"));
                    }
                    self.pos += 2;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"') | Some(b'\'')) {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let quote = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("non-utf8 attribute"))?;
                    node.attrs.push((key, unescape(raw)));
                    self.pos += 1;
                }
                None => return Err(self.err("unexpected end inside tag")),
            }
        }
        // Content until matching close tag.
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.err(&format!("missing </{}>", node.name)));
            }
            if self.starts_with("<!--") {
                match find_sub(self.bytes, self.pos + 4, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != node.name {
                    return Err(self.err(&format!(
                        "mismatched close tag </{close}> for <{}>",
                        node.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(node);
            } else if self.peek() == Some(b'<') {
                node.children.push(self.parse_element()?);
            } else {
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'<') {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("non-utf8 text"))?;
                node.text.push_str(&unescape(raw));
            }
        }
    }
}

fn find_sub(haystack: &[u8], from: usize, needle: &str) -> Option<usize> {
    let nb = needle.as_bytes();
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(nb.len())
        .position(|w| w == nb)
        .map(|i| i + from)
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let (replacement, consumed) = if rest.starts_with("&lt;") {
            ('<', 4)
        } else if rest.starts_with("&gt;") {
            ('>', 4)
        } else if rest.starts_with("&amp;") {
            ('&', 5)
        } else if rest.starts_with("&quot;") {
            ('"', 6)
        } else if rest.starts_with("&apos;") {
            ('\'', 6)
        } else {
            ('&', 1)
        };
        out.push(replacement);
        rest = &rest[consumed..];
    }
    out.push_str(rest);
    out
}

/// Escape text for inclusion in XML content or attributes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_listing_1() {
        let doc = r#"
<sensei>
  <analysis type="catalyst" pipeline="pythonscript" filename="analysis.py"
            frequency="100" />
</sensei>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "sensei");
        let a = root.child("analysis").unwrap();
        assert_eq!(a.attr("type"), Some("catalyst"));
        assert_eq!(a.attr("pipeline"), Some("pythonscript"));
        assert_eq!(a.attr_parse::<u64>("frequency").unwrap(), 100);
    }

    #[test]
    fn parses_declaration_comments_and_nesting() {
        let doc = r#"<?xml version="1.0"?>
<!-- header comment -->
<VTKFile type="UnstructuredGrid">
  <UnstructuredGrid>
    <Piece NumberOfPoints="8" NumberOfCells="1">
      <Points><DataArray type="Float64"/></Points>
    </Piece>
  </UnstructuredGrid>
</VTKFile>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "VTKFile");
        let piece = root.find("Piece").unwrap();
        assert_eq!(piece.attr_parse::<usize>("NumberOfPoints").unwrap(), 8);
        assert!(root.find("DataArray").is_some());
        assert!(root.find("Nope").is_none());
    }

    #[test]
    fn text_content_and_entities() {
        let root = parse("<a x='1 &lt; 2'>hello &amp; goodbye</a>").unwrap();
        assert_eq!(root.text.trim(), "hello & goodbye");
        assert_eq!(root.attr("x"), Some("1 < 2"));
    }

    #[test]
    fn escape_unescape_roundtrip() {
        let s = "a<b>&\"c'd";
        assert_eq!(unescape(&escape(s)), s);
    }

    #[test]
    fn children_named_filters() {
        let root = parse("<r><x i='1'/><y/><x i='2'/></r>").unwrap();
        let xs: Vec<_> = root.children_named("x").collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].attr("i"), Some("2"));
    }

    #[test]
    fn rejects_mismatched_close_tag() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(parse("<a").is_err());
        assert!(parse("<!-- never closed").is_err());
        assert!(parse("<a x=>").is_err());
        assert!(parse("<a x='unterminated>").is_err());
    }

    #[test]
    fn comments_inside_content_are_skipped() {
        let root = parse("<a><!-- hi --><b/></a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn attr_parse_error_mentions_context() {
        let root = parse("<a n='xyz'/>").unwrap();
        let err = root.attr_parse::<u32>("n").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("'n'") && msg.contains("xyz"), "{msg}");
    }
}
