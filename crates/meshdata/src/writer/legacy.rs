//! Legacy ASCII `.vtk` writer (VTK DataFile Version 3.0).
//!
//! Kept for interoperability and debugging: the legacy format is trivially
//! inspectable and every VTK-era tool reads it.

use crate::array::{ArrayData, Centering, DataArray};
use crate::ugrid::UnstructuredGrid;
use crate::Result;
use std::io::Write;

/// Write `grid` in legacy ASCII format; returns bytes written.
///
/// # Errors
/// Grid validation failures and I/O errors.
pub fn write_legacy_vtk(grid: &UnstructuredGrid, title: &str, w: &mut impl Write) -> Result<u64> {
    grid.validate()?;
    let mut out = Vec::new();
    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "{}", title.lines().next().unwrap_or("dataset"))?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(out, "POINTS {} double", grid.n_points())?;
    for p in &grid.points {
        writeln!(out, "{} {} {}", p[0], p[1], p[2])?;
    }
    let list_len: usize = grid.types.iter().map(|t| t.n_points() + 1).sum();
    writeln!(out, "CELLS {} {}", grid.n_cells(), list_len)?;
    for c in 0..grid.n_cells() {
        let pts = grid.cell_points(c);
        write!(out, "{}", pts.len())?;
        for p in pts {
            write!(out, " {p}")?;
        }
        writeln!(out)?;
    }
    writeln!(out, "CELL_TYPES {}", grid.n_cells())?;
    for t in &grid.types {
        writeln!(out, "{}", *t as u8)?;
    }
    if !grid.point_data.is_empty() {
        writeln!(out, "POINT_DATA {}", grid.n_points())?;
        for a in &grid.point_data {
            write_attribute(&mut out, a, Centering::Point)?;
        }
    }
    if !grid.cell_data.is_empty() {
        writeln!(out, "CELL_DATA {}", grid.n_cells())?;
        for a in &grid.cell_data {
            write_attribute(&mut out, a, Centering::Cell)?;
        }
    }
    w.write_all(&out)?;
    Ok(out.len() as u64)
}

fn write_attribute(out: &mut Vec<u8>, a: &DataArray, _c: Centering) -> std::io::Result<()> {
    let name = a.name.replace(' ', "_");
    if a.components == 3 {
        writeln!(out, "VECTORS {name} double")?;
        for i in 0..a.len() {
            writeln!(out, "{} {} {}", a.get(i, 0), a.get(i, 1), a.get(i, 2))?;
        }
    } else {
        writeln!(out, "SCALARS {name} double {}", a.components)?;
        writeln!(out, "LOOKUP_TABLE default")?;
        let n = a.data.scalar_len();
        for i in 0..n {
            match &a.data {
                ArrayData::F32(v) => writeln!(out, "{}", v[i])?,
                ArrayData::F64(v) => writeln!(out, "{}", v[i])?,
                ArrayData::F64Shared(v) => writeln!(out, "{}", v[i])?,
                ArrayData::I64(v) => writeln!(out, "{}", v[i])?,
                ArrayData::U8(v) => writeln!(out, "{}", v[i])?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugrid::CellType;

    #[test]
    fn legacy_file_has_required_sections() {
        let mut g = UnstructuredGrid::new();
        for i in 0..4 {
            g.add_point([i as f64, 0.0, 0.0]);
        }
        g.add_cell(CellType::Tetra, &[0, 1, 2, 3]);
        g.add_point_data(DataArray::scalars_f64("t", vec![0.0, 1.0, 2.0, 3.0]))
            .unwrap();
        g.add_point_data(DataArray::vectors_f64("v", vec![0.0; 12]))
            .unwrap();
        let mut buf = Vec::new();
        let n = write_legacy_vtk(&g, "test mesh", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n as usize, text.len());
        for section in [
            "# vtk DataFile Version 3.0",
            "DATASET UNSTRUCTURED_GRID",
            "POINTS 4 double",
            "CELLS 1 5",
            "CELL_TYPES 1",
            "POINT_DATA 4",
            "SCALARS t double 1",
            "VECTORS v double",
        ] {
            assert!(text.contains(section), "missing '{section}'");
        }
    }

    #[test]
    fn multiline_title_is_truncated_to_first_line() {
        let mut g = UnstructuredGrid::new();
        g.add_point([0.0; 3]);
        g.add_cell(CellType::Vertex, &[0]);
        let mut buf = Vec::new();
        write_legacy_vtk(&g, "line1\nline2", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("line1\nASCII"));
        assert!(!text.contains("line2"));
    }
}
