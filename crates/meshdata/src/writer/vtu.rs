//! VTK XML UnstructuredGrid (`.vtu`) writer.
//!
//! Supports the two encodings the evaluation needs: `ascii` (debuggable,
//! used in round-trip tests) and `raw appended` (what ParaView/SENSEI
//! endpoints actually write for checkpoints — a compact binary blob after
//! the XML header). The appended layout follows VTK's `header_type=UInt32`
//! convention: each array is `[u32 byte-count][little-endian payload]`.

use crate::array::{ArrayData, DataArray};
use crate::ugrid::UnstructuredGrid;
use crate::Result;
use std::io::Write;

/// How array payloads are stored in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Human-readable whitespace-separated values.
    Ascii,
    /// Raw little-endian binary in an `<AppendedData>` block.
    Appended,
}

struct PendingArray<'a> {
    section: &'static str,
    vtk_type: &'static str,
    name: String,
    components: usize,
    data: ArrayOwned<'a>,
}

enum ArrayOwned<'a> {
    Borrowed(&'a ArrayData),
    Owned(ArrayData),
}

impl ArrayOwned<'_> {
    fn get(&self) -> &ArrayData {
        match self {
            ArrayOwned::Borrowed(a) => a,
            ArrayOwned::Owned(a) => a,
        }
    }
}

/// Serialize `grid` as a `.vtu` document into `w`. Returns bytes written.
///
/// # Errors
/// Grid validation failures and I/O errors.
pub fn write_vtu(grid: &UnstructuredGrid, encoding: Encoding, w: &mut impl Write) -> Result<u64> {
    grid.validate()?;
    let mut counter = CountingWriter { inner: w, count: 0 };
    write_inner(grid, encoding, &mut counter)?;
    Ok(counter.count)
}

struct CountingWriter<'a, W: Write> {
    inner: &'a mut W,
    count: u64,
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.count += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn write_inner(grid: &UnstructuredGrid, encoding: Encoding, w: &mut impl Write) -> Result<()> {
    // Assemble every array in file order so appended offsets can be computed.
    let points_flat: Vec<f64> = grid.points.iter().flat_map(|p| p.iter().copied()).collect();
    let types_u8: Vec<u8> = grid.types.iter().map(|t| *t as u8).collect();
    let mut arrays: Vec<PendingArray> = Vec::new();
    for a in &grid.point_data {
        arrays.push(pending("PointData", a));
    }
    for a in &grid.cell_data {
        arrays.push(pending("CellData", a));
    }
    arrays.push(PendingArray {
        section: "Points",
        vtk_type: "Float64",
        name: "Points".into(),
        components: 3,
        data: ArrayOwned::Owned(ArrayData::F64(points_flat)),
    });
    arrays.push(PendingArray {
        section: "Cells",
        vtk_type: "Int64",
        name: "connectivity".into(),
        components: 1,
        data: ArrayOwned::Owned(ArrayData::I64(grid.connectivity.clone())),
    });
    arrays.push(PendingArray {
        section: "Cells",
        vtk_type: "Int64",
        name: "offsets".into(),
        components: 1,
        data: ArrayOwned::Owned(ArrayData::I64(grid.offsets.clone())),
    });
    arrays.push(PendingArray {
        section: "Cells",
        vtk_type: "UInt8",
        name: "types".into(),
        components: 1,
        data: ArrayOwned::Owned(ArrayData::U8(types_u8)),
    });

    writeln!(w, r#"<?xml version="1.0"?>"#)?;
    writeln!(
        w,
        r#"<VTKFile type="UnstructuredGrid" version="0.1" byte_order="LittleEndian" header_type="UInt32">"#
    )?;
    writeln!(w, "<UnstructuredGrid>")?;
    writeln!(
        w,
        r#"<Piece NumberOfPoints="{}" NumberOfCells="{}">"#,
        grid.n_points(),
        grid.n_cells()
    )?;

    let mut offset = 0u64;
    let mut offsets_for = Vec::with_capacity(arrays.len());
    for a in &arrays {
        offsets_for.push(offset);
        let payload = a.data.get().scalar_len() * a.data.get().scalar_size();
        offset += 4 + payload as u64;
    }

    let mut idx = 0;
    for section in ["PointData", "CellData", "Points", "Cells"] {
        writeln!(w, "<{section}>")?;
        while idx < arrays.len() && arrays[idx].section == section {
            let a = &arrays[idx];
            match encoding {
                Encoding::Ascii => {
                    writeln!(
                        w,
                        r#"<DataArray type="{}" Name="{}" NumberOfComponents="{}" format="ascii">"#,
                        a.vtk_type,
                        crate::xml::escape(&a.name),
                        a.components
                    )?;
                    write_ascii_values(a.data.get(), w)?;
                    writeln!(w, "</DataArray>")?;
                }
                Encoding::Appended => {
                    writeln!(
                        w,
                        r#"<DataArray type="{}" Name="{}" NumberOfComponents="{}" format="appended" offset="{}"/>"#,
                        a.vtk_type,
                        crate::xml::escape(&a.name),
                        a.components,
                        offsets_for[idx]
                    )?;
                }
            }
            idx += 1;
        }
        writeln!(w, "</{section}>")?;
    }

    writeln!(w, "</Piece>")?;
    writeln!(w, "</UnstructuredGrid>")?;
    if encoding == Encoding::Appended {
        write!(w, r#"<AppendedData encoding="raw">_"#)?;
        for a in &arrays {
            let bytes = a.data.get().to_le_bytes();
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(&bytes)?;
        }
        writeln!(w, "</AppendedData>")?;
    }
    writeln!(w, "</VTKFile>")?;
    Ok(())
}

fn pending<'a>(section: &'static str, a: &'a DataArray) -> PendingArray<'a> {
    PendingArray {
        section,
        vtk_type: a.data.vtk_type_name(),
        name: a.name.clone(),
        components: a.components,
        data: ArrayOwned::Borrowed(&a.data),
    }
}

fn write_ascii_values(data: &ArrayData, w: &mut impl Write) -> std::io::Result<()> {
    const PER_LINE: usize = 8;
    let n = data.scalar_len();
    for i in 0..n {
        match data {
            ArrayData::F32(v) => write!(w, "{}", v[i])?,
            ArrayData::F64(v) => write!(w, "{}", v[i])?,
            ArrayData::F64Shared(v) => write!(w, "{}", v[i])?,
            ArrayData::I64(v) => write!(w, "{}", v[i])?,
            ArrayData::U8(v) => write!(w, "{}", v[i])?,
        }
        if (i + 1) % PER_LINE == 0 || i + 1 == n {
            writeln!(w)?;
        } else {
            write!(w, " ")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::DataArray;
    use crate::ugrid::CellType;

    fn sample_grid() -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64(
            "pressure",
            (0..8).map(|i| i as f64 * 0.25).collect(),
        ))
        .unwrap();
        g.add_cell_data(DataArray::scalars_f32("rank", vec![3.0]))
            .unwrap();
        g
    }

    #[test]
    fn ascii_output_contains_structure() {
        let mut buf = Vec::new();
        let n = write_vtu(&sample_grid(), Encoding::Ascii, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n as usize, text.len());
        assert!(text.contains(r#"NumberOfPoints="8""#));
        assert!(text.contains(r#"NumberOfCells="1""#));
        assert!(text.contains(r#"Name="pressure""#));
        assert!(text.contains(r#"Name="connectivity""#));
        assert!(text.contains("</VTKFile>"));
        assert!(!text.contains("AppendedData"));
    }

    #[test]
    fn appended_output_has_raw_block_with_correct_sizes() {
        let mut buf = Vec::new();
        write_vtu(&sample_grid(), Encoding::Appended, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains(r#"format="appended""#));
        // First appended array is pressure: 8 f64 = 64 bytes.
        let marker = text.find(r#"encoding="raw">_"#).unwrap();
        let blob_start = marker + r#"encoding="raw">_"#.len();
        let header = u32::from_le_bytes(buf[blob_start..blob_start + 4].try_into().unwrap());
        assert_eq!(header, 64);
    }

    #[test]
    fn appended_is_smaller_than_ascii_for_big_data() {
        // Float-heavy dataset: fractional coordinates and a sin-valued
        // field print ~18 ASCII chars per scalar vs 8 raw bytes.
        let mut g = UnstructuredGrid::new();
        for i in 0..1000 {
            g.add_point([
                (i as f64 * 0.1).sin(),
                (i as f64 * 0.2).cos(),
                i as f64 * 0.123456789,
            ]);
        }
        g.add_cell(CellType::Line, &[0, 1]);
        g.add_point_data(DataArray::scalars_f64(
            "x",
            (0..1000).map(|i| (i as f64).sin()).collect(),
        ))
        .unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ascii = write_vtu(&g, Encoding::Ascii, &mut a).unwrap();
        let appended = write_vtu(&g, Encoding::Appended, &mut b).unwrap();
        assert!(appended < ascii, "appended {appended} vs ascii {ascii}");
    }

    #[test]
    fn invalid_grid_is_rejected_before_writing() {
        let mut g = sample_grid();
        g.connectivity[0] = 1000;
        let mut buf = Vec::new();
        assert!(write_vtu(&g, Encoding::Ascii, &mut buf).is_err());
        assert!(buf.is_empty(), "nothing must be written for invalid input");
    }

    #[test]
    fn array_names_are_xml_escaped() {
        let mut g = sample_grid();
        g.point_data[0].name = "p<&>q".into();
        let mut buf = Vec::new();
        write_vtu(&g, Encoding::Ascii, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("p&lt;&amp;&gt;q"));
    }
}
