//! Parallel `.pvtu` index writer.
//!
//! In the checkpointing configurations every rank writes its own `.vtu`
//! piece; rank 0 additionally writes one `.pvtu` index referencing all
//! pieces so the checkpoint opens as a single dataset.

use crate::metadata::MeshMetadata;
use crate::Centering;
use crate::Result;
use std::io::Write;

/// Write a `.pvtu` referencing `piece_files`, describing arrays from `md`.
/// Returns bytes written.
///
/// # Errors
/// I/O errors only.
pub fn write_pvtu(md: &MeshMetadata, piece_files: &[String], w: &mut impl Write) -> Result<u64> {
    let mut out = Vec::new();
    writeln!(out, r#"<?xml version="1.0"?>"#)?;
    writeln!(
        out,
        r#"<VTKFile type="PUnstructuredGrid" version="0.1" byte_order="LittleEndian">"#
    )?;
    writeln!(out, r#"<PUnstructuredGrid GhostLevel="0">"#)?;
    writeln!(out, "<PPointData>")?;
    for a in md.arrays.iter().filter(|a| a.centering == Centering::Point) {
        writeln!(
            out,
            r#"<PDataArray type="Float64" Name="{}" NumberOfComponents="{}"/>"#,
            crate::xml::escape(&a.name),
            a.components
        )?;
    }
    writeln!(out, "</PPointData>")?;
    writeln!(out, "<PCellData>")?;
    for a in md.arrays.iter().filter(|a| a.centering == Centering::Cell) {
        writeln!(
            out,
            r#"<PDataArray type="Float64" Name="{}" NumberOfComponents="{}"/>"#,
            crate::xml::escape(&a.name),
            a.components
        )?;
    }
    writeln!(out, "</PCellData>")?;
    writeln!(out, "<PPoints>")?;
    writeln!(
        out,
        r#"<PDataArray type="Float64" Name="Points" NumberOfComponents="3"/>"#
    )?;
    writeln!(out, "</PPoints>")?;
    for f in piece_files {
        writeln!(out, r#"<Piece Source="{}"/>"#, crate::xml::escape(f))?;
    }
    writeln!(out, "</PUnstructuredGrid>")?;
    writeln!(out, "</VTKFile>")?;
    w.write_all(&out)?;
    Ok(out.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::ArrayInfo;

    #[test]
    fn pvtu_references_all_pieces_and_arrays() {
        let md = MeshMetadata {
            mesh_name: "mesh".into(),
            n_blocks: 2,
            global_points: 100,
            global_cells: 50,
            arrays: vec![
                ArrayInfo {
                    name: "pressure".into(),
                    centering: Centering::Point,
                    components: 1,
                },
                ArrayInfo {
                    name: "velocity".into(),
                    centering: Centering::Point,
                    components: 3,
                },
                ArrayInfo {
                    name: "rank".into(),
                    centering: Centering::Cell,
                    components: 1,
                },
            ],
            bounds: None,
            time: 0.0,
            time_step: 0,
        };
        let pieces = vec!["chk_0000_r0.vtu".to_string(), "chk_0000_r1.vtu".to_string()];
        let mut buf = Vec::new();
        let n = write_pvtu(&md, &pieces, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n as usize, text.len());
        assert!(text.contains(r#"Source="chk_0000_r0.vtu""#));
        assert!(text.contains(r#"Source="chk_0000_r1.vtu""#));
        assert!(text.contains(r#"Name="pressure""#));
        // velocity is point data; rank is cell data.
        let ppoint = text.split("<PCellData>").next().unwrap();
        assert!(ppoint.contains("velocity"));
        let pcell = text.split("<PCellData>").nth(1).unwrap();
        assert!(pcell.contains(r#"Name="rank""#));
        // Valid XML per our own parser.
        let parsed = crate::xml::parse(&text).unwrap();
        assert_eq!(parsed.name, "VTKFile");
        assert_eq!(
            parsed
                .find("PUnstructuredGrid")
                .unwrap()
                .children_named("Piece")
                .count(),
            2
        );
    }
}
