//! File writers: legacy `.vtk`, XML `.vtu`, and parallel `.pvtu`.
//!
//! Checkpointing in both of the paper's workflows means serializing the
//! rank-local unstructured grid with these formats; the figure harnesses
//! charge filesystem time for exactly the byte counts produced here.

pub mod legacy;
pub mod pvtu;
pub mod vtu;

pub use legacy::write_legacy_vtk;
pub use pvtu::write_pvtu;
pub use vtu::{write_vtu, Encoding};
