//! Named, typed attribute arrays (the VTK `vtkDataArray` analogue).

use std::sync::Arc;

/// Where an array lives on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Centering {
    /// One tuple per point (VTK point data).
    Point,
    /// One tuple per cell (VTK cell data).
    Cell,
}

impl std::fmt::Display for Centering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Centering::Point => write!(f, "point"),
            Centering::Cell => write!(f, "cell"),
        }
    }
}

/// The storage behind a [`DataArray`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// 32-bit floats (what the paper's rendering consumes).
    F32(Vec<f32>),
    /// 64-bit floats (native solver precision).
    F64(Vec<f64>),
    /// 64-bit floats shared by reference with the producing snapshot —
    /// zero-copy: many consumers alias one staged buffer.
    F64Shared(Arc<Vec<f64>>),
    /// 64-bit signed integers (connectivity, ids).
    I64(Vec<i64>),
    /// Bytes (cell types, masks).
    U8(Vec<u8>),
}

impl ArrayData {
    /// Number of scalar values (tuples × components).
    pub fn scalar_len(&self) -> usize {
        match self {
            ArrayData::F32(v) => v.len(),
            ArrayData::F64(v) => v.len(),
            ArrayData::F64Shared(v) => v.len(),
            ArrayData::I64(v) => v.len(),
            ArrayData::U8(v) => v.len(),
        }
    }

    /// Heap bytes held by the storage.
    pub fn heap_bytes(&self) -> u64 {
        match self {
            ArrayData::F32(v) => (v.capacity() * 4) as u64,
            ArrayData::F64(v) => (v.capacity() * 8) as u64,
            // Shared storage is owned by the snapshot pool and accounted
            // there; a consumer's alias adds no heap of its own.
            ArrayData::F64Shared(_) => 0,
            ArrayData::I64(v) => (v.capacity() * 8) as u64,
            ArrayData::U8(v) => v.capacity() as u64,
        }
    }

    /// The VTU type name ("Float32", ...).
    pub fn vtk_type_name(&self) -> &'static str {
        match self {
            ArrayData::F32(_) => "Float32",
            ArrayData::F64(_) | ArrayData::F64Shared(_) => "Float64",
            ArrayData::I64(_) => "Int64",
            ArrayData::U8(_) => "UInt8",
        }
    }

    /// Size of one scalar in bytes.
    pub fn scalar_size(&self) -> usize {
        match self {
            ArrayData::F32(_) => 4,
            ArrayData::F64(_) | ArrayData::F64Shared(_) => 8,
            ArrayData::I64(_) => 8,
            ArrayData::U8(_) => 1,
        }
    }

    /// Value at flat index `i` widened to `f64`.
    pub fn get_as_f64(&self, i: usize) -> f64 {
        match self {
            ArrayData::F32(v) => v[i] as f64,
            ArrayData::F64(v) => v[i],
            ArrayData::F64Shared(v) => v[i],
            ArrayData::I64(v) => v[i] as f64,
            ArrayData::U8(v) => v[i] as f64,
        }
    }

    /// Raw little-endian bytes of the whole array (VTU appended encoding).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        match self {
            ArrayData::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            ArrayData::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            ArrayData::F64Shared(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            ArrayData::I64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            ArrayData::U8(v) => v.clone(),
        }
    }
}

/// A named attribute array with a fixed number of components per tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct DataArray {
    /// Array name ("pressure", "velocity", ...).
    pub name: String,
    /// Components per tuple (1 = scalar, 3 = vector).
    pub components: usize,
    /// The values, tuple-major: `[t0c0, t0c1, ..., t1c0, ...]`.
    pub data: ArrayData,
}

impl DataArray {
    /// A scalar `f64` array.
    pub fn scalars_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            components: 1,
            data: ArrayData::F64(values),
        }
    }

    /// A scalar `f32` array.
    pub fn scalars_f32(name: impl Into<String>, values: Vec<f32>) -> Self {
        Self {
            name: name.into(),
            components: 1,
            data: ArrayData::F32(values),
        }
    }

    /// A 3-component `f64` vector array from interleaved values.
    ///
    /// # Panics
    /// Panics if `values.len()` is not a multiple of 3.
    pub fn vectors_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        assert_eq!(values.len() % 3, 0, "vector array length must be 3·n");
        Self {
            name: name.into(),
            components: 3,
            data: ArrayData::F64(values),
        }
    }

    /// An `f64` array aliasing shared (snapshot-owned) storage, zero-copy.
    ///
    /// # Panics
    /// Panics if `components` is zero or `values.len()` is not a multiple
    /// of `components`.
    pub fn shared_f64(name: impl Into<String>, components: usize, values: Arc<Vec<f64>>) -> Self {
        assert!(components >= 1, "components must be at least 1");
        assert_eq!(
            values.len() % components,
            0,
            "shared array length must be components·n"
        );
        Self {
            name: name.into(),
            components,
            data: ArrayData::F64Shared(values),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.scalar_len() / self.components
    }

    /// True when the array has no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.scalar_len() == 0
    }

    /// Heap bytes held (for memory accounting).
    pub fn heap_bytes(&self) -> u64 {
        self.data.heap_bytes() + self.name.capacity() as u64
    }

    /// (min, max) over all scalar values, ignoring NaN; `None` when empty.
    pub fn range(&self) -> Option<(f64, f64)> {
        let n = self.data.scalar_len();
        if n == 0 {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let v = self.data.get_as_f64(i);
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// Euclidean magnitude of tuple `i` (|v| for vectors, |x| for scalars).
    pub fn tuple_magnitude(&self, i: usize) -> f64 {
        let mut acc = 0.0;
        for c in 0..self.components {
            let v = self.data.get_as_f64(i * self.components + c);
            acc += v * v;
        }
        acc.sqrt()
    }

    /// Component `c` of tuple `i` as `f64`.
    pub fn get(&self, i: usize, c: usize) -> f64 {
        assert!(c < self.components, "component out of range");
        self.data.get_as_f64(i * self.components + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_array_basics() {
        let a = DataArray::scalars_f64("p", vec![1.0, -2.0, 3.0]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.components, 1);
        assert_eq!(a.range(), Some((-2.0, 3.0)));
        assert_eq!(a.get(1, 0), -2.0);
    }

    #[test]
    fn vector_array_tuples_and_magnitude() {
        let a = DataArray::vectors_f64("v", vec![3.0, 4.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.tuple_magnitude(0), 5.0);
        assert_eq!(a.tuple_magnitude(1), 1.0);
        assert_eq!(a.get(0, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "3·n")]
    fn vectors_reject_non_multiple_of_three() {
        DataArray::vectors_f64("v", vec![1.0, 2.0]);
    }

    #[test]
    fn range_ignores_nan_and_handles_empty() {
        let a = DataArray::scalars_f64("x", vec![f64::NAN, 2.0, 1.0]);
        assert_eq!(a.range(), Some((1.0, 2.0)));
        let e = DataArray::scalars_f64("e", vec![]);
        assert_eq!(e.range(), None);
        assert!(e.is_empty());
        let all_nan = DataArray::scalars_f64("n", vec![f64::NAN]);
        assert_eq!(all_nan.range(), None);
    }

    #[test]
    fn le_bytes_roundtrip_f32() {
        let a = ArrayData::F32(vec![1.5, -2.25]);
        let bytes = a.to_le_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(f32::from_le_bytes(bytes[0..4].try_into().unwrap()), 1.5);
        assert_eq!(f32::from_le_bytes(bytes[4..8].try_into().unwrap()), -2.25);
    }

    #[test]
    fn vtk_type_names() {
        assert_eq!(ArrayData::F32(vec![]).vtk_type_name(), "Float32");
        assert_eq!(ArrayData::F64(vec![]).vtk_type_name(), "Float64");
        assert_eq!(ArrayData::I64(vec![]).vtk_type_name(), "Int64");
        assert_eq!(ArrayData::U8(vec![]).vtk_type_name(), "UInt8");
    }

    #[test]
    fn heap_bytes_counts_capacity() {
        let v = Vec::with_capacity(100);
        let a = ArrayData::F64(v);
        assert_eq!(a.heap_bytes(), 800);
    }
}
