//! Gather–scatter: direct stiffness summation across duplicated SEM nodes.
//!
//! NekRS delegates this to `gslib`; here the same operation is built from
//! the structured global numbering. `sum` makes every copy of a shared node
//! hold the sum of all copies (across elements *and* ranks); `average`
//! divides by multiplicity, projecting an arbitrary element-major field
//! onto the continuous subspace.
//!
//! With slab partitioning each rank exchanges only with its z-neighbors
//! (wrapping on periodic meshes), so the communication pattern is two
//! messages per direction per sum — charged to the virtual clock through
//! the ordinary `Comm` send/recv path, like GPU-direct MPI in NekRS.

use crate::mesh::LocalMesh;
use commsim::Comm;
use std::cell::Cell;

const TAG_UP: u64 = 0x6773_0001; // from below-rank to above-rank
const TAG_DOWN: u64 = 0x6773_0002; // from above-rank to below-rank

struct Exchange {
    peer: usize,
    send_tag: u64,
    recv_tag: u64,
    /// Local node indices, grouped by gid (ascending), flattened.
    nodes: Vec<u32>,
    /// Group boundaries into `nodes` (len = n_groups + 1).
    starts: Vec<u32>,
}

/// Accumulated comm/compute overlap accounting for the split-phase
/// exchange: virtual seconds of network latency hidden behind interior
/// gather work vs. still exposed as recv wait, over `sums` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GsOverlap {
    /// Network latency covered by interior compute while in flight.
    pub hidden_s: f64,
    /// Recv wait the interior phase could not cover.
    pub exposed_s: f64,
    /// Number of `sum` calls accumulated.
    pub sums: u64,
}

impl GsOverlap {
    /// Fraction of exchange latency hidden behind interior compute
    /// (0 when nothing was exchanged).
    pub fn ratio(&self) -> f64 {
        let total = self.hidden_s + self.exposed_s;
        if total > 0.0 {
            self.hidden_s / total
        } else {
            0.0
        }
    }
}

/// The assembled-topology handle for one rank's mesh.
pub struct GatherScatter {
    n_nodes: usize,
    /// Local node indices sorted by gid.
    order: Vec<u32>,
    /// Segment boundaries into `order`; each segment is one global node.
    seg_starts: Vec<u32>,
    exchanges: Vec<Exchange>,
    /// 1 / global multiplicity per local node.
    mult_inv: Vec<f64>,
    /// Shared segments (`len ≥ 2`) touching at least one exchanged node —
    /// these must be gathered before the exchange payload is read.
    boundary_segs: Vec<u32>,
    /// Shared segments with no exchanged node — free to gather while the
    /// exchange is in flight.
    interior_segs: Vec<u32>,
    /// Elements owning at least one exchanged node, ascending.
    boundary_elems: Vec<u32>,
    /// Elements owning no exchanged node, ascending.
    interior_elems: Vec<u32>,
    /// Count of distinct local nodes that appear in an exchange.
    n_boundary_nodes: usize,
    overlap: Cell<GsOverlap>,
}

impl GatherScatter {
    /// Build the topology for `mesh`, communicating with z-neighbors to
    /// establish multiplicities.
    pub fn new(mesh: &LocalMesh, comm: &mut Comm) -> Self {
        let l = mesh.layout();
        let n_nodes = l.n_nodes();

        // Intra-rank groups.
        let mut gids = vec![0u64; n_nodes];
        for le in 0..mesh.elems.len() {
            for k in 0..l.np {
                for j in 0..l.np {
                    for i in 0..l.np {
                        gids[l.idx(le, i, j, k)] = mesh.gid(le, i, j, k);
                    }
                }
            }
        }
        let mut order: Vec<u32> = (0..n_nodes as u32).collect();
        order.sort_by_key(|&i| gids[i as usize]);
        let mut seg_starts = vec![0u32];
        for w in 1..n_nodes {
            if gids[order[w] as usize] != gids[order[w - 1] as usize] {
                seg_starts.push(w as u32);
            }
        }
        seg_starts.push(n_nodes as u32);

        // Inter-rank interface exchanges.
        let mut exchanges = Vec::new();
        let periodic_z = mesh.spec.periodic[2];
        if mesh.nranks > 1 {
            // Top interface (this rank below, peer above).
            let has_up = mesh.ez1 < mesh.spec.elems[2] || periodic_z;
            if has_up {
                let peer = (mesh.rank + 1) % mesh.nranks;
                if let Some(ex) = build_exchange(mesh, &gids, true, peer, TAG_UP, TAG_DOWN) {
                    exchanges.push(ex);
                }
            }
            // Bottom interface (this rank above, peer below).
            let has_down = mesh.ez0 > 0 || periodic_z;
            if has_down {
                let peer = (mesh.rank + mesh.nranks - 1) % mesh.nranks;
                if let Some(ex) = build_exchange(mesh, &gids, false, peer, TAG_DOWN, TAG_UP) {
                    exchanges.push(ex);
                }
            }
        }

        // Boundary/interior classification: a node is "boundary" when it
        // is exchanged with a neighbor rank; a gid segment or an element
        // is boundary when it contains one. Interior segments can be
        // gathered while the exchange is in flight (comm/compute overlap),
        // and interior elements are the operator work a solver may
        // schedule under the same window.
        let mut is_boundary = vec![false; n_nodes];
        for ex in &exchanges {
            for &i in &ex.nodes {
                is_boundary[i as usize] = true;
            }
        }
        let n_boundary_nodes = is_boundary.iter().filter(|&&b| b).count();
        let mut boundary_segs = Vec::new();
        let mut interior_segs = Vec::new();
        for s in 0..seg_starts.len() - 1 {
            let seg = &order[seg_starts[s] as usize..seg_starts[s + 1] as usize];
            if seg.len() < 2 {
                continue;
            }
            if seg.iter().any(|&i| is_boundary[i as usize]) {
                boundary_segs.push(s as u32);
            } else {
                interior_segs.push(s as u32);
            }
        }
        let npe = l.nodes_per_elem();
        let mut elem_boundary = vec![false; l.n_elems];
        for (i, &b) in is_boundary.iter().enumerate() {
            if b {
                elem_boundary[i / npe] = true;
            }
        }
        let mut boundary_elems = Vec::new();
        let mut interior_elems = Vec::new();
        for (e, &b) in elem_boundary.iter().enumerate() {
            if b {
                boundary_elems.push(e as u32);
            } else {
                interior_elems.push(e as u32);
            }
        }

        let mut gs = Self {
            n_nodes,
            order,
            seg_starts,
            exchanges,
            mult_inv: Vec::new(),
            boundary_segs,
            interior_segs,
            boundary_elems,
            interior_elems,
            n_boundary_nodes,
            overlap: Cell::new(GsOverlap::default()),
        };
        // Multiplicity via a sum of ones. Every rank with any exchange must
        // participate even if its own field were empty.
        let mut ones = vec![1.0; n_nodes];
        gs.sum(comm, &mut ones);
        gs.mult_inv = ones.iter().map(|&m| 1.0 / m).collect();
        gs
    }

    /// Number of local (duplicated) nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// 1/multiplicity weights — also the quadrature de-duplication weights
    /// used by assembled inner products.
    pub fn mult_inv(&self) -> &[f64] {
        &self.mult_inv
    }

    /// Elements owning at least one rank-boundary (exchanged) node.
    pub fn boundary_elems(&self) -> &[u32] {
        &self.boundary_elems
    }

    /// Elements whose nodes are all rank-local — operator work that can
    /// proceed while an exchange is in flight.
    pub fn interior_elems(&self) -> &[u32] {
        &self.interior_elems
    }

    /// Number of distinct local nodes shared with a neighbor rank.
    pub fn n_boundary_nodes(&self) -> usize {
        self.n_boundary_nodes
    }

    /// Overlap accounting accumulated since construction (or the last
    /// [`Self::take_overlap`]).
    pub fn overlap(&self) -> GsOverlap {
        self.overlap.get()
    }

    /// Drain the overlap accounting, resetting it to zero.
    pub fn take_overlap(&self) -> GsOverlap {
        self.overlap.replace(GsOverlap::default())
    }

    /// Direct stiffness summation: after this call, every copy of a shared
    /// node holds the sum over all copies on all ranks.
    ///
    /// Split-phase: boundary segments (those feeding the neighbor
    /// exchange) are gathered first and the sends posted immediately, so
    /// the wire latency runs concurrently with the interior gather —
    /// interior segments by definition contain no exchanged node, so
    /// their order relative to the sends cannot change any value and the
    /// result stays bitwise identical to the unsplit sweep. The roofline
    /// charge is split proportionally between the phases (it is linear,
    /// so total virtual compute time is unchanged); how much of the
    /// exchange latency the interior phase hid is accumulated in
    /// [`Self::overlap`].
    pub fn sum(&self, comm: &mut Comm, field: &mut [f64]) {
        assert_eq!(field.len(), self.n_nodes, "field/topology size mismatch");
        // Intra-rank gather+scatter is bandwidth-bound: 1 flop + 16 bytes
        // per node, split by boundary fraction across the two phases.
        let (flops, bytes) = (self.n_nodes as f64, (self.n_nodes * 8 * 2) as f64);
        let fb = if self.n_nodes > 0 {
            self.n_boundary_nodes as f64 / self.n_nodes as f64
        } else {
            0.0
        };
        comm.compute_gpu(flops * fb, bytes * fb);
        self.gather_segs(&self.boundary_segs, field);
        // Post the exchange; latency now runs on the virtual wire.
        let wire_s: f64 = self
            .exchanges
            .iter()
            .map(|ex| {
                comm.machine()
                    .network
                    .p2p_time(((ex.starts.len() - 1) * 8) as u64)
            })
            .sum();
        for ex in &self.exchanges {
            let payload: Vec<f64> = (0..ex.starts.len() - 1)
                .map(|g| field[ex.nodes[ex.starts[g] as usize] as usize])
                .collect();
            comm.send_f64s(ex.peer, ex.send_tag, payload);
        }
        // Interior gather overlaps the in-flight exchange.
        comm.compute_gpu(flops * (1.0 - fb), bytes * (1.0 - fb));
        self.gather_segs(&self.interior_segs, field);
        let t_ready = comm.now();
        // Complete the boundary: wait for neighbors and accumulate.
        for ex in &self.exchanges {
            let incoming: Vec<f64> = comm.recv(ex.peer, ex.recv_tag);
            assert_eq!(
                incoming.len(),
                ex.starts.len() - 1,
                "interface size mismatch with rank {}",
                ex.peer
            );
            for g in 0..incoming.len() {
                for &i in &ex.nodes[ex.starts[g] as usize..ex.starts[g + 1] as usize] {
                    field[i as usize] += incoming[g];
                }
            }
        }
        let exposed = (comm.now() - t_ready).max(0.0);
        // Latency the interior phase managed to cover: whatever of the
        // wire time did not resurface as recv wait (peers may add their
        // own send-side delay, so `exposed` can exceed `wire_s`).
        let hidden = (wire_s - exposed).clamp(0.0, wire_s);
        let mut o = self.overlap.get();
        o.hidden_s += hidden;
        o.exposed_s += exposed;
        o.sums += 1;
        self.overlap.set(o);
    }

    fn gather_segs(&self, segs: &[u32], field: &mut [f64]) {
        for &s in segs {
            let s = s as usize;
            let seg = &self.order[self.seg_starts[s] as usize..self.seg_starts[s + 1] as usize];
            let total: f64 = seg.iter().map(|&i| field[i as usize]).sum();
            for &i in seg {
                field[i as usize] = total;
            }
        }
    }

    /// Sum followed by division by multiplicity: the continuous projection.
    pub fn average(&self, comm: &mut Comm, field: &mut [f64]) {
        self.sum(comm, field);
        comm.compute_gpu(self.n_nodes as f64, (self.n_nodes * 8 * 2) as f64);
        for (v, w) in field.iter_mut().zip(&self.mult_inv) {
            *v *= w;
        }
    }
}

/// Collect this rank's nodes on its top (`top = true`) or bottom interface
/// plane that the neighbor also owns, grouped by gid ascending.
fn build_exchange(
    mesh: &LocalMesh,
    gids: &[u64],
    top: bool,
    peer: usize,
    send_tag: u64,
    recv_tag: u64,
) -> Option<Exchange> {
    let l = mesh.layout();
    let n = mesh.spec.order;
    let (ez_layer, k_face, dz) = if top {
        (mesh.ez1 - 1, n, 1isize)
    } else {
        (mesh.ez0, 0, -1isize)
    };
    let mut entries: Vec<(u64, u32)> = Vec::new();
    for (le, e) in mesh.elems.iter().enumerate() {
        if e[2] != ez_layer {
            continue;
        }
        for j in 0..l.np {
            for i in 0..l.np {
                // The neighbor rank owns this node iff any fluid element on
                // the far side of the plane shares it. Offsets fit in stack
                // arrays: a node sits on at most one x- and one y-boundary.
                let mut dxs = [0isize; 2];
                let mut n_dx = 1;
                if i == 0 {
                    dxs[n_dx] = -1;
                    n_dx += 1;
                }
                if i == n {
                    dxs[n_dx] = 1;
                    n_dx += 1;
                }
                let mut dys = [0isize; 2];
                let mut n_dy = 1;
                if j == 0 {
                    dys[n_dy] = -1;
                    n_dy += 1;
                }
                if j == n {
                    dys[n_dy] = 1;
                    n_dy += 1;
                }
                let shared = dxs[..n_dx].iter().any(|&dx| {
                    dys[..n_dy].iter().any(|&dy| {
                        mesh.neighbor_elem(*e, [dx, dy, dz])
                            .is_some_and(|ne| !mesh.spec.is_solid(ne))
                    })
                });
                if shared {
                    let idx = l.idx(le, i, j, k_face) as u32;
                    entries.push((gids[idx as usize], idx));
                }
            }
        }
    }
    if entries.is_empty() {
        return None;
    }
    entries.sort();
    let mut nodes = Vec::with_capacity(entries.len());
    let mut starts = vec![0u32];
    for (w, (gid, idx)) in entries.iter().enumerate() {
        if w > 0 && *gid != entries[w - 1].0 {
            starts.push(w as u32);
        }
        nodes.push(*idx);
    }
    starts.push(entries.len() as u32);
    Some(Exchange {
        peer,
        send_tag,
        recv_tag,
        nodes,
        starts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshSpec;
    use commsim::{run_ranks, MachineModel};
    use std::sync::Arc;

    fn with_mesh<R: Send + 'static>(
        ranks: usize,
        order: usize,
        elems: [usize; 3],
        periodic: [bool; 3],
        f: impl Fn(&LocalMesh, &GatherScatter, &mut Comm) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        run_ranks(ranks, MachineModel::test_tiny(), move |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(order, elems, [1.0; 3], periodic));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let gs = GatherScatter::new(&mesh, comm);
            f(&mesh, &gs, comm)
        })
    }

    #[test]
    fn multiplicity_single_rank_2x2x2() {
        let res = with_mesh(1, 2, [2, 2, 2], [false; 3], |mesh, gs, comm| {
            let mut ones = vec![1.0; mesh.layout().n_nodes()];
            gs.sum(comm, &mut ones);
            let l = mesh.layout();
            // Center of the mesh: shared by all 8 elements.
            let le = mesh.elems.iter().position(|e| *e == [0, 0, 0]).unwrap();
            let center = ones[l.idx(le, 2, 2, 2)];
            // A face-interior node between two elements.
            let face = ones[l.idx(le, 2, 1, 1)];
            // A node strictly inside one element.
            let interior = ones[l.idx(le, 1, 1, 1)];
            (center, face, interior)
        });
        assert_eq!(res[0], (8.0, 2.0, 1.0));
    }

    #[test]
    fn multiplicity_across_two_ranks() {
        let res = with_mesh(2, 2, [1, 1, 2], [false; 3], |mesh, gs, comm| {
            let mut ones = vec![1.0; mesh.layout().n_nodes()];
            gs.sum(comm, &mut ones);
            let l = mesh.layout();
            // Interface plane nodes (k = N on rank 0, k = 0 on rank 1).
            let k_face = if comm.rank() == 0 { 2 } else { 0 };
            let k_free = if comm.rank() == 0 { 0 } else { 2 };
            (ones[l.idx(0, 1, 1, k_face)], ones[l.idx(0, 1, 1, k_free)])
        });
        for r in res {
            assert_eq!(r, (2.0, 1.0));
        }
    }

    #[test]
    fn periodic_z_wraps_across_ranks() {
        let res = with_mesh(2, 2, [1, 1, 2], [false, false, true], |mesh, gs, comm| {
            let mut ones = vec![1.0; mesh.layout().n_nodes()];
            gs.sum(comm, &mut ones);
            let l = mesh.layout();
            // With periodic z both k-faces are interfaces now.
            let _ = comm.rank();
            (
                ones[l.idx(0, 1, 1, 0)],
                ones[l.idx(0, 1, 1, 2)],
                ones[l.idx(0, 1, 1, 1)],
            )
        });
        for r in res {
            assert_eq!(r, (2.0, 2.0, 1.0));
        }
    }

    #[test]
    fn average_preserves_continuous_fields() {
        // A nodal evaluation of a smooth function is continuous: identical
        // values at duplicated nodes, so average() must be the identity.
        for ranks in [1usize, 3] {
            let res = with_mesh(ranks, 3, [2, 2, 3], [false; 3], |mesh, gs, comm| {
                let f = mesh.eval_nodal(|x| x[0] + 2.0 * x[1] * x[2]);
                let mut g = f.clone();
                gs.average(comm, &mut g);
                f.iter()
                    .zip(&g)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            });
            for err in res {
                assert!(err < 1e-12, "ranks={ranks}: {err}");
            }
        }
    }

    #[test]
    fn sum_is_globally_consistent_for_random_fields() {
        // After sum, the value at a gid must agree across ranks. Verify via
        // the global linear functional Σ mult_inv ⊙ summed == Σ original.
        let res = with_mesh(3, 2, [2, 2, 3], [false; 3], |mesh, gs, comm| {
            let mut field = mesh.eval_nodal(|x| (31.7 * x[0] + 7.3 * x[1] + 3.1 * x[2]).sin());
            let local_total: f64 = field.iter().sum();
            let global_total = comm.allreduce(local_total, commsim::ReduceOp::Sum);
            gs.sum(comm, &mut field);
            let weighted: f64 = field.iter().zip(gs.mult_inv()).map(|(v, w)| v * w).sum();
            let global_weighted = comm.allreduce(weighted, commsim::ReduceOp::Sum);
            (global_total, global_weighted)
        });
        for (a, b) in res {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn solid_elements_break_connectivity() {
        // A solid element in the middle of a 1×1×3 column (3 ranks) means
        // ranks 0 and 2 have no interface with rank 1 at all.
        let res = run_ranks(3, MachineModel::test_tiny(), |comm| {
            let mut raw = MeshSpec::box_mesh(2, [1, 1, 3], [1.0; 3], [false; 3]);
            let mid = raw.elem_index([0, 0, 1]);
            raw.solid[mid] = true;
            let mesh = LocalMesh::new(Arc::new(raw), comm.rank(), comm.size());
            let gs = GatherScatter::new(&mesh, comm);
            if mesh.elems.is_empty() {
                return -1.0;
            }
            let mut ones = vec![1.0; mesh.layout().n_nodes()];
            gs.sum(comm, &mut ones);
            ones.iter().cloned().fold(0.0, f64::max)
        });
        // Rank 1 holds the solid element: no fluid elements at all.
        assert_eq!(res[1], -1.0);
        // Ranks 0 and 2: all nodes have multiplicity 1 (no neighbors).
        assert_eq!(res[0], 1.0);
        assert_eq!(res[2], 1.0);
    }

    #[test]
    fn classification_single_rank_has_no_boundary() {
        let res = with_mesh(1, 2, [2, 2, 2], [false; 3], |mesh, gs, _comm| {
            (
                gs.n_boundary_nodes(),
                gs.boundary_elems().len(),
                gs.interior_elems().len(),
                mesh.elems.len(),
            )
        });
        let (nb, be, ie, ne) = res[0];
        assert_eq!(nb, 0, "single rank exchanges nothing");
        assert_eq!(be, 0);
        assert_eq!(ie, ne, "every element is interior");
    }

    #[test]
    fn classification_multi_rank_splits_slab_elements() {
        // 1×1×4 column over 2 ranks: each rank holds 2 elements, exactly
        // one of which touches the inter-rank plane.
        let res = with_mesh(2, 2, [1, 1, 4], [false; 3], |mesh, gs, comm| {
            let np = mesh.layout().np;
            (
                comm.rank(),
                gs.boundary_elems().to_vec(),
                gs.interior_elems().to_vec(),
                gs.n_boundary_nodes(),
                np,
            )
        });
        for (rank, be, ie, nb, np) in res {
            // Rank 0 owns ez 0..2 (boundary element is its top, local
            // element 1); rank 1 owns ez 2..4 (boundary is its bottom,
            // local element 0).
            let expect_boundary = if rank == 0 { vec![1u32] } else { vec![0u32] };
            let expect_interior = if rank == 0 { vec![0u32] } else { vec![1u32] };
            assert_eq!(be, expect_boundary, "rank {rank}");
            assert_eq!(ie, expect_interior, "rank {rank}");
            // One interface plane of (N+1)² nodes.
            assert_eq!(nb, np * np, "rank {rank}");
        }
    }

    #[test]
    fn classification_periodic_wrap_makes_all_elements_boundary() {
        // Periodic z with one element per rank: both k-faces of every
        // element are inter-rank interfaces.
        let res = with_mesh(2, 2, [1, 1, 2], [false, false, true], |mesh, gs, _comm| {
            let np = mesh.layout().np;
            (
                gs.boundary_elems().len(),
                gs.interior_elems().len(),
                gs.n_boundary_nodes(),
                np,
            )
        });
        for (be, ie, nb, np) in res {
            assert_eq!(be, 1, "the single element touches both interfaces");
            assert_eq!(ie, 0);
            assert_eq!(nb, 2 * np * np, "both faces exchanged");
        }
    }

    #[test]
    fn classification_solid_elements_are_interior() {
        // Solid mid-element severs the column: no rank exchanges, so all
        // fluid elements classify interior even though the rank count > 1.
        let res = run_ranks(3, MachineModel::test_tiny(), |comm| {
            let mut raw = MeshSpec::box_mesh(2, [1, 1, 3], [1.0; 3], [false; 3]);
            let mid = raw.elem_index([0, 0, 1]);
            raw.solid[mid] = true;
            let mesh = LocalMesh::new(Arc::new(raw), comm.rank(), comm.size());
            let gs = GatherScatter::new(&mesh, comm);
            (
                mesh.elems.len(),
                gs.boundary_elems().len(),
                gs.interior_elems().len(),
                gs.n_boundary_nodes(),
            )
        });
        assert_eq!(res[1], (0, 0, 0, 0), "solid rank holds no fluid elements");
        for &(ne, be, ie, nb) in [&res[0], &res[2]] {
            assert_eq!(ne, 1);
            assert_eq!(be, 0, "severed column exchanges nothing");
            assert_eq!(ie, 1);
            assert_eq!(nb, 0);
        }
    }

    #[test]
    fn overlap_accounting_accumulates_and_drains() {
        let res = with_mesh(2, 2, [1, 1, 2], [false; 3], |mesh, gs, comm| {
            gs.take_overlap(); // discard the construction-time sum
            let mut f = vec![1.0; mesh.layout().n_nodes()];
            gs.sum(comm, &mut f);
            gs.sum(comm, &mut f);
            let o = gs.take_overlap();
            let drained = gs.overlap();
            (o, drained)
        });
        for (o, drained) in res {
            assert_eq!(o.sums, 2);
            assert!(o.hidden_s >= 0.0 && o.exposed_s >= 0.0, "{o:?}");
            assert!((0.0..=1.0).contains(&o.ratio()), "{o:?}");
            assert_eq!(drained, GsOverlap::default(), "take must reset");
        }
    }

    #[test]
    fn sum_twice_multiplies_by_multiplicity() {
        let res = with_mesh(2, 2, [1, 1, 2], [false; 3], |mesh, gs, comm| {
            let mut f = vec![1.0; mesh.layout().n_nodes()];
            gs.sum(comm, &mut f);
            let mut g = f.clone();
            gs.sum(comm, &mut g);
            // At an interface node: first sum gives 2, second gives 2+2=4.
            let l = mesh.layout();
            let k_face = if comm.rank() == 0 { 2 } else { 0 };
            (f[l.idx(0, 0, 0, k_face)], g[l.idx(0, 0, 0, k_face)])
        });
        for r in res {
            assert_eq!(r, (2.0, 4.0));
        }
    }
}
