//! BDFk / EXTk time integration coefficients (k = 1..3), NekRS's default
//! temporal discretization for the Pₙ–Pₙ scheme.

/// Backward-differentiation coefficients in the convention
/// `(b0·u^{n+1} + Σ_{j=1..k} b[j-1]·u^{n+1-j}) / dt = RHS`.
///
/// Returns `(b0, b_prev)` with `b_prev.len() == k`.
///
/// # Panics
/// Panics for `k` outside 1..=3.
pub fn bdf(k: usize) -> (f64, Vec<f64>) {
    let (b0, b) = bdf_coeffs(k);
    (b0, b.to_vec())
}

/// Allocation-free variant of [`bdf`]: the history coefficients are
/// borrowed from static tables. This is what the stepping hot path uses.
///
/// # Panics
/// Panics for `k` outside 1..=3.
pub fn bdf_coeffs(k: usize) -> (f64, &'static [f64]) {
    match k {
        1 => (1.0, &[-1.0]),
        2 => (1.5, &[-2.0, 0.5]),
        3 => (11.0 / 6.0, &[-3.0, 1.5, -1.0 / 3.0]),
        _ => panic!("BDF order {k} not supported (1..=3)"),
    }
}

/// Extrapolation coefficients of order `k`: an explicit term at time
/// `n+1` is approximated by `Σ_{j=0..k-1} a[j]·N^{n-j}`.
///
/// # Panics
/// Panics for `k` outside 1..=3.
pub fn ext(k: usize) -> Vec<f64> {
    ext_coeffs(k).to_vec()
}

/// Allocation-free variant of [`ext`] borrowing from static tables.
///
/// # Panics
/// Panics for `k` outside 1..=3.
pub fn ext_coeffs(k: usize) -> &'static [f64] {
    match k {
        1 => &[1.0],
        2 => &[2.0, -1.0],
        3 => &[3.0, -3.0, 1.0],
        _ => panic!("EXT order {k} not supported (1..=3)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdf_coefficients_sum_to_zero() {
        // Consistency: a constant state must have zero discrete derivative.
        for k in 1..=3 {
            let (b0, b) = bdf(k);
            let total: f64 = b0 + b.iter().sum::<f64>();
            assert!(total.abs() < 1e-14, "k={k}");
        }
    }

    #[test]
    fn bdf_first_moment_is_one() {
        // Σ j·(-b_j) = 1 gives first-order consistency (du/dt of u = t).
        for k in 1..=3 {
            let (_, b) = bdf(k);
            let m: f64 = b
                .iter()
                .enumerate()
                .map(|(i, &bj)| -((i + 1) as f64) * bj)
                .sum();
            assert!((m - 1.0).abs() < 1e-13, "k={k}: {m}");
        }
    }

    #[test]
    fn ext_reproduces_polynomials() {
        // EXTk extrapolates values at t = -0, -1, -2 to t = +1 exactly for
        // polynomials of degree < k.
        for k in 1..=3usize {
            let a = ext(k);
            for degree in 0..k {
                let f = |t: f64| t.powi(degree as i32);
                let approx: f64 = a
                    .iter()
                    .enumerate()
                    .map(|(j, &aj)| aj * f(-(j as f64)))
                    .sum();
                assert!(
                    (approx - f(1.0)).abs() < 1e-12,
                    "k={k} degree={degree}: {approx}"
                );
            }
        }
    }

    #[test]
    fn bdf_exact_on_low_order_polynomials() {
        // BDFk differentiates t^d exactly for d <= k at t = 1 with dt = 1.
        for k in 1..=3usize {
            let (b0, b) = bdf(k);
            for d in 0..=k {
                let f = |t: f64| t.powi(d as i32);
                let deriv_exact = d as f64; // d/dt t^d at t=1 is d·1^{d-1}.
                let mut acc = b0 * f(1.0);
                for (j, &bj) in b.iter().enumerate() {
                    acc += bj * f(1.0 - (j + 1) as f64);
                }
                assert!((acc - deriv_exact).abs() < 1e-12, "k={k} d={d}: {acc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn bdf_rejects_order_4() {
        bdf(4);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn ext_rejects_order_0() {
        ext(0);
    }
}
