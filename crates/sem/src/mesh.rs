//! Structured hexahedral SEM meshes with solid masks and slab partitioning.
//!
//! The reproduction's geometry substitution (documented in DESIGN.md): the
//! paper's body-fitted pebble-bed mesh becomes a Cartesian box with
//! **solid-masked elements** approximating the pebbles — flow solves skip
//! solid elements and impose no-slip on their surfaces. The RBC slab is a
//! plain box. Both preserve what the evaluation measures: field sizes, data
//! movement, and assembly/communication structure.
//!
//! Domain decomposition is by contiguous element slabs along z (NekRS uses
//! general element partitions; slabs keep the halo pattern to two
//! neighbors, which is what a box-shaped mesh partition largely degenerates
//! to anyway).

use crate::field::FieldLayout;
use std::sync::Arc;

/// Boundary condition for one scalar field on one face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bc {
    /// Fixed value on the boundary.
    Dirichlet(f64),
    /// Natural (zero-flux) boundary; nothing is imposed.
    Neumann,
}

/// Boundary conditions for one scalar field: the six box faces
/// (x-min, x-max, y-min, y-max, z-min, z-max) plus internal solid surfaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BcSet {
    /// Face conditions in (x-,x+,y-,y+,z-,z+) order. Ignored on periodic
    /// axes.
    pub faces: [Bc; 6],
    /// Condition on solid-element (pebble) surfaces.
    pub solid_surface: Bc,
}

impl BcSet {
    /// All-Neumann (natural) conditions.
    pub fn all_neumann() -> Self {
        Self {
            faces: [Bc::Neumann; 6],
            solid_surface: Bc::Neumann,
        }
    }

    /// Homogeneous Dirichlet everywhere (no-slip walls + surfaces).
    pub fn all_dirichlet_zero() -> Self {
        Self {
            faces: [Bc::Dirichlet(0.0); 6],
            solid_surface: Bc::Dirichlet(0.0),
        }
    }
}

/// Global mesh description, identical on every rank.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshSpec {
    /// Polynomial order N.
    pub order: usize,
    /// Global element counts per axis.
    pub elems: [usize; 3],
    /// Physical domain lengths per axis.
    pub lengths: [f64; 3],
    /// Periodicity per axis.
    pub periodic: [bool; 3],
    /// Solid mask, one flag per global element (x fastest); `true` = solid.
    pub solid: Vec<bool>,
}

impl MeshSpec {
    /// A plain box with no solids.
    pub fn box_mesh(
        order: usize,
        elems: [usize; 3],
        lengths: [f64; 3],
        periodic: [bool; 3],
    ) -> Self {
        assert!(order >= 1, "polynomial order must be >= 1");
        assert!(elems.iter().all(|&e| e >= 1), "need >= 1 element per axis");
        let n = elems[0] * elems[1] * elems[2];
        Self {
            order,
            elems,
            lengths,
            periodic,
            solid: vec![false; n],
        }
    }

    /// Flat index of a global element coordinate.
    pub fn elem_index(&self, e: [usize; 3]) -> usize {
        e[0] + self.elems[0] * (e[1] + self.elems[1] * e[2])
    }

    /// Is this global element solid?
    pub fn is_solid(&self, e: [usize; 3]) -> bool {
        self.solid[self.elem_index(e)]
    }

    /// Mark every element whose centroid lies inside the sphere as solid.
    pub fn add_solid_sphere(&mut self, center: [f64; 3], radius: f64) {
        let h = self.h();
        for ez in 0..self.elems[2] {
            for ey in 0..self.elems[1] {
                for ex in 0..self.elems[0] {
                    let c = [
                        (ex as f64 + 0.5) * h[0],
                        (ey as f64 + 0.5) * h[1],
                        (ez as f64 + 0.5) * h[2],
                    ];
                    let d2: f64 = (0..3).map(|d| (c[d] - center[d]).powi(2)).sum();
                    if d2 <= radius * radius {
                        let idx = self.elem_index([ex, ey, ez]);
                        self.solid[idx] = true;
                    }
                }
            }
        }
    }

    /// Element sizes per axis.
    pub fn h(&self) -> [f64; 3] {
        [
            self.lengths[0] / self.elems[0] as f64,
            self.lengths[1] / self.elems[1] as f64,
            self.lengths[2] / self.elems[2] as f64,
        ]
    }

    /// Global continuous nodes along `axis` (shared faces counted once;
    /// periodic axes wrap, so no +1).
    pub fn n_nodes_axis(&self, axis: usize) -> usize {
        let n = self.elems[axis] * self.order;
        if self.periodic[axis] {
            n
        } else {
            n + 1
        }
    }

    /// Total global fluid elements.
    pub fn n_fluid_elems(&self) -> usize {
        self.solid.iter().filter(|&&s| !s).count()
    }

    /// Global continuous node id for local node (i,j,k) of element `e`.
    pub fn gid(&self, e: [usize; 3], i: usize, j: usize, k: usize) -> u64 {
        let nn = [
            self.n_nodes_axis(0),
            self.n_nodes_axis(1),
            self.n_nodes_axis(2),
        ];
        let local = [i, j, k];
        let mut g = [0usize; 3];
        for d in 0..3 {
            let raw = e[d] * self.order + local[d];
            g[d] = if self.periodic[d] { raw % nn[d] } else { raw };
        }
        (g[0] + nn[0] * (g[1] + nn[1] * g[2])) as u64
    }
}

/// One rank's slab of the mesh: its fluid elements, geometry, and the
/// reference basis info needed for node coordinates.
#[derive(Debug, Clone)]
pub struct LocalMesh {
    /// Shared global spec.
    pub spec: Arc<MeshSpec>,
    /// This rank.
    pub rank: usize,
    /// Total ranks.
    pub nranks: usize,
    /// Slab range along z: elements with `ez0 <= ez < ez1`.
    pub ez0: usize,
    /// Exclusive slab end.
    pub ez1: usize,
    /// Local fluid elements (global coordinates, x fastest order).
    pub elems: Vec<[usize; 3]>,
    /// Reference GLL nodes (length N+1), cached for coordinates.
    pub ref_nodes: Vec<f64>,
}

impl LocalMesh {
    /// Partition `spec` into `nranks` z-slabs and take slab `rank`.
    ///
    /// # Panics
    /// Panics when there are fewer z-element layers than ranks.
    pub fn new(spec: Arc<MeshSpec>, rank: usize, nranks: usize) -> Self {
        assert!(
            spec.elems[2] >= nranks,
            "slab partition needs elems_z ({}) >= ranks ({nranks})",
            spec.elems[2]
        );
        let ez0 = rank * spec.elems[2] / nranks;
        let ez1 = (rank + 1) * spec.elems[2] / nranks;
        let mut elems = Vec::new();
        for ez in ez0..ez1 {
            for ey in 0..spec.elems[1] {
                for ex in 0..spec.elems[0] {
                    if !spec.is_solid([ex, ey, ez]) {
                        elems.push([ex, ey, ez]);
                    }
                }
            }
        }
        let (ref_nodes, _) = crate::quadrature::gll(spec.order);
        Self {
            spec,
            rank,
            nranks,
            ez0,
            ez1,
            elems,
            ref_nodes,
        }
    }

    /// Field layout for this rank.
    pub fn layout(&self) -> FieldLayout {
        FieldLayout::new(self.spec.order, self.elems.len())
    }

    /// Physical coordinates of local node (i,j,k) in local element `le`.
    pub fn node_coords(&self, le: usize, i: usize, j: usize, k: usize) -> [f64; 3] {
        let e = self.elems[le];
        let h = self.spec.h();
        let local = [i, j, k];
        let mut x = [0.0; 3];
        for d in 0..3 {
            x[d] = (e[d] as f64 + (self.ref_nodes[local[d]] + 1.0) * 0.5) * h[d];
        }
        x
    }

    /// Global node id of a local node.
    pub fn gid(&self, le: usize, i: usize, j: usize, k: usize) -> u64 {
        self.spec.gid(self.elems[le], i, j, k)
    }

    /// Evaluate `f` at every local node into an element-major field.
    pub fn eval_nodal(&self, f: impl Fn([f64; 3]) -> f64) -> Vec<f64> {
        let l = self.layout();
        let mut out = vec![0.0; l.n_nodes()];
        for le in 0..self.elems.len() {
            for k in 0..l.np {
                for j in 0..l.np {
                    for i in 0..l.np {
                        out[l.idx(le, i, j, k)] = f(self.node_coords(le, i, j, k));
                    }
                }
            }
        }
        out
    }

    /// Does any element adjacent to local node (i,j,k) of `le` lie outside
    /// the fluid (i.e. is solid)? Used for no-slip on pebble surfaces.
    pub fn node_touches_solid(&self, le: usize, i: usize, j: usize, k: usize) -> bool {
        let e = self.elems[le];
        let n = self.spec.order;
        let local = [i, j, k];
        // Offsets of elements sharing this node along each axis.
        let mut axis_offsets: [Vec<isize>; 3] = [vec![0], vec![0], vec![0]];
        for d in 0..3 {
            if local[d] == 0 {
                axis_offsets[d].push(-1);
            }
            if local[d] == n {
                axis_offsets[d].push(1);
            }
        }
        for &dz in &axis_offsets[2] {
            for &dy in &axis_offsets[1] {
                for &dx in &axis_offsets[0] {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if let Some(ne) = self.neighbor_elem(e, [dx, dy, dz]) {
                        if self.spec.is_solid(ne) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Neighboring global element coordinate with periodic wrapping;
    /// `None` outside the domain on non-periodic axes.
    pub fn neighbor_elem(&self, e: [usize; 3], offset: [isize; 3]) -> Option<[usize; 3]> {
        let mut out = [0usize; 3];
        for d in 0..3 {
            let ne = e[d] as isize + offset[d];
            let n = self.spec.elems[d] as isize;
            out[d] = if self.spec.periodic[d] {
                (ne.rem_euclid(n)) as usize
            } else if (0..n).contains(&ne) {
                ne as usize
            } else {
                return None;
            };
        }
        Some(out)
    }

    /// Build the Dirichlet mask (1 = free, 0 = constrained) and boundary
    /// value field for one scalar field under `bc`.
    pub fn dirichlet_mask(&self, bc: &BcSet) -> (Vec<f64>, Vec<f64>) {
        let l = self.layout();
        let n = self.spec.order;
        let mut mask = vec![1.0; l.n_nodes()];
        let mut values = vec![0.0; l.n_nodes()];
        for le in 0..self.elems.len() {
            let e = self.elems[le];
            for k in 0..l.np {
                for j in 0..l.np {
                    for i in 0..l.np {
                        let idx = l.idx(le, i, j, k);
                        let local = [i, j, k];
                        // Box faces on non-periodic axes.
                        for d in 0..3 {
                            if self.spec.periodic[d] {
                                continue;
                            }
                            let on_min = e[d] == 0 && local[d] == 0;
                            let on_max = e[d] == self.spec.elems[d] - 1 && local[d] == n;
                            let face = if on_min {
                                Some(2 * d)
                            } else if on_max {
                                Some(2 * d + 1)
                            } else {
                                None
                            };
                            if let Some(f) = face {
                                if let Bc::Dirichlet(v) = bc.faces[f] {
                                    mask[idx] = 0.0;
                                    values[idx] = v;
                                }
                            }
                        }
                        // Pebble surfaces.
                        if let Bc::Dirichlet(v) = bc.solid_surface {
                            if self.node_touches_solid(le, i, j, k) {
                                mask[idx] = 0.0;
                                values[idx] = v;
                            }
                        }
                    }
                }
            }
        }
        (mask, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(order: usize, elems: [usize; 3], periodic: [bool; 3]) -> Arc<MeshSpec> {
        Arc::new(MeshSpec::box_mesh(
            order,
            elems,
            [1.0, 1.0, elems[2] as f64 / elems[0] as f64],
            periodic,
        ))
    }

    #[test]
    fn slab_partition_covers_all_elements_once() {
        let s = spec(2, [2, 3, 8], [false; 3]);
        let mut seen = [0; 2 * 3 * 8];
        for rank in 0..4 {
            let m = LocalMesh::new(Arc::clone(&s), rank, 4);
            assert_eq!(m.ez1 - m.ez0, 2);
            for e in &m.elems {
                seen[s.elem_index(*e)] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn uneven_slabs_still_cover() {
        let s = spec(2, [1, 1, 7], [false; 3]);
        let total: usize = (0..3)
            .map(|r| LocalMesh::new(Arc::clone(&s), r, 3).elems.len())
            .sum();
        assert_eq!(total, 7);
    }

    #[test]
    #[should_panic(expected = "slab partition")]
    fn too_many_ranks_rejected() {
        let s = spec(2, [1, 1, 2], [false; 3]);
        LocalMesh::new(s, 0, 3);
    }

    #[test]
    fn gids_are_shared_across_element_faces() {
        let s = spec(3, [2, 2, 2], [false; 3]);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        // Node (N,j,k) of element (0,·,·) == node (0,j,k) of element (1,·,·).
        let e0 = m.elems.iter().position(|e| *e == [0, 0, 0]).unwrap();
        let e1 = m.elems.iter().position(|e| *e == [1, 0, 0]).unwrap();
        assert_eq!(m.gid(e0, 3, 1, 2), m.gid(e1, 0, 1, 2));
        assert_ne!(m.gid(e0, 2, 1, 2), m.gid(e1, 0, 1, 2));
    }

    #[test]
    fn periodic_axis_wraps_gids() {
        let s = spec(2, [3, 1, 2], [true, false, false]);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        let left = m.elems.iter().position(|e| *e == [0, 0, 0]).unwrap();
        let right = m.elems.iter().position(|e| *e == [2, 0, 0]).unwrap();
        // Right face of the last element wraps to the left face of the first.
        assert_eq!(m.gid(right, 2, 0, 0), m.gid(left, 0, 0, 0));
    }

    #[test]
    fn node_coords_span_the_domain() {
        let s = spec(4, [2, 2, 2], [false; 3]);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        let l = m.layout();
        let mut min = [f64::INFINITY; 3];
        let mut max = [f64::NEG_INFINITY; 3];
        for le in 0..m.elems.len() {
            for k in 0..l.np {
                for j in 0..l.np {
                    for i in 0..l.np {
                        let x = m.node_coords(le, i, j, k);
                        for d in 0..3 {
                            min[d] = min[d].min(x[d]);
                            max[d] = max[d].max(x[d]);
                        }
                    }
                }
            }
        }
        for d in 0..3 {
            assert!((min[d]).abs() < 1e-14);
            assert!((max[d] - s.lengths[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn solid_sphere_masks_elements_and_excludes_them() {
        let mut raw = MeshSpec::box_mesh(2, [4, 4, 4], [1.0, 1.0, 1.0], [false; 3]);
        raw.add_solid_sphere([0.5, 0.5, 0.5], 0.3);
        assert!(raw.is_solid([1, 1, 1]) || raw.is_solid([2, 2, 2]));
        let n_solid = raw.solid.iter().filter(|&&s| s).count();
        assert!(n_solid > 0 && n_solid < 64);
        let s = Arc::new(raw);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        assert_eq!(m.elems.len(), 64 - n_solid);
        assert_eq!(s.n_fluid_elems(), 64 - n_solid);
    }

    #[test]
    fn nodes_adjacent_to_solid_are_detected() {
        let mut raw = MeshSpec::box_mesh(2, [3, 3, 3], [1.0, 1.0, 1.0], [false; 3]);
        let center = raw.elem_index([1, 1, 1]);
        raw.solid[center] = true;
        let m = LocalMesh::new(Arc::new(raw), 0, 1);
        // Element (0,1,1) is left of the solid: its i=N face touches it.
        let le = m.elems.iter().position(|e| *e == [0, 1, 1]).unwrap();
        assert!(m.node_touches_solid(le, 2, 1, 1));
        assert!(!m.node_touches_solid(le, 0, 1, 1));
    }

    #[test]
    fn dirichlet_mask_marks_faces_and_values() {
        let s = spec(2, [2, 2, 2], [false; 3]);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        let bc = BcSet {
            faces: [
                Bc::Neumann,
                Bc::Neumann,
                Bc::Neumann,
                Bc::Neumann,
                Bc::Dirichlet(3.0), // z-min (inflow)
                Bc::Neumann,
            ],
            solid_surface: Bc::Neumann,
        };
        let (mask, values) = m.dirichlet_mask(&bc);
        let l = m.layout();
        let mut constrained = 0;
        for le in 0..m.elems.len() {
            for k in 0..l.np {
                for j in 0..l.np {
                    for i in 0..l.np {
                        let idx = l.idx(le, i, j, k);
                        let z = m.node_coords(le, i, j, k)[2];
                        if z.abs() < 1e-14 {
                            assert_eq!(mask[idx], 0.0);
                            assert_eq!(values[idx], 3.0);
                            constrained += 1;
                        } else {
                            assert_eq!(mask[idx], 1.0, "le={le} i={i} j={j} k={k}");
                        }
                    }
                }
            }
        }
        // 4 bottom elements × 3×3 bottom-face nodes.
        assert_eq!(constrained, 4 * 9);
    }

    #[test]
    fn periodic_axis_has_no_face_dirichlet() {
        let s = spec(2, [2, 2, 2], [true, true, true]);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        let (mask, _) = m.dirichlet_mask(&BcSet::all_dirichlet_zero());
        assert!(mask.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn eval_nodal_matches_coordinates() {
        let s = spec(3, [2, 1, 2], [false; 3]);
        let m = LocalMesh::new(Arc::clone(&s), 0, 1);
        let f = m.eval_nodal(|x| x[0] + 10.0 * x[2]);
        let l = m.layout();
        let le = 0;
        let x = m.node_coords(le, 1, 2, 3);
        assert!((f[l.idx(le, 1, 2, 3)] - (x[0] + 10.0 * x[2])).abs() < 1e-13);
    }
}
