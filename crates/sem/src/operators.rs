//! Tensor-product SEM operators on rectilinear elements.
//!
//! All kernels are matrix-free sweeps of the 1-D derivative matrix along
//! each tensor direction — the structure libParanumal/NekRS optimize on
//! GPUs. Every public operator charges the rank's virtual clock with its
//! flop/byte roofline cost, so CG iteration counts translate directly into
//! virtual solver time.
//!
//! Geometry is rectilinear (constant diagonal Jacobian per element), which
//! is exact for the box/pebble-mask meshes in [`crate::mesh`].

use crate::basis::Basis1d;
use crate::field::FieldLayout;
use crate::mesh::LocalMesh;
use crate::workspace::{BlockArena, Workspace};
use commsim::Comm;
use rayon::pool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Raw-pointer wrapper so per-block disjoint output ranges can be handed
/// to pool workers (mirrors the shim prelude's internal pattern).
struct SendPtr(*mut f64);
// SAFETY: each block derives a disjoint subslice; no two jobs alias.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}
impl SendPtr {
    fn get(&self) -> *mut f64 {
        self.0
    }
}

/// Block-dispatch accounting: how many pool dispatches an operator
/// context has issued and how many element-slots of slack (idle capacity
/// in the largest block beyond a perfectly even split) they carried.
/// Fed to the telemetry bus per solver phase by `FlowSolver::step`.
#[derive(Debug, Default)]
pub struct DispatchStats {
    dispatches: AtomicU64,
    slack_elems: AtomicU64,
}

impl Clone for DispatchStats {
    fn clone(&self) -> Self {
        Self {
            dispatches: AtomicU64::new(self.dispatches.load(Ordering::Relaxed)),
            slack_elems: AtomicU64::new(self.slack_elems.load(Ordering::Relaxed)),
        }
    }
}

/// Precomputed operator context for one rank's mesh.
#[derive(Debug, Clone)]
pub struct Ops {
    /// 1-D reference basis.
    pub basis: Basis1d,
    /// Field layout.
    pub layout: FieldLayout,
    /// Element sizes.
    pub h: [f64; 3],
    /// Reference→physical derivative scale 2/h per axis.
    pub scale: [f64; 3],
    /// Jacobian determinant hx·hy·hz/8 (constant per element).
    pub jac: f64,
    /// Tensor quadrature weights w_i w_j w_k per element-local node.
    pub w3: Vec<f64>,
    /// 1-D stiffness diagonal `K1[i] = Σ_m w_m D[m][i]²`, cached so
    /// `stiffness_diag` never recomputes it.
    k1: Vec<f64>,
    /// Transposed derivative matrix `Dᵀ[m][i] = D[i][m]` — the layout the
    /// axis-0 SIMD kernels consume so their reads stay unit-stride.
    dt: Vec<f64>,
    stats: DispatchStats,
}

impl Ops {
    /// Build operators for `mesh`.
    pub fn new(mesh: &LocalMesh) -> Self {
        let basis = Basis1d::new(mesh.spec.order);
        let layout = mesh.layout();
        let h = mesh.spec.h();
        let np = basis.np();
        let mut w3 = vec![0.0; np * np * np];
        for k in 0..np {
            for j in 0..np {
                for i in 0..np {
                    w3[(k * np + j) * np + i] =
                        basis.weights[i] * basis.weights[j] * basis.weights[k];
                }
            }
        }
        let mut k1 = vec![0.0; np];
        for i in 0..np {
            for m in 0..np {
                let d = basis.deriv[m * np + i];
                k1[i] += basis.weights[m] * d * d;
            }
        }
        let dt = transpose_op(&basis.deriv, np);
        Self {
            basis,
            layout,
            scale: [2.0 / h[0], 2.0 / h[1], 2.0 / h[2]],
            jac: h[0] * h[1] * h[2] / 8.0,
            h,
            w3,
            k1,
            dt,
            stats: DispatchStats::default(),
        }
    }

    fn np(&self) -> usize {
        self.basis.np()
    }

    /// Record one block dispatch over `ne` elements: slack is how many
    /// element-slots the largest block holds beyond `ne / n_blocks`
    /// rounded down, summed over blocks — 0 when the split is perfectly
    /// even, up to `n_blocks - 1` otherwise.
    fn note_dispatch(&self, ne: usize) {
        let nb = pool::n_blocks(ne);
        let rem = ne % nb.max(1);
        let slack = if rem > 0 { (nb - rem) as u64 } else { 0 };
        self.stats.dispatches.fetch_add(1, Ordering::Relaxed);
        self.stats.slack_elems.fetch_add(slack, Ordering::Relaxed);
    }

    /// Drain the dispatch counters: `(dispatches, slack_elems)` since the
    /// last call. The solver reads this after each phase to feed the
    /// per-phase block-imbalance telemetry.
    pub fn take_dispatch_stats(&self) -> (u64, u64) {
        (
            self.stats.dispatches.swap(0, Ordering::Relaxed),
            self.stats.slack_elems.swap(0, Ordering::Relaxed),
        )
    }

    /// Run `f(out_block, u_block)` over per-thread contiguous element
    /// blocks — the one dispatch every element-local operator goes
    /// through. Elements are partitioned once per call (contiguous
    /// ranges, sizes differing by at most one), so each worker sweeps a
    /// cache-friendly run of whole elements instead of interleaving
    /// per-element chunks with other threads.
    fn zip_blocks(&self, out: &mut [f64], u: &[f64], f: impl Fn(&mut [f64], &[f64]) + Sync) {
        let npe = self.layout.nodes_per_elem();
        let ne = self.layout.n_elems;
        debug_assert_eq!(out.len(), ne * npe);
        debug_assert_eq!(u.len(), ne * npe);
        let base = SendPtr(out.as_mut_ptr());
        pool::run_partitioned(ne, |_b, e0, e1| {
            // SAFETY: blocks are disjoint element ranges of `out`.
            let ob =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(e0 * npe), (e1 - e0) * npe) };
            f(ob, &u[e0 * npe..e1 * npe]);
        });
        self.note_dispatch(ne);
    }

    /// Flop/byte cost of one derivative sweep over all local elements.
    fn deriv_cost(&self) -> (f64, f64) {
        let np = self.np() as f64;
        let ne = self.layout.n_elems as f64;
        // (N+1)³ outputs × (N+1) MACs each, 2 flops per MAC.
        let flops = ne * np * np * np * np * 2.0;
        let bytes = 2.0 * self.layout.n_nodes() as f64 * 8.0;
        (flops, bytes)
    }

    fn charge_derivs(&self, comm: &mut Comm, sweeps: f64) {
        let (f, b) = self.deriv_cost();
        comm.compute_gpu(f * sweeps, b * sweeps);
    }

    fn charge_pointwise(&self, comm: &mut Comm, flops_per_node: f64, arrays: f64) {
        let n = self.layout.n_nodes() as f64;
        comm.compute_gpu(n * flops_per_node, n * 8.0 * arrays);
    }

    /// Physical derivative along `axis` (0 = x, 1 = y, 2 = z), collocation
    /// form: `out = (2/h_axis) D_axis u`.
    pub fn deriv(&self, comm: &mut Comm, u: &[f64], axis: usize, out: &mut [f64]) {
        self.charge_derivs(comm, 1.0);
        self.deriv_nocost(u, axis, out);
    }

    fn deriv_nocost(&self, u: &[f64], axis: usize, out: &mut [f64]) {
        let np = self.np();
        let npe = self.layout.nodes_per_elem();
        let (d, dt) = (&self.basis.deriv, &self.dt);
        let s = self.scale[axis];
        self.zip_blocks(out, u, |ob, ub| {
            for (oe, ue) in ob.chunks_exact_mut(npe).zip(ub.chunks_exact(npe)) {
                deriv_elem(ue, d, dt, np, axis, s, oe);
            }
        });
    }

    /// Gradient: three derivative sweeps.
    pub fn grad(&self, comm: &mut Comm, u: &[f64], gx: &mut [f64], gy: &mut [f64], gz: &mut [f64]) {
        self.charge_derivs(comm, 3.0);
        self.deriv_nocost(u, 0, gx);
        self.deriv_nocost(u, 1, gy);
        self.deriv_nocost(u, 2, gz);
    }

    /// Divergence of a vector field (collocation): `out = ∂x ux + ∂y uy + ∂z uz`.
    pub fn div(
        &self,
        comm: &mut Comm,
        ux: &[f64],
        uy: &[f64],
        uz: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.charge_derivs(comm, 3.0);
        self.deriv_nocost(ux, 0, out);
        self.deriv_nocost(uy, 1, scratch);
        add_assign(out, scratch);
        self.deriv_nocost(uz, 2, scratch);
        add_assign(out, scratch);
    }

    /// Lumped (diagonal) mass application: `out = J w ∘ u`.
    pub fn mass_apply(&self, comm: &mut Comm, u: &[f64], out: &mut [f64]) {
        self.charge_pointwise(comm, 1.0, 3.0);
        self.mass_apply_nocost(u, out);
    }

    fn mass_apply_nocost(&self, u: &[f64], out: &mut [f64]) {
        let npe = self.layout.nodes_per_elem();
        let jac = self.jac;
        let w3 = &self.w3;
        self.zip_blocks(out, u, |ob, ub| {
            for (oe, ue) in ob.chunks_exact_mut(npe).zip(ub.chunks_exact(npe)) {
                for ((o, &v), &w) in oe.iter_mut().zip(ue).zip(w3) {
                    *o = jac * w * v;
                }
            }
        });
    }

    /// The (unassembled) diagonal mass vector J·w per node.
    pub fn mass_diag(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.layout.n_nodes()];
        let ones = vec![1.0; self.layout.n_nodes()];
        self.mass_apply_nocost(&ones, &mut out);
        out
    }

    /// Weak Laplacian (stiffness) application:
    /// `out = Σ_d s_d² J D_dᵀ (w ∘ D_d u)` — symmetric positive
    /// semi-definite before boundary conditions.
    ///
    /// The operator chain (deriv → weighting → transpose-deriv, all three
    /// axes) is fused per element: each element is loaded once, swept
    /// through the whole chain cache-resident, and written once — instead
    /// of six full-field passes. `scratch` is only used element-wise
    /// (each block touches its own elements' region), so the signature
    /// and results are unchanged from the unfused version.
    pub fn stiffness_apply(
        &self,
        comm: &mut Comm,
        u: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) {
        // 6 derivative sweeps + pointwise weights.
        self.charge_derivs(comm, 6.0);
        self.charge_pointwise(comm, 3.0, 3.0);
        let npe = self.layout.nodes_per_elem();
        let ne = self.layout.n_elems;
        if ne == 0 {
            return;
        }
        let (d, dt) = (&self.basis.deriv, &self.dt);
        let (np, scale, jac, w3) = (self.np(), self.scale, self.jac, &self.w3);
        let out_p = SendPtr(out.as_mut_ptr());
        let scr_p = SendPtr(scratch.as_mut_ptr());
        pool::run_partitioned(ne, |_b, e0, e1| {
            for e in e0..e1 {
                // SAFETY: per-block element ranges are disjoint in both
                // `out` and `scratch`.
                let oe = unsafe { std::slice::from_raw_parts_mut(out_p.get().add(e * npe), npe) };
                let se = unsafe { std::slice::from_raw_parts_mut(scr_p.get().add(e * npe), npe) };
                let ue = &u[e * npe..(e + 1) * npe];
                stiffness_elem(ue, d, dt, np, scale, jac, w3, se, oe);
            }
        });
        self.note_dispatch(ne);
    }

    /// [`Self::stiffness_apply`] with per-worker scratch pencils from a
    /// [`BlockArena`] instead of a field-sized scratch buffer: each block
    /// reuses one element-sized pencil for all its elements, so the
    /// working set per element stays at three pencils regardless of mesh
    /// size. Bitwise identical to `stiffness_apply`.
    pub fn stiffness_apply_blocked(
        &self,
        comm: &mut Comm,
        u: &[f64],
        out: &mut [f64],
        arena: &mut BlockArena,
    ) {
        self.charge_derivs(comm, 6.0);
        self.charge_pointwise(comm, 3.0, 3.0);
        self.stiffness_arena_blocks(u, out, arena, None);
    }

    /// Fused Helmholtz application `out = coeff·A u + h0·(M ∘ u)` — the
    /// viscous/temperature CG operator — with the diagonal-mass term
    /// folded into the same per-element sweep so `u` is read once.
    /// Charges match the unfused `stiffness_apply` (the pointwise post
    /// pass was never charged separately).
    #[allow(clippy::too_many_arguments)]
    pub fn helmholtz_apply_blocked(
        &self,
        comm: &mut Comm,
        coeff: f64,
        h0: f64,
        mass_diag: &[f64],
        u: &[f64],
        out: &mut [f64],
        arena: &mut BlockArena,
    ) {
        self.charge_derivs(comm, 6.0);
        self.charge_pointwise(comm, 3.0, 3.0);
        self.stiffness_arena_blocks(u, out, arena, Some((coeff, h0, mass_diag)));
    }

    fn stiffness_arena_blocks(
        &self,
        u: &[f64],
        out: &mut [f64],
        arena: &mut BlockArena,
        post: Option<(f64, f64, &[f64])>,
    ) {
        let npe = self.layout.nodes_per_elem();
        let ne = self.layout.n_elems;
        if ne == 0 {
            return;
        }
        arena.ensure(pool::n_blocks(ne), npe);
        let slots = arena.slots();
        let (d, dt) = (&self.basis.deriv, &self.dt);
        let (np, scale, jac, w3) = (self.np(), self.scale, self.jac, &self.w3);
        let out_p = SendPtr(out.as_mut_ptr());
        pool::run_partitioned(ne, |b, e0, e1| {
            // SAFETY: one slot per block index; run_partitioned gives each
            // job a unique `b`.
            let se = unsafe { slots.slot(b) };
            for e in e0..e1 {
                // SAFETY: per-block element ranges of `out` are disjoint.
                let oe = unsafe { std::slice::from_raw_parts_mut(out_p.get().add(e * npe), npe) };
                let ue = &u[e * npe..(e + 1) * npe];
                stiffness_elem(ue, d, dt, np, scale, jac, w3, se, oe);
                if let Some((coeff, h0, mass)) = post {
                    let me = &mass[e * npe..(e + 1) * npe];
                    for i in 0..npe {
                        oe[i] = coeff * oe[i] + h0 * me[i] * ue[i];
                    }
                }
            }
        });
        self.note_dispatch(ne);
    }

    /// Diagonal of the unassembled stiffness operator (Jacobi
    /// preconditioner source). Assemble with gather-scatter before use.
    pub fn stiffness_diag(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.layout.n_nodes()];
        self.stiffness_diag_into(&mut out);
        out
    }

    /// Allocation-free form of [`Self::stiffness_diag`]: fill `out`
    /// (length `n_nodes`) from the cached 1-D diagonal.
    pub fn stiffness_diag_into(&self, out: &mut [f64]) {
        let np = self.np();
        let k1 = &self.k1;
        let w = &self.basis.weights;
        for e in 0..self.layout.n_elems {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let v = self.jac
                            * (self.scale[0] * self.scale[0] * k1[i] * w[j] * w[k]
                                + self.scale[1] * self.scale[1] * w[i] * k1[j] * w[k]
                                + self.scale[2] * self.scale[2] * w[i] * w[j] * k1[k]);
                        out[self.layout.idx(e, i, j, k)] = v;
                    }
                }
            }
        }
    }

    /// Apply a 1-D operator matrix `m` (row-major (N+1)², with `mt` its
    /// transpose) along all three tensor directions of `u` in place — the
    /// application pattern of the modal filter, `u ← (F⊗F⊗F)u`. The
    /// transpose feeds the axis-0 SIMD kernel's unit-stride reads; build
    /// it once with [`transpose_op`].
    pub fn apply_tensor_op(
        &self,
        comm: &mut Comm,
        m: &[f64],
        mt: &[f64],
        u: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.charge_derivs(comm, 3.0);
        let np = self.np();
        assert_eq!(m.len(), np * np, "operator must be (N+1)²");
        assert_eq!(mt.len(), np * np, "transpose must be (N+1)²");
        // Reuse the derivative sweeps with scale 1 by swapping buffers.
        let npe = self.layout.nodes_per_elem();
        for axis in 0..3 {
            scratch.copy_from_slice(u);
            self.zip_blocks(u, &*scratch, |ob, ub| {
                for (oe, ue) in ob.chunks_exact_mut(npe).zip(ub.chunks_exact(npe)) {
                    deriv_elem(ue, m, mt, np, axis, 1.0, oe);
                }
            });
        }
    }

    /// Curl of a vector field (collocation): `out = ∇×u`.
    ///
    /// Uses six derivative sweeps; callers typically gather-scatter-average
    /// the result to restore continuity.
    #[allow(clippy::too_many_arguments)]
    pub fn curl(
        &self,
        comm: &mut Comm,
        ux: &[f64],
        uy: &[f64],
        uz: &[f64],
        wx: &mut [f64],
        wy: &mut [f64],
        wz: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.charge_derivs(comm, 6.0);
        self.charge_pointwise(comm, 3.0, 6.0);
        // ω_x = ∂y uz − ∂z uy
        self.deriv_nocost(uz, 1, wx);
        self.deriv_nocost(uy, 2, scratch);
        for (o, &s) in wx.iter_mut().zip(scratch.iter()) {
            *o -= s;
        }
        // ω_y = ∂z ux − ∂x uz
        self.deriv_nocost(ux, 2, wy);
        self.deriv_nocost(uz, 0, scratch);
        for (o, &s) in wy.iter_mut().zip(scratch.iter()) {
            *o -= s;
        }
        // ω_z = ∂x uy − ∂y ux
        self.deriv_nocost(uy, 0, wz);
        self.deriv_nocost(ux, 1, scratch);
        for (o, &s) in wz.iter_mut().zip(scratch.iter()) {
            *o -= s;
        }
    }

    /// Q-criterion of a velocity field: `Q = ½(‖Ω‖² − ‖S‖²)` where S and Ω
    /// are the symmetric/antisymmetric parts of ∇u. Positive Q marks
    /// rotation-dominated (vortex-core) regions — the standard CFD
    /// visualization quantity.
    pub fn q_criterion(
        &self,
        comm: &mut Comm,
        ux: &[f64],
        uy: &[f64],
        uz: &[f64],
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        let n = self.layout.n_nodes();
        // Full velocity-gradient tensor: nine derivative sweeps.
        self.charge_derivs(comm, 9.0);
        self.charge_pointwise(comm, 20.0, 10.0);
        // Nine gradient components from the workspace instead of a fresh
        // `vec![vec![..]; 9]` per visualization step.
        let mut grad = [(); 9].map(|_| ws.take_uninit());
        for (c, u) in [ux, uy, uz].into_iter().enumerate() {
            for axis in 0..3 {
                self.deriv_nocost(u, axis, &mut grad[c * 3 + axis]);
            }
        }
        for i in 0..n {
            let g = |r: usize, c: usize| grad[r * 3 + c][i];
            let mut s2 = 0.0;
            let mut o2 = 0.0;
            for r in 0..3 {
                for c in 0..3 {
                    let s = 0.5 * (g(r, c) + g(c, r));
                    let o = 0.5 * (g(r, c) - g(c, r));
                    s2 += s * s;
                    o2 += o * o;
                }
            }
            out[i] = 0.5 * (o2 - s2);
        }
        for b in grad {
            ws.put(b);
        }
    }

    /// Advection term `out = -(c·∇)u` in collocation form.
    #[allow(clippy::too_many_arguments)]
    pub fn advect(
        &self,
        comm: &mut Comm,
        cx: &[f64],
        cy: &[f64],
        cz: &[f64],
        u: &[f64],
        out: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.charge_derivs(comm, 3.0);
        self.charge_pointwise(comm, 6.0, 5.0);
        self.deriv_nocost(u, 0, out);
        for (o, &c) in out.iter_mut().zip(cx) {
            *o *= -c;
        }
        self.deriv_nocost(u, 1, scratch);
        for (o, (&s, &c)) in out.iter_mut().zip(scratch.iter().zip(cy)) {
            *o -= s * c;
        }
        self.deriv_nocost(u, 2, scratch);
        for (o, (&s, &c)) in out.iter_mut().zip(scratch.iter().zip(cz)) {
            *o -= s * c;
        }
    }
}

/// `out += a` elementwise.
pub fn add_assign(out: &mut [f64], a: &[f64]) {
    for (o, &v) in out.iter_mut().zip(a) {
        *o += v;
    }
}

/// `out = a + s·b` elementwise (allocation-free AXPY helper).
pub fn axpy(out: &mut [f64], a: &[f64], s: f64, b: &[f64]) {
    for ((o, &av), &bv) in out.iter_mut().zip(a).zip(b) {
        *o = av + s * bv;
    }
}

/// Transpose of a row-major (N+1)² operator matrix — the layout the
/// axis-0 SIMD kernels consume (see [`Ops::apply_tensor_op`]).
pub fn transpose_op(m: &[f64], np: usize) -> Vec<f64> {
    assert_eq!(m.len(), np * np, "operator must be (N+1)²");
    let mut mt = vec![0.0; np * np];
    for i in 0..np {
        for j in 0..np {
            mt[j * np + i] = m[i * np + j];
        }
    }
    mt
}

/// Fused per-element weak Laplacian: `oe = Σ_axis s² J Dᵀ(w ∘ D ue)`.
/// The element's derivative lives in `se` (one pencil, cache-resident)
/// across all three axes — identical accumulation order to three
/// full-field sweeps, so results are bitwise unchanged.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn stiffness_elem(
    ue: &[f64],
    d: &[f64],
    dt: &[f64],
    np: usize,
    scale: [f64; 3],
    jac: f64,
    w3: &[f64],
    se: &mut [f64],
    oe: &mut [f64],
) {
    for v in oe.iter_mut() {
        *v = 0.0;
    }
    for (axis, &s) in scale.iter().enumerate() {
        deriv_elem(ue, d, dt, np, axis, s, se);
        // se ← s J w ∘ se (one factor of s comes from each D).
        for (v, &w) in se.iter_mut().zip(w3) {
            *v *= jac * w;
        }
        deriv_t_elem_accum(se, d, np, axis, s, oe);
    }
}

// ----------------------------------------------------------------------
// Element-local derivative kernels.
//
// Two tiers share one dispatch: generic bodies (runtime `np`, m-innermost
// — the original reference kernels) and const-generic SIMD bodies for
// the production orders (N = 2..7 ⇒ np = 3..8). The SIMD forms put the
// unit-stride `i` index innermost with the operator coefficient
// broadcast as a scalar and accumulate into a stack pencil `[f64; NP]`,
// so LLVM autovectorizes the inner loop with no gathers and no aliasing;
// axis 0 consumes the *transposed* matrix `dt` to keep its reads
// unit-stride too. Every variant accumulates each output's m-sum in the
// same ascending-m order into an explicitly zeroed accumulator, so
// results are bitwise identical regardless of dispatch path (verified by
// `simd_kernels_match_generic_bitwise_at_all_fixed_orders`).
// ----------------------------------------------------------------------

#[inline(always)]
fn deriv_elem_body(u: &[f64], d: &[f64], np: usize, axis: usize, s: f64, out: &mut [f64]) {
    match axis {
        0 => {
            for k in 0..np {
                for j in 0..np {
                    let row = (k * np + j) * np;
                    for i in 0..np {
                        let mut acc = 0.0;
                        for m in 0..np {
                            acc += d[i * np + m] * u[row + m];
                        }
                        out[row + i] = s * acc;
                    }
                }
            }
        }
        1 => {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let mut acc = 0.0;
                        for m in 0..np {
                            acc += d[j * np + m] * u[(k * np + m) * np + i];
                        }
                        out[(k * np + j) * np + i] = s * acc;
                    }
                }
            }
        }
        2 => {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let mut acc = 0.0;
                        for m in 0..np {
                            acc += d[k * np + m] * u[(m * np + j) * np + i];
                        }
                        out[(k * np + j) * np + i] = s * acc;
                    }
                }
            }
        }
        _ => unreachable!("axis must be 0..3"),
    }
}

#[inline(always)]
fn deriv_t_elem_body(u: &[f64], d: &[f64], np: usize, axis: usize, s: f64, out: &mut [f64]) {
    match axis {
        0 => {
            for k in 0..np {
                for j in 0..np {
                    let row = (k * np + j) * np;
                    for i in 0..np {
                        let mut acc = 0.0;
                        for m in 0..np {
                            acc += d[m * np + i] * u[row + m];
                        }
                        out[row + i] += s * acc;
                    }
                }
            }
        }
        1 => {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let mut acc = 0.0;
                        for m in 0..np {
                            acc += d[m * np + j] * u[(k * np + m) * np + i];
                        }
                        out[(k * np + j) * np + i] += s * acc;
                    }
                }
            }
        }
        2 => {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        let mut acc = 0.0;
                        for m in 0..np {
                            acc += d[m * np + k] * u[(m * np + j) * np + i];
                        }
                        out[(k * np + j) * np + i] += s * acc;
                    }
                }
            }
        }
        _ => unreachable!("axis must be 0..3"),
    }
}

fn deriv_elem_simd<const NP: usize>(
    u: &[f64],
    d: &[f64],
    dt: &[f64],
    axis: usize,
    s: f64,
    out: &mut [f64],
) {
    match axis {
        0 => {
            for p in 0..NP * NP {
                let row = p * NP;
                let mut acc = [0.0; NP];
                for m in 0..NP {
                    let um = u[row + m];
                    let dr = &dt[m * NP..m * NP + NP];
                    for i in 0..NP {
                        acc[i] += dr[i] * um;
                    }
                }
                for i in 0..NP {
                    out[row + i] = s * acc[i];
                }
            }
        }
        1 => {
            for k in 0..NP {
                for j in 0..NP {
                    let mut acc = [0.0; NP];
                    for m in 0..NP {
                        let c = d[j * NP + m];
                        let base = (k * NP + m) * NP;
                        let ur = &u[base..base + NP];
                        for i in 0..NP {
                            acc[i] += c * ur[i];
                        }
                    }
                    let row = (k * NP + j) * NP;
                    for i in 0..NP {
                        out[row + i] = s * acc[i];
                    }
                }
            }
        }
        2 => {
            for k in 0..NP {
                for j in 0..NP {
                    let mut acc = [0.0; NP];
                    for m in 0..NP {
                        let c = d[k * NP + m];
                        let base = (m * NP + j) * NP;
                        let ur = &u[base..base + NP];
                        for i in 0..NP {
                            acc[i] += c * ur[i];
                        }
                    }
                    let row = (k * NP + j) * NP;
                    for i in 0..NP {
                        out[row + i] = s * acc[i];
                    }
                }
            }
        }
        _ => unreachable!("axis must be 0..3"),
    }
}

fn deriv_t_elem_simd<const NP: usize>(u: &[f64], d: &[f64], axis: usize, s: f64, out: &mut [f64]) {
    match axis {
        0 => {
            // Dᵀ along x already reads `d` column-major in the generic
            // body — which is row-major in `d` itself here, so no
            // transposed copy is needed.
            for p in 0..NP * NP {
                let row = p * NP;
                let mut acc = [0.0; NP];
                for m in 0..NP {
                    let um = u[row + m];
                    let dr = &d[m * NP..m * NP + NP];
                    for i in 0..NP {
                        acc[i] += dr[i] * um;
                    }
                }
                for i in 0..NP {
                    out[row + i] += s * acc[i];
                }
            }
        }
        1 => {
            for k in 0..NP {
                for j in 0..NP {
                    let mut acc = [0.0; NP];
                    for m in 0..NP {
                        let c = d[m * NP + j];
                        let base = (k * NP + m) * NP;
                        let ur = &u[base..base + NP];
                        for i in 0..NP {
                            acc[i] += c * ur[i];
                        }
                    }
                    let row = (k * NP + j) * NP;
                    for i in 0..NP {
                        out[row + i] += s * acc[i];
                    }
                }
            }
        }
        2 => {
            for k in 0..NP {
                for j in 0..NP {
                    let mut acc = [0.0; NP];
                    for m in 0..NP {
                        let c = d[m * NP + k];
                        let base = (m * NP + j) * NP;
                        let ur = &u[base..base + NP];
                        for i in 0..NP {
                            acc[i] += c * ur[i];
                        }
                    }
                    let row = (k * NP + j) * NP;
                    for i in 0..NP {
                        out[row + i] += s * acc[i];
                    }
                }
            }
        }
        _ => unreachable!("axis must be 0..3"),
    }
}

fn deriv_elem(u: &[f64], d: &[f64], dt: &[f64], np: usize, axis: usize, s: f64, out: &mut [f64]) {
    // Monomorphized SIMD paths for the production polynomial orders
    // (N = 2..7 ⇒ np = 3..8); anything else takes the generic body.
    match np {
        3 => deriv_elem_simd::<3>(u, d, dt, axis, s, out),
        4 => deriv_elem_simd::<4>(u, d, dt, axis, s, out),
        5 => deriv_elem_simd::<5>(u, d, dt, axis, s, out),
        6 => deriv_elem_simd::<6>(u, d, dt, axis, s, out),
        7 => deriv_elem_simd::<7>(u, d, dt, axis, s, out),
        8 => deriv_elem_simd::<8>(u, d, dt, axis, s, out),
        _ => deriv_elem_body(u, d, np, axis, s, out),
    }
}

fn deriv_t_elem_accum(u: &[f64], d: &[f64], np: usize, axis: usize, s: f64, out: &mut [f64]) {
    match np {
        3 => deriv_t_elem_simd::<3>(u, d, axis, s, out),
        4 => deriv_t_elem_simd::<4>(u, d, axis, s, out),
        5 => deriv_t_elem_simd::<5>(u, d, axis, s, out),
        6 => deriv_t_elem_simd::<6>(u, d, axis, s, out),
        7 => deriv_t_elem_simd::<7>(u, d, axis, s, out),
        8 => deriv_t_elem_simd::<8>(u, d, axis, s, out),
        _ => deriv_t_elem_body(u, d, np, axis, s, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gs::GatherScatter;
    use crate::mesh::MeshSpec;
    use commsim::{run_ranks, MachineModel, ReduceOp};
    use std::sync::Arc;

    fn single_rank_mesh(order: usize, elems: [usize; 3]) -> LocalMesh {
        let spec = Arc::new(MeshSpec::box_mesh(
            order,
            elems,
            [1.0, 1.3, 0.9],
            [false; 3],
        ));
        LocalMesh::new(spec, 0, 1)
    }

    fn on_one_rank<R: Send + 'static>(f: impl Fn(&mut Comm) -> R + Send + Sync + 'static) -> R {
        run_ranks(1, MachineModel::test_tiny(), f).remove(0)
    }

    #[test]
    fn deriv_is_exact_for_linear_fields() {
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(4, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let u = mesh.eval_nodal(|x| 2.0 * x[0] - 3.0 * x[1] + 0.5 * x[2]);
            let mut out = vec![0.0; u.len()];
            let mut max_err: f64 = 0.0;
            for (axis, exact) in [(0usize, 2.0), (1, -3.0), (2, 0.5)] {
                ops.deriv(comm, &u, axis, &mut out);
                for &v in &out {
                    max_err = max_err.max((v - exact).abs());
                }
            }
            max_err
        });
        assert!(err < 1e-10, "{err}");
    }

    #[test]
    fn deriv_is_spectrally_accurate_for_sin() {
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(7, [2, 1, 1]);
            let ops = Ops::new(&mesh);
            let u = mesh.eval_nodal(|x| (2.0 * x[0]).sin());
            let mut out = vec![0.0; u.len()];
            ops.deriv(comm, &u, 0, &mut out);
            let exact = mesh.eval_nodal(|x| 2.0 * (2.0 * x[0]).cos());
            out.iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        });
        assert!(err < 5e-7, "{err}");
    }

    #[test]
    fn mass_integrates_volume() {
        let total = on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [2, 3, 2]);
            let ops = Ops::new(&mesh);
            let ones = vec![1.0; mesh.layout().n_nodes()];
            let mut mu = vec![0.0; ones.len()];
            ops.mass_apply(comm, &ones, &mut mu);
            mu.iter().sum::<f64>()
        });
        // Volume = 1.0 × 1.3 × 0.9.
        assert!((total - 1.0 * 1.3 * 0.9).abs() < 1e-12, "{total}");
    }

    #[test]
    fn stiffness_is_symmetric_and_kills_constants() {
        let (asym, const_norm) = on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let mut scratch = vec![0.0; n];
            // A·1 must vanish.
            let ones = vec![1.0; n];
            let mut a1 = vec![0.0; n];
            ops.stiffness_apply(comm, &ones, &mut a1, &mut scratch);
            let const_norm = a1.iter().map(|v| v.abs()).fold(0.0, f64::max);
            // Symmetry: ⟨Au, v⟩ = ⟨u, Av⟩ for two deterministic fields.
            let u = mesh.eval_nodal(|x| (3.0 * x[0] + x[1]).sin());
            let v = mesh.eval_nodal(|x| (x[1] * x[2] * 5.0).cos());
            let mut au = vec![0.0; n];
            let mut av = vec![0.0; n];
            ops.stiffness_apply(comm, &u, &mut au, &mut scratch);
            ops.stiffness_apply(comm, &v, &mut av, &mut scratch);
            let uav: f64 = u.iter().zip(&av).map(|(a, b)| a * b).sum();
            let vau: f64 = v.iter().zip(&au).map(|(a, b)| a * b).sum();
            ((uav - vau).abs(), const_norm)
        });
        assert!(const_norm < 1e-9, "A·1 = {const_norm}");
        assert!(asym < 1e-9 * 100.0, "asymmetry {asym}");
    }

    #[test]
    fn stiffness_matches_dirichlet_energy_of_linear_field() {
        // For u = x on [0,1]³-ish box, ⟨Au, u⟩ = ∫|∇u|² = volume.
        let energy = on_one_rank(|comm| {
            let mesh = single_rank_mesh(4, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let gs = GatherScatter::new(&mesh, comm);
            let u = mesh.eval_nodal(|x| x[0]);
            let n = u.len();
            let mut au = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            ops.stiffness_apply(comm, &u, &mut au, &mut scratch);
            // Unassembled quadratic form is already the global integral.
            let local: f64 = u.iter().zip(&au).map(|(a, b)| a * b).sum();
            let _ = gs; // (single rank: no assembly needed for the form)
            comm.allreduce(local, ReduceOp::Sum)
        });
        assert!((energy - 1.0 * 1.3 * 0.9).abs() < 1e-10, "{energy}");
    }

    #[test]
    fn stiffness_diag_matches_operator_diagonal() {
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(2, [1, 1, 1]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let diag = ops.stiffness_diag();
            let mut scratch = vec![0.0; n];
            let mut max_err: f64 = 0.0;
            for i in 0..n {
                let mut e = vec![0.0; n];
                e[i] = 1.0;
                let mut ae = vec![0.0; n];
                ops.stiffness_apply(comm, &e, &mut ae, &mut scratch);
                max_err = max_err.max((ae[i] - diag[i]).abs());
            }
            max_err
        });
        assert!(err < 1e-10, "{err}");
    }

    #[test]
    fn divergence_of_linear_solenoidal_field_vanishes() {
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let ux = mesh.eval_nodal(|x| x[0]);
            let uy = mesh.eval_nodal(|x| x[1]);
            let uz = mesh.eval_nodal(|x| -2.0 * x[2]);
            let mut div = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            ops.div(comm, &ux, &uy, &uz, &mut div, &mut scratch);
            div.iter().map(|v| v.abs()).fold(0.0, f64::max)
        });
        assert!(err < 1e-10, "{err}");
    }

    #[test]
    fn advect_linear_by_constant_velocity() {
        // -(c·∇)(x + 2z) with c = (1, 0, 3) is -(1·1 + 3·2) = -7 everywhere.
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let u = mesh.eval_nodal(|x| x[0] + 2.0 * x[2]);
            let cx = vec![1.0; n];
            let cy = vec![0.0; n];
            let cz = vec![3.0; n];
            let mut out = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            ops.advect(comm, &cx, &cy, &cz, &u, &mut out, &mut scratch);
            out.iter().map(|v| (v + 7.0).abs()).fold(0.0, f64::max)
        });
        assert!(err < 1e-9, "{err}");
    }

    #[test]
    fn curl_of_rigid_rotation_is_twice_omega() {
        // u = ω × x with ω = (0,0,1): u = (-y, x, 0); ∇×u = (0,0,2).
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(4, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let ux = mesh.eval_nodal(|x| -x[1]);
            let uy = mesh.eval_nodal(|x| x[0]);
            let uz = vec![0.0; n];
            let (mut wx, mut wy, mut wz) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            let mut scratch = vec![0.0; n];
            ops.curl(comm, &ux, &uy, &uz, &mut wx, &mut wy, &mut wz, &mut scratch);
            let mut e: f64 = 0.0;
            for i in 0..n {
                e = e.max(wx[i].abs()).max(wy[i].abs()).max((wz[i] - 2.0).abs());
            }
            e
        });
        assert!(err < 1e-10, "{err}");
    }

    #[test]
    fn curl_of_gradient_field_vanishes() {
        // u = ∇φ with φ = x² + 3yz ⇒ ∇×u = 0 (φ quadratic: exact at N≥2).
        let err = on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let ux = mesh.eval_nodal(|x| 2.0 * x[0]);
            let uy = mesh.eval_nodal(|x| 3.0 * x[2]);
            let uz = mesh.eval_nodal(|x| 3.0 * x[1]);
            let (mut wx, mut wy, mut wz) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            let mut scratch = vec![0.0; n];
            ops.curl(comm, &ux, &uy, &uz, &mut wx, &mut wy, &mut wz, &mut scratch);
            wx.iter()
                .chain(&wy)
                .chain(&wz)
                .map(|v| v.abs())
                .fold(0.0, f64::max)
        });
        assert!(err < 1e-10, "{err}");
    }

    #[test]
    fn q_criterion_signs_rotation_vs_strain() {
        let (q_rot, q_strain) = on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            // Rigid rotation: pure Ω ⇒ Q > 0.
            let ux = mesh.eval_nodal(|x| -x[1]);
            let uy = mesh.eval_nodal(|x| x[0]);
            let uz = vec![0.0; n];
            let mut q = vec![0.0; n];
            let mut ws = Workspace::new(n);
            ops.q_criterion(comm, &ux, &uy, &uz, &mut q, &mut ws);
            let q_rot = q[0];
            // Pure strain: u = (x, -y, 0) ⇒ Q < 0.
            let ux = mesh.eval_nodal(|x| x[0]);
            let uy = mesh.eval_nodal(|x| -x[1]);
            ops.q_criterion(comm, &ux, &uy, &uz, &mut q, &mut ws);
            assert_eq!(ws.available(), 9, "q_criterion must return its buffers");
            (q_rot, q[0])
        });
        assert!(q_rot > 0.9, "rotation must give Q>0: {q_rot}");
        assert!(q_strain < -0.9, "strain must give Q<0: {q_strain}");
    }

    #[test]
    fn grad_charges_virtual_time() {
        let t = on_one_rank(|comm| {
            let mesh = single_rank_mesh(4, [2, 2, 2]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let u = vec![0.0; n];
            let (mut a, mut b, mut c) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
            let t0 = comm.now();
            ops.grad(comm, &u, &mut a, &mut b, &mut c);
            comm.now() - t0
        });
        assert!(t > 0.0);
    }

    #[test]
    fn axpy_helpers() {
        let mut out = vec![0.0; 3];
        axpy(&mut out, &[1.0, 2.0, 3.0], 2.0, &[10.0, 20.0, 30.0]);
        assert_eq!(out, vec![21.0, 42.0, 63.0]);
        add_assign(&mut out, &[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![22.0, 43.0, 64.0]);
    }

    fn test_elem(np: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let npe = np * np * np;
        let u: Vec<f64> = (0..npe).map(|i| ((i * 37 + np) as f64 * 0.7).sin()).collect();
        let d: Vec<f64> = (0..np * np).map(|i| ((i * 13 + 1) as f64 * 0.3).cos()).collect();
        let dt = transpose_op(&d, np);
        (u, d, dt)
    }

    #[test]
    fn simd_kernels_match_generic_bitwise_at_all_fixed_orders() {
        for np in 3..=8usize {
            let (u, d, dt) = test_elem(np);
            let npe = np * np * np;
            for axis in 0..3 {
                let mut fast = vec![0.0; npe];
                let mut generic = vec![0.0; npe];
                deriv_elem(&u, &d, &dt, np, axis, 1.7, &mut fast);
                deriv_elem_body(&u, &d, np, axis, 1.7, &mut generic);
                for i in 0..npe {
                    assert_eq!(
                        fast[i].to_bits(),
                        generic[i].to_bits(),
                        "deriv np={np} axis={axis} node {i}: {} vs {}",
                        fast[i],
                        generic[i],
                    );
                }
                let mut fast_t = vec![0.5; npe];
                let mut generic_t = vec![0.5; npe];
                deriv_t_elem_accum(&u, &d, np, axis, 0.9, &mut fast_t);
                deriv_t_elem_body(&u, &d, np, axis, 0.9, &mut generic_t);
                for i in 0..npe {
                    assert_eq!(
                        fast_t[i].to_bits(),
                        generic_t[i].to_bits(),
                        "deriv_t np={np} axis={axis} node {i}",
                    );
                }
            }
        }
    }

    #[test]
    fn simd_kernels_measure_under_criterion_at_np_3_to_8() {
        // The autovectorization claim is a codegen property we can't
        // assert from a test, but we can pin the harness the perf report
        // uses to time these kernels at every production order.
        for np in 3..=8usize {
            let (u, d, dt) = test_elem(np);
            let mut out = vec![0.0; np * np * np];
            let stats = criterion::measure(1, 3, || {
                for axis in 0..3 {
                    deriv_elem(&u, &d, &dt, np, axis, 1.1, &mut out);
                    deriv_t_elem_accum(&u, &d, np, axis, 0.7, &mut out);
                }
                criterion::black_box(out[0])
            });
            assert_eq!(stats.n, 3);
            assert!(stats.median_s >= 0.0 && stats.median_s.is_finite(), "{stats:?}");
        }
    }

    #[test]
    fn blocked_stiffness_and_helmholtz_match_reference_bitwise() {
        let widths = [1usize, 3, 4];
        for threads in widths {
            let ok = on_one_rank(move |comm| {
                rayon::pool::with_threads(threads, || {
                    let mesh = single_rank_mesh(3, [2, 2, 2]);
                    let ops = Ops::new(&mesh);
                    let n = mesh.layout().n_nodes();
                    let u = mesh.eval_nodal(|x| (3.0 * x[0] + x[1] * x[2]).sin());
                    let mut scratch = vec![0.0; n];
                    let mut a = vec![0.0; n];
                    ops.stiffness_apply(comm, &u, &mut a, &mut scratch);
                    let mut arena = BlockArena::new();
                    let mut b = vec![1.0; n];
                    ops.stiffness_apply_blocked(comm, &u, &mut b, &mut arena);
                    for i in 0..n {
                        assert_eq!(a[i].to_bits(), b[i].to_bits(), "stiffness node {i}");
                    }
                    // Helmholtz = coeff·A + h0·M∘ fused must equal the
                    // two-pass composition exactly.
                    let (nu, h0) = (0.04, 150.0);
                    let mass = ops.mass_diag();
                    let mut r = a.clone();
                    for i in 0..n {
                        r[i] = nu * r[i] + h0 * mass[i] * u[i];
                    }
                    let mut hout = vec![0.0; n];
                    ops.helmholtz_apply_blocked(comm, nu, h0, &mass, &u, &mut hout, &mut arena);
                    for i in 0..n {
                        assert_eq!(r[i].to_bits(), hout[i].to_bits(), "helmholtz node {i}");
                    }
                    true
                })
            });
            assert!(ok, "width {threads}");
        }
    }

    #[test]
    fn dispatch_stats_drain_and_reset() {
        on_one_rank(|comm| {
            let mesh = single_rank_mesh(3, [3, 1, 1]);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            ops.take_dispatch_stats();
            let u = vec![1.0; n];
            let mut out = vec![0.0; n];
            let mut arena = BlockArena::new();
            rayon::pool::with_threads(2, || {
                ops.stiffness_apply_blocked(comm, &u, &mut out, &mut arena);
            });
            let (dispatches, slack) = ops.take_dispatch_stats();
            assert_eq!(dispatches, 1, "one fused dispatch per apply");
            // 3 elements over 2 blocks: split 2+1 ⇒ one idle slot.
            assert_eq!(slack, 1);
            assert_eq!(ops.take_dispatch_stats(), (0, 0), "drain must reset");
        });
    }
}
