#![allow(clippy::needless_range_loop)] // index-style loops mirror the stencil math

//! `sem` — a GPU-resident spectral element method (SEM) flow solver, the
//! reproduction's stand-in for **NekRS**.
//!
//! NekRS solves the incompressible Navier–Stokes equations with high-order
//! spectral elements (tensor-product Gauss–Lobatto–Legendre bases on
//! hexahedra), BDFk/EXTk time integration, and iterative pressure/velocity
//! solves, all resident in GPU memory via OCCA. This crate implements the
//! same architecture at reduced scale:
//!
//! * [`quadrature`] — GLL nodes/weights (Newton on (1−x²)Pₙ′).
//! * [`basis`] — Lagrange interpolation and collocation derivative matrices.
//! * [`mesh`] — structured hexahedral SEM meshes with periodic axes, solid
//!   element masks (the pebble bed), and slab domain decomposition.
//! * [`gs`] — gather–scatter (direct stiffness summation), NekRS's `gslib`
//!   analogue, including inter-rank halo exchange.
//! * [`operators`] — tensor-product derivative/Laplacian/mass kernels with
//!   flop/byte costing for the virtual clock.
//! * [`cg`] — Jacobi-preconditioned conjugate gradient over assembled
//!   operators with allreduce-based inner products.
//! * [`timestep`] — BDFk/EXTk coefficient tables (k = 1..3).
//! * [`navier_stokes`] — the Pₙ–Pₙ splitting scheme: explicit
//!   advection/extrapolation, pressure Poisson projection, implicit
//!   Helmholtz viscous solve, optional Boussinesq temperature coupling.
//! * [`cases`] — the paper's two workloads at laptop scale: `pb146`
//!   (pebble-bed reactor core: flow through a bed of spherical pebbles)
//!   and `rbc` (Rayleigh–Bénard convection, the mesoscale case).
//!
//! All fields live in [`devsim::DeviceBuf`]s; every kernel charges the
//! rank's virtual clock with an operation-count cost, so the figure
//! harnesses measure the same compute/copy structure the paper does.

pub mod basis;
pub mod cases;
pub mod cg;
pub mod field;
pub mod gs;
pub mod mesh;
pub mod navier_stokes;
pub mod operators;
pub mod quadrature;
pub mod snapshot;
pub mod timestep;
pub mod workspace;

pub use cases::{pb146, rbc, CaseParams};
pub use field::FieldLayout;
pub use mesh::{Bc, BcSet, LocalMesh, MeshSpec};
pub use navier_stokes::{FilterConfig, FlowSolver, SolverConfig, StepReport};
pub use snapshot::{FieldSnapshot, PoolStats, SnapshotField, SnapshotPool, SnapshotSpec};
pub use workspace::Workspace;
