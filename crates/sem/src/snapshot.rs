//! Owned, pooled, versioned field snapshots — the data plane between the
//! solver and its consumers.
//!
//! [`crate::FlowSolver::publish_snapshot`] stages each requested field
//! exactly once into a [`FieldSnapshot`]: an immutable, refcounted bundle
//! of host-side buffers stamped with the step index it was taken at.
//! Consumers (the in-situ bridge, the transport engine, the render
//! pipeline) hold `Arc<FieldSnapshot>` and never touch the solver again —
//! the solver is free to advance to step N+1 while snapshot N is still
//! being rendered or written on another thread.
//!
//! Buffers are recycled through a [`SnapshotPool`] freelist so steady-state
//! publishing allocates nothing: when the last `Arc` to a snapshot drops,
//! its buffers return to the pool. The pool charges every byte it owns to a
//! `snapshot-pool` accountant, so the memtrack high-water mark bounds the
//! number of snapshots ever live at once (pipeline depth).

use memtrack::Accountant;
use std::sync::{Arc, Mutex, Weak};

/// Which fields [`crate::FlowSolver::publish_snapshot`] should stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotSpec {
    /// Stage the pressure field.
    pub pressure: bool,
    /// Stage the velocity field (interleaved 3-component).
    pub velocity: bool,
    /// Stage the temperature field (ignored when the case has none).
    pub temperature: bool,
    /// Compute and stage vorticity ∇×u (interleaved 3-component).
    pub vorticity: bool,
    /// Compute and stage the Q-criterion scalar.
    pub q_criterion: bool,
}

impl SnapshotSpec {
    /// Build a spec from consumer array names; unknown names are ignored
    /// here and surface as `NoSuchData` when the consumer asks the
    /// snapshot adaptor for them.
    pub fn from_names<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Self {
        let mut spec = Self::default();
        for name in names {
            match name.as_ref() {
                "pressure" => spec.pressure = true,
                "velocity" => spec.velocity = true,
                "temperature" => spec.temperature = true,
                "vorticity" => spec.vorticity = true,
                "q_criterion" => spec.q_criterion = true,
                _ => {}
            }
        }
        spec
    }

    /// A spec covering every field the solver can publish.
    pub fn all() -> Self {
        Self {
            pressure: true,
            velocity: true,
            temperature: true,
            vorticity: true,
            q_criterion: true,
        }
    }

    /// True when no field is requested (publishing would be a no-op).
    pub fn is_empty(&self) -> bool {
        !(self.pressure || self.velocity || self.temperature || self.vorticity || self.q_criterion)
    }

    /// In-place union with another spec.
    pub fn union(&mut self, other: &SnapshotSpec) {
        self.pressure |= other.pressure;
        self.velocity |= other.velocity;
        self.temperature |= other.temperature;
        self.vorticity |= other.vorticity;
        self.q_criterion |= other.q_criterion;
    }
}

/// Pool counters (diagnostics and lifecycle tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fresh heap allocations (buffer creations plus capacity growths).
    pub allocations: u64,
    /// Buffers served from the freelist without allocating.
    pub reuses: u64,
    /// Bytes of buffer capacity currently owned by the pool (live + free).
    pub resident_bytes: u64,
    /// Buffers currently parked in the freelist.
    pub free_buffers: usize,
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<f64>>,
    allocations: u64,
    reuses: u64,
    resident_bytes: u64,
}

#[derive(Debug)]
struct PoolShared {
    inner: Mutex<PoolInner>,
    acct: Accountant,
}

impl PoolShared {
    /// Accept a buffer back into the freelist.
    fn put(&self, buf: Vec<f64>) {
        let mut inner = self.inner.lock().expect("snapshot pool poisoned");
        inner.free.push(buf);
    }

    /// A buffer escaped the pool (a consumer kept an `Arc` alias beyond the
    /// snapshot's life); its bytes are no longer pool-resident.
    fn forfeit(&self, capacity_bytes: u64) {
        let mut inner = self.inner.lock().expect("snapshot pool poisoned");
        inner.resident_bytes = inner.resident_bytes.saturating_sub(capacity_bytes);
        self.acct.credit_raw(capacity_bytes);
    }
}

/// Freelist of host staging buffers shared by every snapshot a rank
/// publishes. Cloning shares the same pool.
#[derive(Debug, Clone)]
pub struct SnapshotPool {
    shared: Arc<PoolShared>,
}

impl SnapshotPool {
    /// Create a pool charging its resident bytes to `acct` (by convention
    /// the rank's `snapshot-pool` accountant).
    pub fn new(acct: Accountant) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                inner: Mutex::new(PoolInner::default()),
                acct,
            }),
        }
    }

    /// Take a zeroed buffer of `len` values, reusing freelist capacity when
    /// possible. Only capacity growth charges the accountant.
    pub fn take(&self, len: usize) -> Vec<f64> {
        let mut inner = self.shared.inner.lock().expect("snapshot pool poisoned");
        // Prefer the free buffer whose capacity fits best to avoid growing
        // a small buffer while a large one sits idle.
        let pick = inner
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                inner
                    .free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
            });
        let mut buf = match pick {
            Some(i) => {
                inner.reuses += 1;
                inner.free.swap_remove(i)
            }
            None => Vec::new(),
        };
        let old_cap = buf.capacity();
        buf.clear();
        buf.resize(len, 0.0);
        if buf.capacity() > old_cap {
            let grown = ((buf.capacity() - old_cap) * 8) as u64;
            inner.allocations += 1;
            inner.resident_bytes += grown;
            self.shared.acct.charge_raw(grown);
        }
        buf
    }

    /// Return a buffer to the freelist directly (for scratch that never
    /// became a snapshot field).
    pub fn put(&self, buf: Vec<f64>) {
        self.shared.put(buf);
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.shared.inner.lock().expect("snapshot pool poisoned");
        PoolStats {
            allocations: inner.allocations,
            reuses: inner.reuses,
            resident_bytes: inner.resident_bytes,
            free_buffers: inner.free.len(),
        }
    }

    /// The accountant the pool charges.
    pub fn accountant(&self) -> &Accountant {
        &self.shared.acct
    }

    fn downgrade(&self) -> Weak<PoolShared> {
        Arc::downgrade(&self.shared)
    }
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().expect("snapshot pool poisoned");
        self.acct.credit_raw(inner.resident_bytes);
        inner.resident_bytes = 0;
    }
}

/// One staged field inside a [`FieldSnapshot`]: name, tuple arity, and a
/// refcounted view of the host buffer.
#[derive(Debug, Clone)]
pub struct SnapshotField {
    /// Canonical array name ("pressure", "velocity", ...).
    pub name: &'static str,
    /// Components per tuple (1 = scalar, 3 = interleaved vector).
    pub components: usize,
    data: Arc<Vec<f64>>,
}

impl SnapshotField {
    /// Build a field from an owned buffer. Normally fields come from
    /// [`crate::FlowSolver::publish_snapshot`]; this is public so tests
    /// and checkpoint tooling can assemble synthetic snapshots.
    pub fn new(name: &'static str, components: usize, buf: Vec<f64>) -> Self {
        Self {
            name,
            components,
            data: Arc::new(buf),
        }
    }

    /// The staged values, tuple-major.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// A zero-copy refcounted alias of the buffer (for handing to
    /// `meshdata::ArrayData::F64Shared`).
    pub fn shared(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.data)
    }
}

/// An immutable, versioned bundle of host-side field copies taken at one
/// published step. Dropping the snapshot returns its buffers to the pool
/// it was taken from (if the pool is still alive).
#[derive(Debug)]
pub struct FieldSnapshot {
    /// Solver step index the snapshot was taken at.
    pub version: usize,
    /// Simulation time at that step.
    pub time: f64,
    /// Local GLL nodes per field tuple.
    pub n_nodes: usize,
    fields: Vec<SnapshotField>,
    pool: Weak<PoolShared>,
}

impl FieldSnapshot {
    /// Assemble a snapshot from already-staged fields. Normally called only
    /// by [`crate::FlowSolver::publish_snapshot`].
    pub fn new(
        version: usize,
        time: f64,
        n_nodes: usize,
        fields: Vec<SnapshotField>,
        pool: &SnapshotPool,
    ) -> Self {
        Self {
            version,
            time,
            n_nodes,
            fields,
            pool: pool.downgrade(),
        }
    }

    /// All staged fields in publish order.
    pub fn fields(&self) -> &[SnapshotField] {
        &self.fields
    }

    /// Look up a staged field by name.
    pub fn field(&self, name: &str) -> Option<&SnapshotField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Total staged bytes (sum of field lengths × 8).
    pub fn staged_bytes(&self) -> u64 {
        self.fields.iter().map(|f| (f.data.len() * 8) as u64).sum()
    }
}

impl Drop for FieldSnapshot {
    fn drop(&mut self) {
        let Some(pool) = self.pool.upgrade() else {
            return;
        };
        for f in self.fields.drain(..) {
            let cap_bytes = (f.data.capacity() * 8) as u64;
            match Arc::try_unwrap(f.data) {
                Ok(buf) => pool.put(buf),
                // A consumer still aliases the buffer; it leaves the pool
                // and is freed when that alias drops.
                Err(_) => pool.forfeit(cap_bytes),
            }
        }
    }
}

/// Helper used by `publish_snapshot`: build a [`SnapshotField`] from a
/// pooled buffer.
pub(crate) fn field_from_pooled(
    name: &'static str,
    components: usize,
    buf: Vec<f64>,
) -> SnapshotField {
    SnapshotField::new(name, components, buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> SnapshotPool {
        SnapshotPool::new(Accountant::new("test/snapshot-pool"))
    }

    #[test]
    fn spec_from_names_and_union() {
        let mut a = SnapshotSpec::from_names(["pressure", "nonsense"]);
        assert!(a.pressure && !a.velocity && !a.is_empty());
        let b = SnapshotSpec::from_names(["velocity", "q_criterion"]);
        a.union(&b);
        assert!(a.pressure && a.velocity && a.q_criterion);
        assert!(SnapshotSpec::default().is_empty());
        assert!(!SnapshotSpec::all().is_empty());
    }

    #[test]
    fn pool_reuses_buffers_and_charges_once() {
        let p = pool();
        let b1 = p.take(64);
        assert_eq!(b1.len(), 64);
        let charged = p.accountant().current();
        assert!(charged >= 64 * 8);
        p.put(b1);
        let b2 = p.take(64);
        let s = p.stats();
        assert_eq!(s.reuses, 1, "second take must reuse");
        assert_eq!(
            p.accountant().current(),
            charged,
            "reuse must not charge new bytes"
        );
        p.put(b2);
    }

    #[test]
    fn pool_prefers_best_fit_buffer() {
        let p = pool();
        let small = p.take(8);
        let large = p.take(1024);
        p.put(small);
        p.put(large);
        let again = p.take(8);
        assert!(again.capacity() < 1024, "should pick the small buffer");
        let stats = p.stats();
        assert_eq!(stats.reuses, 1);
    }

    #[test]
    fn snapshot_drop_returns_buffers() {
        let p = pool();
        let buf = p.take(32);
        let snap = FieldSnapshot::new(3, 0.1, 32, vec![field_from_pooled("pressure", 1, buf)], &p);
        assert_eq!(snap.field("pressure").unwrap().values().len(), 32);
        assert_eq!(snap.staged_bytes(), 32 * 8);
        assert_eq!(p.stats().free_buffers, 0);
        drop(snap);
        assert_eq!(p.stats().free_buffers, 1, "drop must recycle the buffer");
        let resident = p.accountant().current();
        assert!(resident >= 32 * 8, "recycled bytes stay pool-resident");
    }

    #[test]
    fn escaped_alias_forfeits_bytes_instead_of_recycling() {
        let p = pool();
        let buf = p.take(16);
        let snap = FieldSnapshot::new(1, 0.0, 16, vec![field_from_pooled("q", 1, buf)], &p);
        let alias = snap.field("q").unwrap().shared();
        let before = p.accountant().current();
        drop(snap);
        assert_eq!(p.stats().free_buffers, 0, "aliased buffer must not recycle");
        assert!(
            p.accountant().current() < before,
            "forfeit credits the bytes"
        );
        drop(alias);
    }

    #[test]
    fn pool_drop_credits_everything() {
        let acct = Accountant::new("t");
        let p = SnapshotPool::new(acct.clone());
        let b = p.take(100);
        p.put(b);
        assert!(acct.current() > 0);
        drop(p);
        assert_eq!(acct.current(), 0);
    }
}
