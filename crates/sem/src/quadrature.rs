//! Gauss–Lobatto–Legendre (GLL) quadrature.
//!
//! SEM bases collocate on GLL points: the endpoints ±1 plus the roots of
//! Pₙ′(x). Nodes are found by Newton iteration with a Chebyshev initial
//! guess; weights are `2 / (N(N+1) Pₙ(xᵢ)²)`.

/// Legendre polynomial Pₙ(x) and its derivative Pₙ′(x) via the three-term
/// recurrence (returns `(P_n, P_n')`).
pub fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    for k in 1..n {
        let kf = k as f64;
        let p_next = ((2.0 * kf + 1.0) * x * p - kf * p_prev) / (kf + 1.0);
        p_prev = p;
        p = p_next;
    }
    // P_n' from P_n and P_{n-1}: (x²−1) Pₙ′ = n (x Pₙ − Pₙ₋₁).
    let dp = if (x * x - 1.0).abs() < 1e-14 {
        // Endpoint limit: Pₙ′(±1) = ±ⁿ⁺¹ n(n+1)/2.
        let sign = if x > 0.0 {
            1.0
        } else {
            (-1.0f64).powi(n as i32 + 1)
        };
        sign * n as f64 * (n as f64 + 1.0) / 2.0
    } else {
        n as f64 * (x * p - p_prev) / (x * x - 1.0)
    };
    (p, dp)
}

/// GLL nodes and weights for polynomial order `n` (`n + 1` points on
/// [-1, 1], ascending).
///
/// # Panics
/// Panics for `n == 0` (a one-point "rule" cannot span an element edge).
pub fn gll(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "GLL rule needs order >= 1");
    let np = n + 1;
    let mut nodes = vec![0.0; np];
    let mut weights = vec![0.0; np];
    nodes[0] = -1.0;
    nodes[n] = 1.0;
    // Interior nodes: roots of P_n'. Newton from Chebyshev-Gauss-Lobatto.
    for i in 1..n {
        let mut x = -(std::f64::consts::PI * i as f64 / n as f64).cos();
        for _ in 0..100 {
            // f = P_n'(x); f' = P_n''(x) from Legendre ODE:
            // (1-x²) P'' - 2x P' + n(n+1) P = 0.
            let (p, dp) = legendre(n, x);
            let ddp = (2.0 * x * dp - (n as f64) * (n as f64 + 1.0) * p) / (1.0 - x * x);
            let step = dp / ddp;
            x -= step;
            if step.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = x;
    }
    nodes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let nn = n as f64;
    for i in 0..np {
        let (p, _) = legendre(n, nodes[i]);
        weights[i] = 2.0 / (nn * (nn + 1.0) * p * p);
    }
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legendre_low_orders_match_closed_forms() {
        for &x in &[-0.9, -0.3, 0.0, 0.5, 1.0] {
            assert!((legendre(0, x).0 - 1.0).abs() < 1e-15);
            assert!((legendre(1, x).0 - x).abs() < 1e-15);
            assert!((legendre(2, x).0 - (1.5 * x * x - 0.5)).abs() < 1e-14);
            assert!((legendre(3, x).0 - (2.5 * x * x * x - 1.5 * x)).abs() < 1e-14);
        }
    }

    #[test]
    fn legendre_derivative_matches_finite_difference() {
        let h = 1e-7;
        for n in 1..8 {
            for &x in &[-0.7, -0.1, 0.33, 0.8] {
                let (_, dp) = legendre(n, x);
                let fd = (legendre(n, x + h).0 - legendre(n, x - h).0) / (2.0 * h);
                assert!((dp - fd).abs() < 1e-5, "n={n} x={x}: {dp} vs {fd}");
            }
        }
    }

    #[test]
    fn gll_includes_endpoints_and_is_symmetric() {
        for n in 1..12 {
            let (x, w) = gll(n);
            assert_eq!(x.len(), n + 1);
            assert!((x[0] + 1.0).abs() < 1e-14);
            assert!((x[n] - 1.0).abs() < 1e-14);
            for i in 0..=n {
                assert!((x[i] + x[n - i]).abs() < 1e-12, "node symmetry");
                assert!((w[i] - w[n - i]).abs() < 1e-12, "weight symmetry");
            }
        }
    }

    #[test]
    fn weights_sum_to_two() {
        for n in 1..16 {
            let (_, w) = gll(n);
            let s: f64 = w.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: sum={s}");
        }
    }

    #[test]
    fn gll_integrates_polynomials_exactly_up_to_2n_minus_1() {
        // ∫₋₁¹ x^k dx = 0 (odd) or 2/(k+1) (even).
        for n in 2..9 {
            let (x, w) = gll(n);
            for k in 0..=(2 * n - 1) {
                let quad: f64 = x
                    .iter()
                    .zip(&w)
                    .map(|(xi, wi)| wi * xi.powi(k as i32))
                    .sum();
                let exact = if k % 2 == 1 {
                    0.0
                } else {
                    2.0 / (k as f64 + 1.0)
                };
                assert!(
                    (quad - exact).abs() < 1e-11,
                    "n={n} k={k}: {quad} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn gll_n7_matches_published_values() {
        // Canonical N=7 GLL interior nodes (e.g. Canuto et al.).
        let (x, _) = gll(7);
        let expected = [
            -1.0,
            -0.8717401485096066,
            -0.5917001814331423,
            -0.20929921790247888,
            0.20929921790247888,
            0.5917001814331423,
            0.8717401485096066,
            1.0,
        ];
        for (a, b) in x.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn known_n2_rule_is_simpson_like() {
        let (x, w) = gll(2);
        assert_eq!(x, vec![-1.0, 0.0, 1.0]);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((w[1] - 4.0 / 3.0).abs() < 1e-14);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Any polynomial with random coefficients up to degree 2N−1
            /// integrates exactly (the defining property of the rule).
            #[test]
            fn random_polynomials_integrate_exactly(
                n in 2usize..8,
                coeffs in proptest::collection::vec(-10.0..10.0f64, 16),
            ) {
                let degree = 2 * n - 1;
                let (x, w) = gll(n);
                let eval = |t: f64| -> f64 {
                    coeffs[..=degree]
                        .iter()
                        .enumerate()
                        .map(|(k, c)| c * t.powi(k as i32))
                        .sum()
                };
                let quad: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * eval(*xi)).sum();
                // ∫₋₁¹ t^k dt = 2/(k+1) for even k, 0 for odd.
                let exact: f64 = coeffs[..=degree]
                    .iter()
                    .enumerate()
                    .map(|(k, c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
                    .sum();
                prop_assert!(
                    (quad - exact).abs() < 1e-9 * (1.0 + exact.abs()),
                    "n={n}: {quad} vs {exact}"
                );
            }

            /// One degree beyond exactness (t^{2N}) must NOT integrate
            /// exactly — the rule is sharp.
            #[test]
            fn degree_2n_is_not_exact(n in 2usize..8) {
                let (x, w) = gll(n);
                let k = 2 * n;
                let quad: f64 = x.iter().zip(&w).map(|(xi, wi)| wi * xi.powi(k as i32)).sum();
                let exact = 2.0 / (k as f64 + 1.0);
                prop_assert!((quad - exact).abs() > 1e-6, "n={n} must miss t^{k}");
            }

            /// Nodes are strictly increasing and weights strictly positive.
            #[test]
            fn nodes_sorted_weights_positive(n in 1usize..12) {
                let (x, w) = gll(n);
                prop_assert!(x.windows(2).all(|p| p[0] < p[1]));
                prop_assert!(w.iter().all(|&wi| wi > 0.0));
            }
        }
    }
}
