//! Reusable scratch-buffer arena for the solver hot path.
//!
//! Steady-state stepping must not touch the heap (see the tracking
//! allocator test `ns_step_steady_state_is_allocation_free`), so every
//! temporary field the CG solver, the Navier–Stokes step, and the
//! post-processing kernels (`q_criterion`, `curl`) used to `vec!` per
//! call is now taken from — and returned to — a [`Workspace`] owned by
//! the solver. The arena is a simple freelist of equal-length `f64`
//! buffers: `take` hands out a recycled buffer (allocating only when the
//! list is empty, i.e. during the first few warm-up steps), `put` gives
//! it back.
//!
//! The arena changes *where* buffers live, never their contents at use
//! time: `take()` zero-fills, and `take_uninit()` is reserved for
//! callers that overwrite every element before reading. Results are
//! therefore bit-identical to the old allocate-per-call code.

/// Freelist of interchangeable `len == n` scratch buffers.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    n: usize,
    free: Vec<Vec<f64>>,
}

impl Workspace {
    /// Arena whose buffers all have length `n` (the rank-local node count).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            // Enough slots that steady-state put() never reallocates the
            // freelist itself; the NS step keeps < 24 buffers in flight.
            free: Vec::with_capacity(32),
        }
    }

    /// Buffer length this arena serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no recycled buffer is currently available.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Number of buffers currently parked in the freelist.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// A zero-filled buffer of length `n`.
    pub fn take(&mut self) -> Vec<f64> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; self.n],
        }
    }

    /// A buffer of length `n` with arbitrary (recycled) contents. Only
    /// for callers that write every element before reading any.
    pub fn take_uninit(&mut self) -> Vec<f64> {
        self.free.pop().unwrap_or_else(|| vec![0.0; self.n])
    }

    /// Return a buffer to the freelist for reuse.
    ///
    /// # Panics
    /// Debug-panics if the buffer's length does not match the arena's.
    pub fn put(&mut self, buf: Vec<f64>) {
        debug_assert_eq!(buf.len(), self.n, "workspace buffer length mismatch");
        self.free.push(buf);
    }

    /// Return a `[u; 3]` vector-field triple to the freelist.
    pub fn put3(&mut self, bufs: [Vec<f64>; 3]) {
        for b in bufs {
            self.put(b);
        }
    }
}

/// Per-block scratch slots for element-block parallel kernels.
///
/// The blocked operator dispatch (`rayon::pool::run_partitioned`) hands
/// each worker one block of contiguous elements; the per-element fused
/// stiffness/Helmholtz kernel needs one element-sized scratch pencil per
/// worker. This arena backs all those pencils with a single contiguous
/// allocation: slot `b` is a disjoint 64-byte-aligned stride, so no two
/// blocks ever share a cache line and nothing is handed across threads
/// inside a CG iteration — unlike the [`Workspace`] freelist, which is
/// only ever touched on the submitting thread.
///
/// `ensure` grows (never shrinks) the backing buffer, so after the
/// warm-up steps the hot loop reuses it with zero allocations.
#[derive(Debug, Clone, Default)]
pub struct BlockArena {
    buf: Vec<f64>,
    /// Padded slot stride (multiple of 8 f64 = one 64-byte cache line).
    slot_stride: usize,
    /// Usable slot length handed out by `slots()`.
    slot_len: usize,
    nslots: usize,
}

impl BlockArena {
    /// Empty arena; `ensure` sizes it on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make the arena serve at least `nslots` disjoint slots of `len`
    /// f64s each. Growth-only: steady-state calls with the same (or
    /// smaller) shape never touch the heap.
    pub fn ensure(&mut self, nslots: usize, len: usize) {
        let stride = len.div_ceil(8).max(1) * 8;
        if stride > self.slot_stride {
            self.slot_stride = stride;
        }
        if nslots > self.nslots {
            self.nslots = nslots;
        }
        let need = self.slot_stride * self.nslots;
        if self.buf.len() < need {
            self.buf.resize(need, 0.0);
        }
        self.slot_len = len;
    }

    /// Slot count currently provisioned.
    pub fn nslots(&self) -> usize {
        self.nslots
    }

    /// Shareable view handing out the disjoint per-block slots. Slot
    /// contents are arbitrary (recycled): kernels must write every
    /// element they read, exactly like [`Workspace::take_uninit`].
    pub fn slots(&mut self) -> BlockSlots<'_> {
        BlockSlots {
            base: self.buf.as_mut_ptr(),
            stride: self.slot_stride,
            len: self.slot_len,
            nslots: self.nslots,
            _lt: std::marker::PhantomData,
        }
    }
}

/// Borrowed view over a [`BlockArena`]'s slots, shareable across pool
/// workers (each job touches only its own slot index).
pub struct BlockSlots<'a> {
    base: *mut f64,
    stride: usize,
    len: usize,
    nslots: usize,
    _lt: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: slots are disjoint strides of one buffer; the `slot` contract
// (one thread per slot index at a time) makes shared use race-free.
unsafe impl Send for BlockSlots<'_> {}
unsafe impl Sync for BlockSlots<'_> {}

impl BlockSlots<'_> {
    /// Mutable view of slot `b`.
    ///
    /// # Safety
    /// Each slot index must be accessed by at most one thread at a time.
    /// `run_partitioned` guarantees this when `b` is the block index.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, b: usize) -> &mut [f64] {
        assert!(b < self.nslots, "slot {b} >= {}", self.nslots);
        std::slice::from_raw_parts_mut(self.base.add(b * self.stride), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_and_zeroes() {
        let mut ws = Workspace::new(4);
        let mut a = ws.take();
        a[2] = 7.0;
        let ptr = a.as_ptr();
        ws.put(a);
        assert_eq!(ws.available(), 1);
        let b = ws.take();
        assert_eq!(b.as_ptr(), ptr, "buffer must be recycled, not reallocated");
        assert_eq!(b, vec![0.0; 4], "recycled buffer must be zero-filled");
    }

    #[test]
    fn take_uninit_preserves_recycled_storage() {
        let mut ws = Workspace::new(3);
        let mut a = ws.take();
        a.copy_from_slice(&[1.0, 2.0, 3.0]);
        ws.put(a);
        let b = ws.take_uninit();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
        assert_eq!(b.len(), ws.len());
    }

    #[test]
    fn put3_returns_all_three() {
        let mut ws = Workspace::new(2);
        let triple = [ws.take(), ws.take(), ws.take()];
        ws.put3(triple);
        assert_eq!(ws.available(), 3);
        assert!(!ws.is_empty());
    }

    #[test]
    fn block_arena_slots_are_disjoint_and_cache_line_separated() {
        let mut arena = BlockArena::new();
        arena.ensure(4, 27);
        let slots = arena.slots();
        let mut ranges = Vec::new();
        for b in 0..4 {
            // SAFETY: single-threaded access here.
            let s = unsafe { slots.slot(b) };
            assert_eq!(s.len(), 27);
            let start = s.as_ptr() as usize;
            assert_eq!(start % 8, 0);
            ranges.push((start, start + 27 * 8));
        }
        ranges.sort();
        for w in ranges.windows(2) {
            // 64-byte padding: next slot starts at least a cache line
            // after the previous slot's last touched byte.
            assert!(w[1].0 >= w[0].1, "slots overlap: {ranges:?}");
            assert_eq!((w[1].0 - w[0].0) % 64, 0, "stride not cache-aligned");
        }
    }

    #[test]
    fn block_arena_growth_is_monotone_and_then_allocation_stable() {
        let mut arena = BlockArena::new();
        arena.ensure(2, 100);
        let p0 = arena.slots().base as usize;
        // Same or smaller shape: backing buffer must not move.
        arena.ensure(2, 64);
        assert_eq!(arena.slots().base as usize, p0);
        assert_eq!(unsafe { arena.slots().slot(0) }.len(), 64);
        arena.ensure(1, 100);
        assert_eq!(arena.slots().base as usize, p0);
        assert_eq!(arena.nslots(), 2, "slot count never shrinks");
        // Larger shape grows.
        arena.ensure(8, 200);
        assert_eq!(arena.nslots(), 8);
        assert_eq!(unsafe { arena.slots().slot(7) }.len(), 200);
    }
}
