//! Reusable scratch-buffer arena for the solver hot path.
//!
//! Steady-state stepping must not touch the heap (see the tracking
//! allocator test `ns_step_steady_state_is_allocation_free`), so every
//! temporary field the CG solver, the Navier–Stokes step, and the
//! post-processing kernels (`q_criterion`, `curl`) used to `vec!` per
//! call is now taken from — and returned to — a [`Workspace`] owned by
//! the solver. The arena is a simple freelist of equal-length `f64`
//! buffers: `take` hands out a recycled buffer (allocating only when the
//! list is empty, i.e. during the first few warm-up steps), `put` gives
//! it back.
//!
//! The arena changes *where* buffers live, never their contents at use
//! time: `take()` zero-fills, and `take_uninit()` is reserved for
//! callers that overwrite every element before reading. Results are
//! therefore bit-identical to the old allocate-per-call code.

/// Freelist of interchangeable `len == n` scratch buffers.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    n: usize,
    free: Vec<Vec<f64>>,
}

impl Workspace {
    /// Arena whose buffers all have length `n` (the rank-local node count).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            // Enough slots that steady-state put() never reallocates the
            // freelist itself; the NS step keeps < 24 buffers in flight.
            free: Vec::with_capacity(32),
        }
    }

    /// Buffer length this arena serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no recycled buffer is currently available.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Number of buffers currently parked in the freelist.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// A zero-filled buffer of length `n`.
    pub fn take(&mut self) -> Vec<f64> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; self.n],
        }
    }

    /// A buffer of length `n` with arbitrary (recycled) contents. Only
    /// for callers that write every element before reading any.
    pub fn take_uninit(&mut self) -> Vec<f64> {
        self.free.pop().unwrap_or_else(|| vec![0.0; self.n])
    }

    /// Return a buffer to the freelist for reuse.
    ///
    /// # Panics
    /// Debug-panics if the buffer's length does not match the arena's.
    pub fn put(&mut self, buf: Vec<f64>) {
        debug_assert_eq!(buf.len(), self.n, "workspace buffer length mismatch");
        self.free.push(buf);
    }

    /// Return a `[u; 3]` vector-field triple to the freelist.
    pub fn put3(&mut self, bufs: [Vec<f64>; 3]) {
        for b in bufs {
            self.put(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_and_zeroes() {
        let mut ws = Workspace::new(4);
        let mut a = ws.take();
        a[2] = 7.0;
        let ptr = a.as_ptr();
        ws.put(a);
        assert_eq!(ws.available(), 1);
        let b = ws.take();
        assert_eq!(b.as_ptr(), ptr, "buffer must be recycled, not reallocated");
        assert_eq!(b, vec![0.0; 4], "recycled buffer must be zero-filled");
    }

    #[test]
    fn take_uninit_preserves_recycled_storage() {
        let mut ws = Workspace::new(3);
        let mut a = ws.take();
        a.copy_from_slice(&[1.0, 2.0, 3.0]);
        ws.put(a);
        let b = ws.take_uninit();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
        assert_eq!(b.len(), ws.len());
    }

    #[test]
    fn put3_returns_all_three() {
        let mut ws = Workspace::new(2);
        let triple = [ws.take(), ws.take(), ws.take()];
        ws.put3(triple);
        assert_eq!(ws.available(), 3);
        assert!(!ws.is_empty());
    }
}
