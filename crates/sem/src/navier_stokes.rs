//! Incompressible Navier–Stokes / Boussinesq solver with the Pₙ–Pₙ
//! splitting scheme (NekRS's default formulation).
//!
//! Each step, following Fischer et al.:
//! 1. evaluate the advection term `N(u) = −(u·∇)u` (+ buoyancy forcing)
//!    explicitly and extrapolate with EXTk;
//! 2. combine with the BDFk history into a tentative velocity `û`;
//! 3. solve the pressure Poisson equation `A p = −(b₀/Δt)·M ∇·û` (CG,
//!    Jacobi preconditioner, mean projection on pure-Neumann domains);
//! 4. project: `u** = û − (Δt/b₀)·∇p`;
//! 5. solve the implicit viscous Helmholtz system
//!    `((b₀/Δt)·M + ν·A)·u = (b₀/Δt)·M u**` per component, with Dirichlet
//!    lifting for inflow/no-slip values;
//! 6. optionally advance temperature by the same advection–diffusion
//!    machinery and feed it back as buoyancy on the vertical momentum.
//!
//! Fields are conceptually GPU-resident: construction charges the rank's
//! `gpu` memory accountant, all operators charge GPU kernel time, and the
//! only host-visible access is [`FlowSolver::stage_to_host`], which pays
//! the D2H transfer — the constraint the paper's in situ overhead hinges on.

use crate::cg::{self, CgConfig, CgResult};
use crate::gs::GatherScatter;
use crate::mesh::{BcSet, LocalMesh};
use crate::operators::{transpose_op, Ops};
use crate::snapshot::{self, FieldSnapshot, SnapshotPool, SnapshotSpec};
use crate::timestep::{bdf_coeffs, ext_coeffs};
use crate::workspace::{BlockArena, Workspace};
use commsim::{Comm, ReduceOp};
use memtrack::Charge;
use std::sync::Arc;

/// Solver phases instrumented with per-phase block-imbalance counters
/// (`sem/block_dispatch/<phase>`, `sem/block_slack/<phase>`).
const BLOCK_PHASES: [&str; 7] = [
    "advection",
    "pressure",
    "project",
    "viscous",
    "temperature",
    "filter",
    "diagnostics",
];

#[derive(Clone, Copy)]
enum BlockPhase {
    Advection = 0,
    Pressure = 1,
    Project = 2,
    Viscous = 3,
    Temperature = 4,
    Filter = 5,
    Diagnostics = 6,
}

/// Lazily-bound telemetry handles for the element-block scheduler: one
/// overlap-ratio gauge plus per-phase dispatch/slack counters.
struct BlockInstruments {
    overlap_ratio: commsim::Gauge,
    dispatches: [commsim::Counter; BLOCK_PHASES.len()],
    slack: [commsim::Counter; BLOCK_PHASES.len()],
}

impl BlockInstruments {
    fn new(t: &commsim::RankTelemetry) -> Self {
        Self {
            overlap_ratio: t.gauge("sem/overlap_ratio"),
            dispatches: BLOCK_PHASES.map(|p| t.counter(&format!("sem/block_dispatch/{p}"))),
            slack: BLOCK_PHASES.map(|p| t.counter(&format!("sem/block_slack/{p}"))),
        }
    }
}

/// Temperature-equation configuration (enables Boussinesq coupling).
#[derive(Debug, Clone)]
pub struct TemperatureConfig {
    /// Thermal diffusivity κ.
    pub diffusivity: f64,
    /// Buoyancy coefficient β: vertical forcing `f_z = β·T`.
    pub buoyancy: f64,
    /// Boundary conditions for T.
    pub bc: BcSet,
    /// CG controls for the temperature Helmholtz solve.
    pub cg: CgConfig,
}

/// Modal-filter stabilization (Fischer–Mullen), NekRS's `filtering` knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Attenuation of the highest retained mode, in [0, 1].
    pub strength: f64,
    /// How many top modes the roll-off spans.
    pub modes: usize,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Kinematic viscosity ν.
    pub viscosity: f64,
    /// Timestep Δt.
    pub dt: f64,
    /// Target BDF/EXT order (1..=3); ramped up over the first steps.
    pub bdf_order: usize,
    /// CG controls for the pressure Poisson solve.
    pub pressure_cg: CgConfig,
    /// CG controls for the viscous Helmholtz solves.
    pub velocity_cg: CgConfig,
    /// Constant body force per unit mass (e.g. a driving pressure
    /// gradient for channel flows); applied with the advection terms.
    pub body_force: [f64; 3],
    /// Optional modal-filter stabilization applied to velocity (and
    /// temperature) after each step.
    pub filter: Option<FilterConfig>,
    /// Optional temperature equation.
    pub temperature: Option<TemperatureConfig>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            viscosity: 1e-2,
            dt: 1e-3,
            bdf_order: 2,
            pressure_cg: CgConfig {
                tol: 1e-6,
                max_iter: 200,
                ..Default::default()
            },
            velocity_cg: CgConfig {
                tol: 1e-8,
                max_iter: 200,
                ..Default::default()
            },
            body_force: [0.0; 3],
            filter: None,
            temperature: None,
        }
    }
}

/// Boundary conditions for the flow system.
#[derive(Debug, Clone)]
pub struct FlowBcs {
    /// Per velocity component.
    pub velocity: [BcSet; 3],
    /// For the pressure Poisson solve (Dirichlet at outflows; pure Neumann
    /// in enclosed domains).
    pub pressure: BcSet,
}

/// Per-step diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Step index just completed (1-based).
    pub step: usize,
    /// Simulation time after the step.
    pub time: f64,
    /// Pressure solve outcome.
    pub pressure: CgResult,
    /// Viscous solve outcomes per component.
    pub velocity: [CgResult; 3],
    /// Temperature solve outcome.
    pub temperature: Option<CgResult>,
    /// Weighted L2 norm of ∇·u after the step.
    pub divergence: f64,
}

/// Which field to stage to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldId {
    /// Velocity x-component.
    VelX,
    /// Velocity y-component.
    VelY,
    /// Velocity z-component.
    VelZ,
    /// Pressure.
    Pressure,
    /// Temperature (if enabled).
    Temperature,
}

/// The flow solver state for one rank.
pub struct FlowSolver {
    /// Rank-local mesh.
    pub mesh: LocalMesh,
    /// Assembly topology.
    pub gs: GatherScatter,
    /// Operator context.
    pub ops: Ops,
    cfg: SolverConfig,
    u: [Vec<f64>; 3],
    p: Vec<f64>,
    t: Option<Vec<f64>>,
    u_hist: Vec<[Vec<f64>; 3]>,
    adv_hist: Vec<[Vec<f64>; 3]>,
    t_hist: Vec<Vec<f64>>,
    t_adv_hist: Vec<Vec<f64>>,
    vel_mask: [Vec<f64>; 3],
    vel_vals: [Vec<f64>; 3],
    p_mask: Vec<f64>,
    p_fix_mean: bool,
    t_mask: Vec<f64>,
    t_vals: Vec<f64>,
    mass_diag: Vec<f64>,
    mass_diag_assembled: Vec<f64>,
    stiff_diag_assembled: Vec<f64>,
    p_diag_inv: Vec<f64>,
    filter_matrix: Option<Vec<f64>>,
    /// Transpose of `filter_matrix`, feeding the axis-0 SIMD kernel of
    /// `apply_tensor_op`.
    filter_matrix_t: Option<Vec<f64>>,
    scratch: Vec<f64>,
    /// Scratch-buffer arena for all per-step temporaries; after the warm-up
    /// steps the hot loop recycles these instead of allocating.
    ws: Workspace,
    /// Per-worker pencil arena for the fused blocked Helmholtz/stiffness
    /// applies (growth-only, sized on first use).
    block_arena: BlockArena,
    step_index: usize,
    time: f64,
    /// Lazily-bound telemetry instrument for per-step virtual time
    /// (`rank<r>/sem/step_time`); a no-op handle when telemetry is off.
    step_hist: Option<commsim::Histogram>,
    /// Lazily-bound block-scheduler instruments (overlap ratio gauge +
    /// per-phase imbalance counters).
    block_instr: Option<BlockInstruments>,
    _gpu_charge: Charge,
}

impl FlowSolver {
    /// Build a solver over `mesh` with initial velocity `u0` (element-major
    /// per component) and optional initial temperature `t0`.
    pub fn new(
        comm: &mut Comm,
        mesh: LocalMesh,
        cfg: SolverConfig,
        bcs: FlowBcs,
        u0: [Vec<f64>; 3],
        t0: Option<Vec<f64>>,
    ) -> Self {
        let gs = GatherScatter::new(&mesh, comm);
        let ops = Ops::new(&mesh);
        let n = mesh.layout().n_nodes();
        assert!(u0.iter().all(|c| c.len() == n), "u0 layout mismatch");
        assert!(
            cfg.temperature.is_none() || t0.as_ref().is_some_and(|t| t.len() == n),
            "temperature enabled but t0 missing or mis-sized"
        );

        let mut vel_mask: [Vec<f64>; 3] = Default::default();
        let mut vel_vals: [Vec<f64>; 3] = Default::default();
        for c in 0..3 {
            let (m, v) = mesh.dirichlet_mask(&bcs.velocity[c]);
            vel_mask[c] = m;
            vel_vals[c] = v;
        }
        let (p_mask, _) = mesh.dirichlet_mask(&bcs.pressure);
        // Pure Neumann pressure (no Dirichlet node anywhere globally)?
        let local_free = p_mask.iter().cloned().fold(1.0f64, f64::min);
        let global_free = comm.allreduce(local_free, ReduceOp::Min);
        let p_fix_mean = global_free > 0.5;

        let (t_mask, t_vals) = match &cfg.temperature {
            Some(tc) => mesh.dirichlet_mask(&tc.bc),
            None => (vec![1.0; n], vec![0.0; n]),
        };

        let mass_diag = ops.mass_diag();
        let mut mass_diag_assembled = mass_diag.clone();
        gs.sum(comm, &mut mass_diag_assembled);
        let mut stiff_diag_assembled = ops.stiffness_diag();
        gs.sum(comm, &mut stiff_diag_assembled);
        let p_diag_inv: Vec<f64> = stiff_diag_assembled
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        let filter_matrix = cfg
            .filter
            .map(|f| ops.basis.filter_matrix(f.strength, f.modes));
        let filter_matrix_t = filter_matrix
            .as_ref()
            .map(|m| transpose_op(m, ops.basis.np()));

        // Make initial state continuous and boundary-consistent.
        let mut u = u0;
        for c in 0..3 {
            gs.average(comm, &mut u[c]);
            for i in 0..n {
                u[c][i] = u[c][i] * vel_mask[c][i] + vel_vals[c][i];
            }
        }
        let t = t0.map(|mut t| {
            gs.average(comm, &mut t);
            for i in 0..n {
                t[i] = t[i] * t_mask[i] + t_vals[i];
            }
            t
        });

        // Everything above lives in device memory in NekRS; charge it.
        let n_fields = 3 + 1 + if t.is_some() { 1 } else { 0 };
        let histories = 3 * 2 + 3 * 3 + 2 + 3; // u_hist + adv_hist + t hists
        let bytes = ((n_fields + histories + 8) * n * 8) as u64;
        let gpu_charge = comm.accountant("gpu").charge(bytes);

        // Setup-time operator and gather-scatter traffic should not leak
        // into the first step's scheduling/overlap telemetry.
        ops.take_dispatch_stats();
        gs.take_overlap();

        Self {
            mesh,
            gs,
            ops,
            cfg,
            u,
            p: vec![0.0; n],
            t,
            // Capacity for the steady-state ring length plus the one-slot
            // overshoot during insert, so history pushes never reallocate.
            u_hist: Vec::with_capacity(3),
            adv_hist: Vec::with_capacity(4),
            t_hist: Vec::with_capacity(3),
            t_adv_hist: Vec::with_capacity(4),
            vel_mask,
            vel_vals,
            p_mask,
            p_fix_mean,
            t_mask,
            t_vals,
            mass_diag,
            mass_diag_assembled,
            stiff_diag_assembled,
            p_diag_inv,
            filter_matrix,
            filter_matrix_t,
            scratch: vec![0.0; n],
            ws: Workspace::new(n),
            block_arena: BlockArena::new(),
            step_index: 0,
            time: 0.0,
            step_hist: None,
            block_instr: None,
            _gpu_charge: gpu_charge,
        }
    }

    /// Drain the operator context's dispatch counters into `phase`'s
    /// block-imbalance telemetry (binding the instruments on first use,
    /// inside the warm-up steps, so steady state stays allocation-free).
    fn note_block_phase(&mut self, comm: &mut Comm, phase: BlockPhase) {
        let (dispatches, slack) = self.ops.take_dispatch_stats();
        let instr = self
            .block_instr
            .get_or_insert_with(|| BlockInstruments::new(comm.telemetry()));
        instr.dispatches[phase as usize].add(dispatches);
        instr.slack[phase as usize].add(slack);
    }

    /// Number of local nodes.
    pub fn n_nodes(&self) -> usize {
        self.mesh.layout().n_nodes()
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Completed steps.
    pub fn step_index(&self) -> usize {
        self.step_index
    }

    /// Solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    /// Device-side view of a field — for device code (tests, kernels).
    /// Host-side consumers must use [`FlowSolver::stage_to_host`].
    pub fn field_device(&self, id: FieldId) -> Option<&[f64]> {
        match id {
            FieldId::VelX => Some(&self.u[0]),
            FieldId::VelY => Some(&self.u[1]),
            FieldId::VelZ => Some(&self.u[2]),
            FieldId::Pressure => Some(&self.p),
            FieldId::Temperature => self.t.as_deref(),
        }
    }

    /// Copy a field to host memory, charging the rank's D2H transfer cost —
    /// the `occa::memory::copyTo` the paper's instrumentation must perform
    /// because VTK cannot read device memory.
    pub fn stage_to_host(&self, comm: &mut Comm, id: FieldId) -> Option<Vec<f64>> {
        let field = self.field_device(id)?;
        comm.d2h((field.len() * 8) as u64);
        Some(field.to_vec())
    }

    /// Copy several fields to host memory in one pooled transfer: a single
    /// D2H latency for the whole batch (vs one per field with repeated
    /// [`FlowSolver::stage_to_host`]) — the copy-granularity ablation in
    /// DESIGN.md. Unknown/absent fields are skipped.
    pub fn stage_many_to_host(&self, comm: &mut Comm, ids: &[FieldId]) -> Vec<(FieldId, Vec<f64>)> {
        let mut out = Vec::with_capacity(ids.len());
        let mut total_bytes = 0u64;
        for &id in ids {
            if let Some(field) = self.field_device(id) {
                total_bytes += (field.len() * 8) as u64;
                out.push((id, field.to_vec()));
            }
        }
        if total_bytes > 0 {
            comm.d2h(total_bytes);
        }
        out
    }

    /// Compute the vorticity ∇×u on the device and return it (continuous,
    /// gather-scatter averaged), staged to host.
    pub fn vorticity_host(&mut self, comm: &mut Comm) -> [Vec<f64>; 3] {
        let n = self.n_nodes();
        // The returned vectors are the host-side copies (the allocation is
        // the staging buffer); intermediates reuse solver scratch.
        let mut wx = vec![0.0; n];
        let mut wy = vec![0.0; n];
        let mut wz = vec![0.0; n];
        self.ops.curl(
            comm,
            &self.u[0],
            &self.u[1],
            &self.u[2],
            &mut wx,
            &mut wy,
            &mut wz,
            &mut self.scratch,
        );
        self.gs.average(comm, &mut wx);
        self.gs.average(comm, &mut wy);
        self.gs.average(comm, &mut wz);
        comm.d2h((3 * n * 8) as u64);
        [wx, wy, wz]
    }

    /// Compute the Q-criterion on the device (continuous) and stage it.
    pub fn q_criterion_host(&mut self, comm: &mut Comm) -> Vec<f64> {
        let n = self.n_nodes();
        let mut q = vec![0.0; n];
        self.ops.q_criterion(
            comm,
            &self.u[0],
            &self.u[1],
            &self.u[2],
            &mut q,
            &mut self.ws,
        );
        self.gs.average(comm, &mut q);
        comm.d2h((n * 8) as u64);
        q
    }

    /// Stage every field requested by `spec` into an owned, pooled
    /// [`FieldSnapshot`] — the single D2H publish point of the data plane.
    ///
    /// Primary fields (velocity, pressure, temperature) share one pooled
    /// D2H transfer; derived fields (vorticity, Q-criterion) are computed
    /// on device and staged with their own transfers, exactly as the
    /// per-field staging paths used to charge. Each field is staged once
    /// per call no matter how many consumers later read the snapshot.
    pub fn publish_snapshot(
        &mut self,
        comm: &mut Comm,
        spec: &SnapshotSpec,
        pool: &SnapshotPool,
    ) -> Arc<FieldSnapshot> {
        let _span = comm.span("snapshot/publish");
        let n = self.n_nodes();
        let mut fields = Vec::with_capacity(5);
        let mut primary_bytes = 0u64;

        if spec.velocity {
            let mut buf = pool.take(3 * n);
            for i in 0..n {
                buf[3 * i] = self.u[0][i];
                buf[3 * i + 1] = self.u[1][i];
                buf[3 * i + 2] = self.u[2][i];
            }
            primary_bytes += (3 * n * 8) as u64;
            fields.push(snapshot::field_from_pooled("velocity", 3, buf));
        }
        if spec.pressure {
            let mut buf = pool.take(n);
            buf.copy_from_slice(&self.p);
            primary_bytes += (n * 8) as u64;
            fields.push(snapshot::field_from_pooled("pressure", 1, buf));
        }
        if spec.temperature {
            if let Some(t) = &self.t {
                let mut buf = pool.take(n);
                buf.copy_from_slice(t);
                primary_bytes += (n * 8) as u64;
                fields.push(snapshot::field_from_pooled("temperature", 1, buf));
            }
        }
        if primary_bytes > 0 {
            comm.d2h(primary_bytes);
        }

        if spec.vorticity {
            let mut wx = pool.take(n);
            let mut wy = pool.take(n);
            let mut wz = pool.take(n);
            self.ops.curl(
                comm,
                &self.u[0],
                &self.u[1],
                &self.u[2],
                &mut wx,
                &mut wy,
                &mut wz,
                &mut self.scratch,
            );
            self.gs.average(comm, &mut wx);
            self.gs.average(comm, &mut wy);
            self.gs.average(comm, &mut wz);
            comm.d2h((3 * n * 8) as u64);
            let mut buf = pool.take(3 * n);
            for i in 0..n {
                buf[3 * i] = wx[i];
                buf[3 * i + 1] = wy[i];
                buf[3 * i + 2] = wz[i];
            }
            pool.put(wx);
            pool.put(wy);
            pool.put(wz);
            fields.push(snapshot::field_from_pooled("vorticity", 3, buf));
        }
        if spec.q_criterion {
            let mut q = pool.take(n);
            self.ops.q_criterion(
                comm,
                &self.u[0],
                &self.u[1],
                &self.u[2],
                &mut q,
                &mut self.ws,
            );
            self.gs.average(comm, &mut q);
            comm.d2h((n * 8) as u64);
            fields.push(snapshot::field_from_pooled("q_criterion", 1, q));
        }

        Arc::new(FieldSnapshot::new(
            self.step_index,
            self.time,
            n,
            fields,
            pool,
        ))
    }

    /// Restore primary fields from a checkpoint (velocity, pressure, and
    /// temperature if enabled). Histories are cleared, so time integration
    /// ramps back up from BDF1/EXT1 — with `bdf_order = 1` a restart
    /// reproduces the original trajectory exactly.
    ///
    /// # Panics
    /// Panics on field-length mismatches.
    pub fn restore(
        &mut self,
        comm: &mut Comm,
        step_index: usize,
        time: f64,
        u: [Vec<f64>; 3],
        p: Vec<f64>,
        t: Option<Vec<f64>>,
    ) {
        let n = self.n_nodes();
        assert!(u.iter().all(|c| c.len() == n), "restored u size mismatch");
        assert_eq!(p.len(), n, "restored p size mismatch");
        // The restored data arrives in host memory; moving it back onto the
        // device costs H2D transfers.
        let n_fields = 4 + t.is_some() as u64;
        comm.h2d(n_fields * n as u64 * 8);
        self.u = u;
        self.p = p;
        if let (Some(dst), Some(src)) = (self.t.as_mut(), t) {
            assert_eq!(src.len(), n, "restored T size mismatch");
            *dst = src;
        }
        self.u_hist.clear();
        self.adv_hist.clear();
        self.t_hist.clear();
        self.t_adv_hist.clear();
        self.step_index = step_index;
        self.time = time;
    }

    /// Global kinetic energy ½∫|u|² (multiplicity-weighted quadrature).
    pub fn kinetic_energy(&self, comm: &mut Comm) -> f64 {
        let w = self.gs.mult_inv();
        let local: f64 = (0..3)
            .map(|c| {
                self.u[c]
                    .iter()
                    .zip(&self.mass_diag)
                    .zip(w)
                    .map(|((&v, &m), &wi)| v * v * m * wi)
                    .sum::<f64>()
            })
            .sum();
        0.5 * comm.allreduce(local, ReduceOp::Sum)
    }

    /// Global maximum |u| over all nodes (CFL diagnostics).
    pub fn max_velocity(&self, comm: &mut Comm) -> f64 {
        let local = (0..self.n_nodes())
            .map(|i| (self.u[0][i].powi(2) + self.u[1][i].powi(2) + self.u[2][i].powi(2)).sqrt())
            .fold(0.0, f64::max);
        comm.allreduce(local, ReduceOp::Max)
    }

    /// Advance one timestep.
    pub fn step(&mut self, comm: &mut Comm) -> StepReport {
        let t_step_start = comm.now();
        let n = self.n_nodes();
        // Ramp the BDF/EXT order from the history actually available, not
        // from `step_index`: after `restore` the step counter is mid-run but
        // the rings are empty, and the scheme must ramp back up from
        // BDF1/EXT1 exactly as on a cold start.
        let k = self.cfg.bdf_order.min(self.u_hist.len() + 1).clamp(1, 3);
        let (b0, bprev) = bdf_coeffs(k);
        let a = ext_coeffs(k);
        let dt = self.cfg.dt;
        let h0 = b0 / dt;

        // 1. Advection (+ buoyancy) at time n. (All per-step temporaries
        // below come from the workspace arena and go back into it; `advect`
        // and friends overwrite every element, so recycled contents never
        // leak into results.)
        let sp = comm.span("sem/advection");
        let mut adv: [Vec<f64>; 3] = [
            self.ws.take_uninit(),
            self.ws.take_uninit(),
            self.ws.take_uninit(),
        ];
        for c in 0..3 {
            let (ux, uy, uz) = (&self.u[0], &self.u[1], &self.u[2]);
            self.ops
                .advect(comm, ux, uy, uz, &self.u[c], &mut adv[c], &mut self.scratch);
        }
        for c in 0..3 {
            let f = self.cfg.body_force[c];
            if f != 0.0 {
                for v in adv[c].iter_mut() {
                    *v += f;
                }
            }
        }
        let mut t_adv: Option<Vec<f64>> = None;
        if let (Some(tc), Some(t)) = (&self.cfg.temperature, &self.t) {
            let mut ta = self.ws.take_uninit();
            self.ops.advect(
                comm,
                &self.u[0],
                &self.u[1],
                &self.u[2],
                t,
                &mut ta,
                &mut self.scratch,
            );
            for i in 0..n {
                adv[2][i] += tc.buoyancy * t[i];
            }
            t_adv = Some(ta);
        }
        for c in 0..3 {
            self.gs.average(comm, &mut adv[c]);
        }
        // Recycle the expiring ring slot before inserting so the push never
        // grows the Vec and the buffers return to the arena.
        if self.adv_hist.len() == 3 {
            let old = self.adv_hist.pop().expect("ring non-empty");
            self.ws.put3(old);
        }
        self.adv_hist.insert(0, adv);
        if let Some(mut ta) = t_adv {
            self.gs.average(comm, &mut ta);
            if self.t_adv_hist.len() == 3 {
                let old = self.t_adv_hist.pop().expect("ring non-empty");
                self.ws.put(old);
            }
            self.t_adv_hist.insert(0, ta);
        }
        drop(sp);
        self.note_block_phase(comm, BlockPhase::Advection);

        // 2. Tentative velocity û. (Pure local arithmetic: charges no
        // virtual time, so it carries no span.)
        let mut u_hat: [Vec<f64>; 3] = [self.ws.take(), self.ws.take(), self.ws.take()];
        for c in 0..3 {
            for (j, &bj) in bprev.iter().enumerate() {
                let uj: &[f64] = if j == 0 {
                    &self.u[c]
                } else {
                    &self.u_hist[j - 1][c]
                };
                let coeff = -bj / b0;
                for i in 0..n {
                    u_hat[c][i] += coeff * uj[i];
                }
            }
            for (j, &aj) in a.iter().enumerate() {
                let nj = &self.adv_hist[j.min(self.adv_hist.len() - 1)][c];
                let coeff = dt / b0 * aj;
                for i in 0..n {
                    u_hat[c][i] += coeff * nj[i];
                }
            }
        }

        // 3. Pressure Poisson.
        let sp = comm.span("sem/pressure");
        let mut div = self.ws.take_uninit();
        self.ops.div(
            comm,
            &u_hat[0],
            &u_hat[1],
            &u_hat[2],
            &mut div,
            &mut self.scratch,
        );
        let mut b_p = self.ws.take_uninit();
        for i in 0..n {
            b_p[i] = -h0 * self.mass_diag[i] * div[i];
        }
        self.ws.put(div);
        self.gs.sum(comm, &mut b_p);
        for i in 0..n {
            b_p[i] *= self.p_mask[i];
        }
        let p_cfg = CgConfig {
            project_mean: self.p_fix_mean,
            ..self.cfg.pressure_cg
        };
        let ops = &self.ops;
        let arena = &mut self.block_arena;
        let pressure = cg::solve(
            comm,
            &self.gs,
            |comm, x, out| ops.stiffness_apply_blocked(comm, x, out, arena),
            &b_p,
            &mut self.p,
            &self.p_diag_inv,
            &self.p_mask,
            &p_cfg,
            &mut self.ws,
        );
        self.ws.put(b_p);
        drop(sp);
        self.note_block_phase(comm, BlockPhase::Pressure);

        // 4. Projection u** = û − (Δt/b₀)∇p.
        let sp = comm.span("sem/project");
        let mut gx = self.ws.take_uninit();
        let mut gy = self.ws.take_uninit();
        let mut gz = self.ws.take_uninit();
        self.ops.grad(comm, &self.p, &mut gx, &mut gy, &mut gz);
        self.gs.average(comm, &mut gx);
        self.gs.average(comm, &mut gy);
        self.gs.average(comm, &mut gz);
        let proj = dt / b0;
        for i in 0..n {
            u_hat[0][i] -= proj * gx[i];
            u_hat[1][i] -= proj * gy[i];
            u_hat[2][i] -= proj * gz[i];
        }
        self.ws.put3([gx, gy, gz]);
        drop(sp);
        self.note_block_phase(comm, BlockPhase::Project);

        // Save current velocity into history before overwriting.
        let mut u_old: [Vec<f64>; 3] = [
            self.ws.take_uninit(),
            self.ws.take_uninit(),
            self.ws.take_uninit(),
        ];
        for c in 0..3 {
            u_old[c].copy_from_slice(&self.u[c]);
        }

        // 5. Viscous Helmholtz per component.
        let sp = comm.span("sem/viscous");
        let nu = self.cfg.viscosity;
        let mut h_diag_inv = self.ws.take_uninit();
        for i in 0..n {
            let d = h0 * self.mass_diag_assembled[i] + nu * self.stiff_diag_assembled[i];
            h_diag_inv[i] = 1.0 / d;
        }
        let mut velocity = [CgResult {
            iterations: 0,
            residual: 0.0,
            converged: true,
        }; 3];
        for c in 0..3 {
            let report = self.helmholtz_solve(comm, h0, nu, &u_hat[c], c, &h_diag_inv);
            velocity[c] = report;
        }
        self.ws.put(h_diag_inv);
        self.ws.put3(u_hat);
        if self.u_hist.len() == 2 {
            let old = self.u_hist.pop().expect("ring non-empty");
            self.ws.put3(old);
        }
        self.u_hist.insert(0, u_old);
        drop(sp);
        self.note_block_phase(comm, BlockPhase::Viscous);

        // 6. Temperature advection–diffusion.
        let temperature = if self.cfg.temperature.is_some() {
            let report = {
                let _sp = comm.span("sem/temperature");
                self.temperature_step(comm, k, b0, dt)
            };
            self.note_block_phase(comm, BlockPhase::Temperature);
            Some(report)
        } else {
            None
        };

        // Stabilization: modal filter on the advected fields, then restore
        // boundary values and continuity.
        let sp = comm.span("sem/filter");
        if let Some(fm) = self.filter_matrix.as_ref() {
            let fmt = self
                .filter_matrix_t
                .as_ref()
                .expect("transpose built alongside filter matrix");
            for c in 0..3 {
                self.ops
                    .apply_tensor_op(comm, fm, fmt, &mut self.u[c], &mut self.scratch);
                self.gs.average(comm, &mut self.u[c]);
                for i in 0..n {
                    self.u[c][i] = self.u[c][i] * self.vel_mask[c][i] + self.vel_vals[c][i];
                }
            }
            if let Some(t) = self.t.as_mut() {
                self.ops.apply_tensor_op(comm, fm, fmt, t, &mut self.scratch);
                self.gs.average(comm, t);
                for i in 0..n {
                    t[i] = t[i] * self.t_mask[i] + self.t_vals[i];
                }
            }
        }
        drop(sp);
        self.note_block_phase(comm, BlockPhase::Filter);

        // Diagnostics: divergence of the end-of-step velocity.
        let sp = comm.span("sem/diagnostics");
        let mut div_new = self.ws.take_uninit();
        self.ops.div(
            comm,
            &self.u[0],
            &self.u[1],
            &self.u[2],
            &mut div_new,
            &mut self.scratch,
        );
        let w = self.gs.mult_inv();
        let local: f64 = div_new
            .iter()
            .zip(&self.mass_diag)
            .zip(w)
            .map(|((&d, &m), &wi)| d * d * m * wi)
            .sum();
        let divergence = comm.allreduce(local, ReduceOp::Sum).sqrt();
        self.ws.put(div_new);
        drop(sp);
        self.note_block_phase(comm, BlockPhase::Diagnostics);

        // Overlap accounting for every gather-scatter in this step: the
        // fraction of exchange latency hidden behind interior compute.
        let overlap = self.gs.take_overlap();
        if let Some(instr) = &self.block_instr {
            instr.overlap_ratio.set(overlap.ratio());
        }

        self.step_index += 1;
        self.time += dt;
        self.step_hist
            .get_or_insert_with(|| comm.telemetry().histogram("sem/step_time"))
            .observe(comm.now() - t_step_start);
        StepReport {
            step: self.step_index,
            time: self.time,
            pressure,
            velocity,
            temperature,
            divergence,
        }
    }

    /// Solve `(h0·M + ν·A)·u_c = h0·M·u**` with Dirichlet lifting; writes
    /// the new component into `self.u[c]`.
    fn helmholtz_solve(
        &mut self,
        comm: &mut Comm,
        h0: f64,
        nu: f64,
        rhs_field: &[f64],
        c: usize,
        h_diag_inv: &[f64],
    ) -> CgResult {
        let n = self.n_nodes();

        // b = h0·M·u** − H·x_bc, assembled and masked. (b, ax, x are
        // workspace buffers, fully overwritten before use.)
        let mut b = self.ws.take_uninit();
        for i in 0..n {
            b[i] = h0 * self.mass_diag[i] * rhs_field[i];
        }
        // H·x_bc = h0·M·x_bc + ν·A·x_bc — one fused blocked apply.
        let mut ax = self.ws.take_uninit();
        self.ops.helmholtz_apply_blocked(
            comm,
            nu,
            h0,
            &self.mass_diag,
            &self.vel_vals[c],
            &mut ax,
            &mut self.block_arena,
        );
        for i in 0..n {
            b[i] -= ax[i];
        }
        self.gs.sum(comm, &mut b);
        for i in 0..n {
            b[i] *= self.vel_mask[c][i];
        }

        // Initial guess: interior part of the current solution.
        let mut x = self.ws.take_uninit();
        for i in 0..n {
            x[i] = self.u[c][i] * self.vel_mask[c][i];
        }
        let ops = &self.ops;
        let mass_diag = &self.mass_diag;
        let arena = &mut self.block_arena;
        let result = cg::solve(
            comm,
            &self.gs,
            |comm, v, out| ops.helmholtz_apply_blocked(comm, nu, h0, mass_diag, v, out, arena),
            &b,
            &mut x,
            h_diag_inv,
            &self.vel_mask[c],
            &self.cfg.velocity_cg,
            &mut self.ws,
        );
        for i in 0..n {
            self.u[c][i] = x[i] + self.vel_vals[c][i];
        }
        self.ws.put(b);
        self.ws.put(ax);
        self.ws.put(x);
        result
    }

    /// Advance the temperature equation one step (mirrors the velocity
    /// update without pressure).
    fn temperature_step(&mut self, comm: &mut Comm, k: usize, b0: f64, dt: f64) -> CgResult {
        let n = self.n_nodes();
        let (_, bprev) = bdf_coeffs(k);
        let a = ext_coeffs(k);
        let h0 = b0 / dt;
        let kappa = self
            .cfg
            .temperature
            .as_ref()
            .expect("temperature config")
            .diffusivity;

        let mut t_hat = self.ws.take();
        {
            let t_now = self.t.as_deref().expect("temperature field");
            for (j, &bj) in bprev.iter().enumerate() {
                let tj: &[f64] = if j == 0 { t_now } else { &self.t_hist[j - 1] };
                let coeff = -bj / b0;
                for i in 0..n {
                    t_hat[i] += coeff * tj[i];
                }
            }
        }
        for (j, &aj) in a.iter().enumerate() {
            let nj = &self.t_adv_hist[j.min(self.t_adv_hist.len() - 1)];
            let coeff = dt / b0 * aj;
            for i in 0..n {
                t_hat[i] += coeff * nj[i];
            }
        }

        let mut h_diag_inv = self.ws.take_uninit();
        for i in 0..n {
            h_diag_inv[i] =
                1.0 / (h0 * self.mass_diag_assembled[i] + kappa * self.stiff_diag_assembled[i]);
        }

        let mut b = self.ws.take_uninit();
        for i in 0..n {
            b[i] = h0 * self.mass_diag[i] * t_hat[i];
        }
        let mut ax = self.ws.take_uninit();
        self.ops.helmholtz_apply_blocked(
            comm,
            kappa,
            h0,
            &self.mass_diag,
            &self.t_vals,
            &mut ax,
            &mut self.block_arena,
        );
        for i in 0..n {
            b[i] -= ax[i];
        }
        self.gs.sum(comm, &mut b);
        for i in 0..n {
            b[i] *= self.t_mask[i];
        }

        let mut x = self.ws.take_uninit();
        {
            let t_now = self.t.as_deref().expect("temperature field");
            for i in 0..n {
                x[i] = t_now[i] * self.t_mask[i];
            }
        }
        let ops = &self.ops;
        let mass_diag = &self.mass_diag;
        let arena = &mut self.block_arena;
        let t_mask = &self.t_mask;
        let t_cg = self
            .cfg
            .temperature
            .as_ref()
            .expect("temperature config")
            .cg;
        let result = cg::solve(
            comm,
            &self.gs,
            |comm, v, out| ops.helmholtz_apply_blocked(comm, kappa, h0, mass_diag, v, out, arena),
            &b,
            &mut x,
            &h_diag_inv,
            t_mask,
            &t_cg,
            &mut self.ws,
        );
        let mut t_new = self.ws.take_uninit();
        for i in 0..n {
            t_new[i] = x[i] + self.t_vals[i];
        }
        if self.t_hist.len() == 2 {
            let old = self.t_hist.pop().expect("ring non-empty");
            self.ws.put(old);
        }
        let t = self.t.as_mut().expect("temperature field");
        self.t_hist.insert(0, std::mem::replace(t, t_new));
        self.ws.put(t_hat);
        self.ws.put(h_diag_inv);
        self.ws.put(b);
        self.ws.put(ax);
        self.ws.put(x);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Bc, MeshSpec};
    use commsim::{run_ranks, MachineModel};
    use std::sync::Arc;

    /// 2-D Taylor–Green vortex in a fully periodic box: analytic decay
    /// KE(t) = KE(0)·e^{−4νt}.
    fn taylor_green(ranks: usize, steps: usize) -> (f64, f64, f64) {
        let res = run_ranks(ranks, MachineModel::test_tiny(), move |comm| {
            use std::f64::consts::PI;
            let l = 2.0 * PI;
            let spec = Arc::new(MeshSpec::box_mesh(
                5,
                [3, 3, 2],
                [l, l, l],
                [true, true, true],
            ));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let u0 = [
                mesh.eval_nodal(|x| x[0].sin() * x[1].cos()),
                mesh.eval_nodal(|x| -x[0].cos() * x[1].sin()),
                mesh.eval_nodal(|_| 0.0),
            ];
            let nu = 0.05;
            let dt = 2e-3;
            let cfg = SolverConfig {
                viscosity: nu,
                dt,
                bdf_order: 2,
                pressure_cg: CgConfig {
                    tol: 1e-9,
                    max_iter: 400,
                    ..Default::default()
                },
                velocity_cg: CgConfig {
                    tol: 1e-10,
                    max_iter: 400,
                    ..Default::default()
                },
                body_force: [0.0; 3],
                filter: None,
                temperature: None,
            };
            let bcs = FlowBcs {
                velocity: [BcSet::all_neumann(); 3],
                pressure: BcSet::all_neumann(),
            };
            let mut solver = FlowSolver::new(comm, mesh, cfg, bcs, u0, None);
            let ke0 = solver.kinetic_energy(comm);
            let mut max_div: f64 = 0.0;
            for _ in 0..steps {
                let r = solver.step(comm);
                assert!(r.pressure.converged, "pressure diverged: {r:?}");
                max_div = max_div.max(r.divergence);
            }
            let ke = solver.kinetic_energy(comm);
            let expected = ke0 * (-4.0 * nu * solver.time()).exp();
            (ke, expected, max_div)
        });
        res[0]
    }

    #[test]
    fn taylor_green_energy_decay_matches_theory() {
        let (ke, expected, max_div) = taylor_green(1, 40);
        let rel = (ke - expected).abs() / expected;
        assert!(rel < 0.02, "KE {ke} vs expected {expected} (rel {rel})");
        assert!(max_div < 0.2, "divergence too large: {max_div}");
    }

    #[test]
    fn taylor_green_parallel_matches_serial() {
        let (ke1, _, _) = taylor_green(1, 10);
        let (ke2, _, _) = taylor_green(2, 10);
        assert!(
            (ke1 - ke2).abs() < 1e-8 * ke1.abs().max(1.0),
            "serial {ke1} vs 2 ranks {ke2}"
        );
    }

    #[test]
    fn stokes_decay_in_closed_box_stays_bounded_and_decays() {
        // No-slip box, initial swirl, no forcing: energy must decay
        // monotonically (viscous dissipation) and stay finite.
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(4, [2, 2, 2], [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            use std::f64::consts::PI;
            let u0 = [
                mesh.eval_nodal(|x| (PI * x[0]).sin() * (PI * x[1]).cos() * 0.1),
                mesh.eval_nodal(|x| -(PI * x[0]).cos() * (PI * x[1]).sin() * 0.1),
                mesh.eval_nodal(|_| 0.0),
            ];
            let cfg = SolverConfig {
                viscosity: 0.05,
                dt: 1e-3,
                bdf_order: 2,
                ..Default::default()
            };
            let bcs = FlowBcs {
                velocity: [BcSet::all_dirichlet_zero(); 3],
                pressure: BcSet::all_neumann(),
            };
            let mut solver = FlowSolver::new(comm, mesh, cfg, bcs, u0, None);
            let ke0 = solver.kinetic_energy(comm);
            let mut kes = Vec::new();
            for _ in 0..10 {
                solver.step(comm);
                kes.push(solver.kinetic_energy(comm));
            }
            (ke0, kes)
        });
        let (ke0, kes) = res[0].clone();
        assert!(kes[9] < ke0, "energy must decay: {ke0} -> {}", kes[9]);
        for w in kes.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "non-monotone energy: {kes:?}");
        }
        assert!(kes[9].is_finite() && kes[9] >= 0.0);
    }

    #[test]
    fn temperature_diffuses_to_conduction_profile() {
        // Zero flow, T(bottom)=1, T(top)=0: the steady state is linear in
        // z, so T at mid-height tends to 0.5.
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(
                3,
                [1, 1, 2],
                [1.0; 3],
                [true, true, false],
            ));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let u0 = [
                mesh.eval_nodal(|_| 0.0),
                mesh.eval_nodal(|_| 0.0),
                mesh.eval_nodal(|_| 0.0),
            ];
            let t0 = mesh.eval_nodal(|_| 0.0);
            let t_bc = BcSet {
                faces: [
                    Bc::Neumann,
                    Bc::Neumann,
                    Bc::Neumann,
                    Bc::Neumann,
                    Bc::Dirichlet(1.0),
                    Bc::Dirichlet(0.0),
                ],
                solid_surface: Bc::Neumann,
            };
            let cfg = SolverConfig {
                viscosity: 1.0,
                dt: 0.02,
                bdf_order: 2,
                temperature: Some(TemperatureConfig {
                    diffusivity: 1.0,
                    buoyancy: 0.0,
                    bc: t_bc,
                    cg: CgConfig {
                        tol: 1e-10,
                        max_iter: 300,
                        ..Default::default()
                    },
                }),
                ..Default::default()
            };
            let bcs = FlowBcs {
                velocity: [BcSet::all_dirichlet_zero(); 3],
                pressure: BcSet::all_neumann(),
            };
            let mut solver = FlowSolver::new(comm, mesh, cfg, bcs, u0, Some(t0));
            for _ in 0..60 {
                let r = solver.step(comm);
                assert!(r.temperature.unwrap().converged);
            }
            // Probe T at a node with z = 0.5 (element boundary plane).
            let l = solver.mesh.layout();
            let t = solver.field_device(FieldId::Temperature).unwrap();
            let mut probe = None;
            for le in 0..solver.mesh.elems.len() {
                for k in 0..l.np {
                    let x = solver.mesh.node_coords(le, 0, 0, k);
                    if (x[2] - 0.5).abs() < 1e-12 {
                        probe = Some(t[l.idx(le, 0, 0, k)]);
                    }
                }
            }
            probe
        });
        for p in res {
            let t_mid = p.expect("found a mid-height node");
            assert!((t_mid - 0.5).abs() < 0.02, "T(z=0.5) = {t_mid}");
        }
    }

    #[test]
    fn buoyancy_drives_flow_from_rest() {
        // Unstable stratification + buoyancy: kinetic energy must grow from
        // a tiny perturbation (convection onset).
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(
                4,
                [2, 1, 2],
                [2.0, 1.0, 1.0],
                [true, true, false],
            ));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let u0 = [
                mesh.eval_nodal(|_| 0.0),
                mesh.eval_nodal(|_| 0.0),
                mesh.eval_nodal(|_| 0.0),
            ];
            // Hot below, cold above, with a sinusoidal tilt to break symmetry.
            let t0 = mesh.eval_nodal(|x| (1.0 - x[2]) + 0.01 * (std::f64::consts::PI * x[0]).sin());
            let t_bc = BcSet {
                faces: [
                    Bc::Neumann,
                    Bc::Neumann,
                    Bc::Neumann,
                    Bc::Neumann,
                    Bc::Dirichlet(1.0),
                    Bc::Dirichlet(0.0),
                ],
                solid_surface: Bc::Neumann,
            };
            let cfg = SolverConfig {
                viscosity: 0.01,
                dt: 5e-3,
                bdf_order: 2,
                temperature: Some(TemperatureConfig {
                    diffusivity: 0.01,
                    buoyancy: 10.0,
                    bc: t_bc,
                    cg: CgConfig {
                        tol: 1e-8,
                        max_iter: 300,
                        ..Default::default()
                    },
                }),
                ..Default::default()
            };
            let bcs = FlowBcs {
                velocity: [BcSet::all_dirichlet_zero(); 3],
                pressure: BcSet::all_neumann(),
            };
            let mut solver = FlowSolver::new(comm, mesh, cfg, bcs, u0, Some(t0));
            for _ in 0..30 {
                solver.step(comm);
            }
            (solver.kinetic_energy(comm), solver.max_velocity(comm))
        });
        let (ke, umax) = res[0];
        assert!(ke > 1e-10, "buoyancy failed to drive flow: KE = {ke}");
        assert!(umax.is_finite() && umax < 100.0, "unstable: |u| = {umax}");
    }

    #[test]
    fn modal_filter_barely_perturbs_resolved_flow_and_keeps_it_stable() {
        // A well-resolved TGV with and without the filter: the filter acts
        // on unresolved modes only, so the decay must stay within a small
        // margin of the analytic rate.
        let run = |filter: Option<FilterConfig>| {
            run_ranks(1, MachineModel::test_tiny(), move |comm| {
                use std::f64::consts::PI;
                let l = 2.0 * PI;
                let spec = Arc::new(MeshSpec::box_mesh(5, [3, 3, 2], [l, l, l], [true; 3]));
                let mesh = LocalMesh::new(spec, 0, 1);
                let u0 = [
                    mesh.eval_nodal(|x| x[0].sin() * x[1].cos()),
                    mesh.eval_nodal(|x| -x[0].cos() * x[1].sin()),
                    mesh.eval_nodal(|_| 0.0),
                ];
                let nu = 0.05;
                let cfg = SolverConfig {
                    viscosity: nu,
                    dt: 2e-3,
                    bdf_order: 2,
                    filter,
                    ..Default::default()
                };
                let mut solver = FlowSolver::new(
                    comm,
                    mesh,
                    cfg,
                    FlowBcs {
                        velocity: [BcSet::all_neumann(); 3],
                        pressure: BcSet::all_neumann(),
                    },
                    u0,
                    None,
                );
                let ke0 = solver.kinetic_energy(comm);
                for _ in 0..20 {
                    solver.step(comm);
                }
                let expected = ke0 * (-4.0 * nu * solver.time()).exp();
                (solver.kinetic_energy(comm), expected)
            })[0]
        };
        let (ke_plain, expected) = run(None);
        let (ke_filtered, _) = run(Some(FilterConfig {
            strength: 0.05,
            modes: 1,
        }));
        assert!((ke_plain - expected).abs() / expected < 0.02);
        assert!(
            (ke_filtered - expected).abs() / expected < 0.05,
            "filtered {ke_filtered} vs analytic {expected}"
        );
        // And it must not be destabilizing.
        assert!(ke_filtered.is_finite() && ke_filtered > 0.0);
    }

    #[test]
    fn body_force_drives_poiseuille_flow() {
        // Plane channel: periodic x/y, no-slip plates at z = 0, 1, constant
        // force f in x. Steady solution u(z) = (f/2ν)·z(1−z), with
        // centerline maximum f/(8ν).
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let f = 0.1;
            let nu = 0.5; // fast viscous relaxation to steady state
            let spec = Arc::new(MeshSpec::box_mesh(
                4,
                [1, 1, 2],
                [1.0, 1.0, 1.0],
                [true, true, false],
            ));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let u0 = [
                mesh.eval_nodal(|_| 0.0),
                mesh.eval_nodal(|_| 0.0),
                mesh.eval_nodal(|_| 0.0),
            ];
            let cfg = SolverConfig {
                viscosity: nu,
                dt: 5e-3,
                bdf_order: 2,
                body_force: [f, 0.0, 0.0],
                velocity_cg: CgConfig {
                    tol: 1e-11,
                    max_iter: 400,
                    ..Default::default()
                },
                ..Default::default()
            };
            let bcs = FlowBcs {
                velocity: [BcSet {
                    faces: [
                        crate::mesh::Bc::Neumann,
                        crate::mesh::Bc::Neumann,
                        crate::mesh::Bc::Neumann,
                        crate::mesh::Bc::Neumann,
                        crate::mesh::Bc::Dirichlet(0.0),
                        crate::mesh::Bc::Dirichlet(0.0),
                    ],
                    solid_surface: crate::mesh::Bc::Neumann,
                }; 3],
                pressure: BcSet::all_neumann(),
            };
            let mut solver = FlowSolver::new(comm, mesh, cfg, bcs, u0, None);
            // Viscous timescale H²/ν = 2; run to t = 4.
            for _ in 0..800 {
                solver.step(comm);
            }
            // Probe the centerline (z = 0.5 exists at the element interface).
            let l = solver.mesh.layout();
            let ux = solver.field_device(FieldId::VelX).unwrap();
            let mut centerline = None;
            for le in 0..solver.mesh.elems.len() {
                for k in 0..l.np {
                    let x = solver.mesh.node_coords(le, 0, 0, k);
                    if (x[2] - 0.5).abs() < 1e-12 {
                        centerline = Some(ux[l.idx(le, 0, 0, k)]);
                    }
                }
            }
            (centerline, f / (8.0 * nu))
        });
        for (probe, exact) in res {
            if let Some(u_mid) = probe {
                assert!(
                    (u_mid - exact).abs() < 0.05 * exact,
                    "centerline {u_mid} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn vorticity_of_taylor_green_matches_analytic() {
        // TGV: u = sin x cos y, v = −cos x sin y
        //   ⇒ ω_z = ∂x v − ∂y u = sin x sin y + sin x sin y = 2 sin x sin y.
        let err = run_ranks(1, MachineModel::test_tiny(), |comm| {
            use std::f64::consts::PI;
            let l = 2.0 * PI;
            let spec = Arc::new(MeshSpec::box_mesh(6, [2, 2, 1], [l, l, l], [true; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let exact = mesh.eval_nodal(|x| 2.0 * x[0].sin() * x[1].sin());
            let u0 = [
                mesh.eval_nodal(|x| x[0].sin() * x[1].cos()),
                mesh.eval_nodal(|x| -x[0].cos() * x[1].sin()),
                mesh.eval_nodal(|_| 0.0),
            ];
            let mut solver = FlowSolver::new(
                comm,
                mesh,
                SolverConfig::default(),
                FlowBcs {
                    velocity: [BcSet::all_neumann(); 3],
                    pressure: BcSet::all_neumann(),
                },
                u0,
                None,
            );
            let [_, _, wz] = solver.vorticity_host(comm);
            wz.iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        });
        assert!(err[0] < 5e-3, "vorticity error {}", err[0]);
    }

    #[test]
    fn q_criterion_positive_in_tgv_core() {
        let q_max = run_ranks(1, MachineModel::test_tiny(), |comm| {
            use std::f64::consts::PI;
            let l = 2.0 * PI;
            let spec = Arc::new(MeshSpec::box_mesh(5, [2, 2, 1], [l, l, l], [true; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let u0 = [
                mesh.eval_nodal(|x| x[0].sin() * x[1].cos()),
                mesh.eval_nodal(|x| -x[0].cos() * x[1].sin()),
                mesh.eval_nodal(|_| 0.0),
            ];
            let mut solver = FlowSolver::new(
                comm,
                mesh,
                SolverConfig::default(),
                FlowBcs {
                    velocity: [BcSet::all_neumann(); 3],
                    pressure: BcSet::all_neumann(),
                },
                u0,
                None,
            );
            let q = solver.q_criterion_host(comm);
            q.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        });
        assert!(q_max[0] > 0.5, "TGV cores must have Q>0: {}", q_max[0]);
    }

    #[test]
    fn pooled_staging_pays_one_latency() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(2, [2, 2, 2], [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let n = mesh.layout().n_nodes();
            let zero = vec![0.0; n];
            let solver = FlowSolver::new(
                comm,
                mesh,
                SolverConfig::default(),
                FlowBcs {
                    velocity: [BcSet::all_dirichlet_zero(); 3],
                    pressure: BcSet::all_neumann(),
                },
                [zero.clone(), zero.clone(), zero],
                None,
            );
            let ids = [
                FieldId::VelX,
                FieldId::VelY,
                FieldId::VelZ,
                FieldId::Pressure,
            ];
            let t0 = comm.now();
            let fields = solver.stage_many_to_host(comm, &ids);
            let pooled = comm.now() - t0;
            let t1 = comm.now();
            for id in ids {
                let _ = solver.stage_to_host(comm, id);
            }
            let separate = comm.now() - t1;
            (fields.len(), pooled, separate)
        });
        let (count, pooled, separate) = res[0];
        assert_eq!(count, 4);
        // Same bytes, but three fewer launch latencies.
        let latency = MachineModel::test_tiny().gpu.xfer_latency;
        assert!((separate - pooled - 3.0 * latency).abs() < 1e-12);
    }

    #[test]
    fn restart_with_bdf1_is_exact() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            use std::f64::consts::PI;
            let l = 2.0 * PI;
            let build = |comm: &mut Comm| {
                let spec = Arc::new(MeshSpec::box_mesh(4, [2, 2, 2], [l, l, l], [true; 3]));
                let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
                let u0 = [
                    mesh.eval_nodal(|x| x[0].sin() * x[1].cos()),
                    mesh.eval_nodal(|x| -x[0].cos() * x[1].sin()),
                    mesh.eval_nodal(|_| 0.0),
                ];
                let cfg = SolverConfig {
                    viscosity: 0.05,
                    dt: 2e-3,
                    bdf_order: 1,
                    ..Default::default()
                };
                FlowSolver::new(
                    comm,
                    mesh,
                    cfg,
                    FlowBcs {
                        velocity: [BcSet::all_neumann(); 3],
                        pressure: BcSet::all_neumann(),
                    },
                    u0,
                    None,
                )
            };
            // Reference: 6 straight steps.
            let mut a = build(comm);
            for _ in 0..3 {
                a.step(comm);
            }
            // Checkpoint state at step 3.
            let u = [
                a.field_device(FieldId::VelX).unwrap().to_vec(),
                a.field_device(FieldId::VelY).unwrap().to_vec(),
                a.field_device(FieldId::VelZ).unwrap().to_vec(),
            ];
            let p = a.field_device(FieldId::Pressure).unwrap().to_vec();
            let (si, t) = (a.step_index(), a.time());
            for _ in 0..3 {
                a.step(comm);
            }
            let ke_ref = a.kinetic_energy(comm);
            // Restart: fresh solver, restore, 3 more steps.
            let mut b = build(comm);
            b.restore(comm, si, t, u, p, None);
            assert_eq!(b.step_index(), 3);
            for _ in 0..3 {
                b.step(comm);
            }
            let ke_restart = b.kinetic_energy(comm);
            (ke_ref, ke_restart)
        });
        let (ke_ref, ke_restart) = res[0];
        assert!(
            (ke_ref - ke_restart).abs() < 1e-12 * ke_ref.max(1.0),
            "BDF1 restart must be exact: {ke_ref} vs {ke_restart}"
        );
    }

    #[test]
    fn stage_to_host_charges_d2h() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(2, [1, 1, 1], [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let n = mesh.layout().n_nodes();
            let zero = vec![0.0; n];
            let solver = FlowSolver::new(
                comm,
                mesh,
                SolverConfig::default(),
                FlowBcs {
                    velocity: [BcSet::all_dirichlet_zero(); 3],
                    pressure: BcSet::all_neumann(),
                },
                [zero.clone(), zero.clone(), zero],
                None,
            );
            let before = comm.stats().bytes_d2h;
            let staged = solver.stage_to_host(comm, FieldId::Pressure).unwrap();
            assert!(solver.stage_to_host(comm, FieldId::Temperature).is_none());
            (staged.len(), comm.stats().bytes_d2h - before)
        });
        let (len, bytes) = res[0];
        assert_eq!(bytes, (len * 8) as u64);
    }

    #[test]
    fn solver_charges_gpu_memory() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(3, [2, 2, 2], [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let n = mesh.layout().n_nodes();
            let zero = vec![0.0; n];
            let _solver = FlowSolver::new(
                comm,
                mesh,
                SolverConfig::default(),
                FlowBcs {
                    velocity: [BcSet::all_dirichlet_zero(); 3],
                    pressure: BcSet::all_neumann(),
                },
                [zero.clone(), zero.clone(), zero],
                None,
            );
            comm.accountant("gpu").current()
        });
        assert!(res[0] > 0, "solver must charge device memory");
    }
}
