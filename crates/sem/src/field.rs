//! Element-major field storage layout.
//!
//! SEM fields are stored unassembled ("L-vector"): every element carries its
//! own copy of shared face/edge/corner nodes, `(N+1)³` values per element,
//! laid out x-fastest. This is NekRS's native layout — tensor-product
//! kernels sweep contiguous element blocks — and gather–scatter reconciles
//! the duplicates.

/// Index arithmetic for element-major fields at one polynomial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLayout {
    /// Points per direction (N+1).
    pub np: usize,
    /// Number of local elements.
    pub n_elems: usize,
}

impl FieldLayout {
    /// Layout for `n_elems` elements at polynomial order `order`.
    pub fn new(order: usize, n_elems: usize) -> Self {
        Self {
            np: order + 1,
            n_elems,
        }
    }

    /// Nodes per element, (N+1)³.
    pub fn nodes_per_elem(&self) -> usize {
        self.np * self.np * self.np
    }

    /// Total local nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_elems * self.nodes_per_elem()
    }

    /// Flat index of node (i, j, k) in element `e` (x fastest).
    #[inline]
    pub fn idx(&self, e: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.np && j < self.np && k < self.np && e < self.n_elems);
        ((e * self.np + k) * self.np + j) * self.np + i
    }

    /// Inverse of [`FieldLayout::idx`]: (e, i, j, k) of a flat index.
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize, usize) {
        let i = idx % self.np;
        let j = (idx / self.np) % self.np;
        let k = (idx / (self.np * self.np)) % self.np;
        let e = idx / self.nodes_per_elem();
        (e, i, j, k)
    }

    /// Bytes one field of this layout occupies (f64).
    pub fn nbytes(&self) -> u64 {
        (self.n_nodes() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_coords_roundtrip() {
        let l = FieldLayout::new(3, 5);
        assert_eq!(l.np, 4);
        assert_eq!(l.nodes_per_elem(), 64);
        assert_eq!(l.n_nodes(), 320);
        for idx in 0..l.n_nodes() {
            let (e, i, j, k) = l.coords(idx);
            assert_eq!(l.idx(e, i, j, k), idx);
        }
    }

    #[test]
    fn x_is_fastest() {
        let l = FieldLayout::new(2, 1);
        assert_eq!(l.idx(0, 0, 0, 0), 0);
        assert_eq!(l.idx(0, 1, 0, 0), 1);
        assert_eq!(l.idx(0, 0, 1, 0), 3);
        assert_eq!(l.idx(0, 0, 0, 1), 9);
    }

    #[test]
    fn nbytes_counts_f64() {
        let l = FieldLayout::new(1, 2);
        assert_eq!(l.nbytes(), 2 * 8 * 8);
    }
}
