//! Jacobi-preconditioned conjugate gradient over assembled SEM operators.
//!
//! Works on unassembled (element-major) vectors: the operator callback
//! applies the local element operator; this module gather-scatters, masks
//! Dirichlet nodes, and computes multiplicity-weighted global inner
//! products via `allreduce` — two collectives per iteration, exactly the
//! communication signature NekRS's pressure/viscous solves show at scale.

use crate::gs::GatherScatter;
use crate::workspace::Workspace;
use commsim::{Comm, ReduceOp};

/// Solver controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Relative tolerance on the preconditioned residual norm.
    pub tol: f64,
    /// Absolute tolerance floor.
    pub abs_tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Project out the constant null space each iteration (pure-Neumann
    /// pressure solves in enclosed/periodic domains).
    pub project_mean: bool,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            abs_tol: 1e-12,
            max_iter: 200,
            project_mean: false,
        }
    }
}

/// Outcome of one solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm (weighted L2).
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Multiplicity-weighted global inner product (shared nodes counted once).
pub fn wdot(comm: &mut Comm, a: &[f64], b: &[f64], weights: &[f64]) -> f64 {
    comm.compute_gpu(2.0 * a.len() as f64, 3.0 * 8.0 * a.len() as f64);
    let local: f64 = a
        .iter()
        .zip(b)
        .zip(weights)
        .map(|((&x, &y), &w)| x * y * w)
        .sum();
    comm.allreduce(local, ReduceOp::Sum)
}

/// Solve `A x = b` where `apply` computes the *local unassembled* operator.
///
/// `b` must already be assembled (gather-scattered) and masked; `x` holds
/// the initial guess (assembled/continuous, zero on masked nodes) and is
/// overwritten with the solution. `diag_inv` is the inverse of the
/// assembled operator diagonal (with masked entries arbitrary), `mask` is 1
/// on free nodes and 0 on Dirichlet nodes. The four CG work vectors come
/// from `ws` and are returned to it, so repeated solves don't allocate.
#[allow(clippy::too_many_arguments)]
pub fn solve(
    comm: &mut Comm,
    gs: &GatherScatter,
    apply: impl FnMut(&mut Comm, &[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    diag_inv: &[f64],
    mask: &[f64],
    cfg: &CgConfig,
    ws: &mut Workspace,
) -> CgResult {
    let _sp = comm.span("sem/cg");
    debug_assert_eq!(ws.len(), b.len(), "workspace sized for a different mesh");
    // Every element of r/z/p/q is written before it is read.
    let mut r = ws.take_uninit();
    let mut z = ws.take_uninit();
    let mut p = ws.take_uninit();
    let mut q = ws.take_uninit();
    let result = solve_with(
        comm, gs, apply, b, x, diag_inv, mask, cfg, &mut r, &mut z, &mut p, &mut q,
    );
    ws.put(r);
    ws.put(z);
    ws.put(p);
    ws.put(q);
    result
}

#[allow(clippy::too_many_arguments)]
fn solve_with(
    comm: &mut Comm,
    gs: &GatherScatter,
    mut apply: impl FnMut(&mut Comm, &[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    diag_inv: &[f64],
    mask: &[f64],
    cfg: &CgConfig,
    r: &mut [f64],
    z: &mut [f64],
    p: &mut [f64],
    q: &mut [f64],
) -> CgResult {
    let n = b.len();
    let w = gs.mult_inv();

    // r = b - mask·GS(A x).
    apply(comm, x, &mut *q);
    gs.sum(comm, &mut *q);
    for i in 0..n {
        r[i] = b[i] - mask[i] * q[i];
    }
    if cfg.project_mean {
        remove_weighted_mean(comm, &mut *r, w, mask);
    }

    let norm_b = wdot(comm, b, b, w).sqrt();
    let target = (cfg.tol * norm_b).max(cfg.abs_tol);

    let mut rnorm = wdot(comm, &*r, &*r, w).sqrt();
    if rnorm <= target {
        return CgResult {
            iterations: 0,
            residual: rnorm,
            converged: true,
        };
    }

    for i in 0..n {
        z[i] = diag_inv[i] * r[i] * mask[i];
    }
    p.copy_from_slice(&*z);
    let mut rz = wdot(comm, &*r, &*z, w);

    let mut iterations = 0;
    while iterations < cfg.max_iter {
        iterations += 1;
        apply(comm, &*p, &mut *q);
        gs.sum(comm, &mut *q);
        for i in 0..n {
            q[i] *= mask[i];
        }
        let pq = wdot(comm, &*p, &*q, w);
        if pq.abs() < f64::MIN_POSITIVE * 1e10 {
            break; // operator degenerate on remaining subspace
        }
        let alpha = rz / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        if cfg.project_mean {
            remove_weighted_mean(comm, &mut *r, w, mask);
        }
        rnorm = wdot(comm, &*r, &*r, w).sqrt();
        if rnorm <= target {
            break;
        }
        for i in 0..n {
            z[i] = diag_inv[i] * r[i] * mask[i];
        }
        let rz_new = wdot(comm, &*r, &*z, w);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    if cfg.project_mean {
        // Pin the solution's mean to zero as well (it is only defined up to
        // a constant).
        remove_weighted_mean(comm, x, w, mask);
    }

    CgResult {
        iterations,
        residual: rnorm,
        converged: rnorm <= target,
    }
}

/// Subtract the multiplicity-weighted mean over free nodes from `v`.
fn remove_weighted_mean(comm: &mut Comm, v: &mut [f64], w: &[f64], mask: &[f64]) {
    let local_sum: f64 = v
        .iter()
        .zip(w)
        .zip(mask)
        .map(|((&x, &wi), &m)| x * wi * m)
        .sum();
    let local_count: f64 = w.iter().zip(mask).map(|(&wi, &m)| wi * m).sum();
    let mut both = [local_sum, local_count];
    comm.allreduce_vec(&mut both, ReduceOp::Sum);
    if both[1] > 0.0 {
        let mean = both[0] / both[1];
        for (x, &m) in v.iter_mut().zip(mask) {
            *x -= mean * m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Bc, BcSet, LocalMesh, MeshSpec};
    use crate::operators::Ops;
    use commsim::{run_ranks, MachineModel};
    use std::sync::Arc;

    /// Solve the Poisson problem −∇²u = f with homogeneous Dirichlet BCs
    /// and a manufactured solution, on `ranks` ranks.
    fn poisson_manufactured(ranks: usize, order: usize, elems: [usize; 3]) -> (f64, CgResult) {
        let results = run_ranks(ranks, MachineModel::test_tiny(), move |comm| {
            use std::f64::consts::PI;
            let spec = Arc::new(MeshSpec::box_mesh(order, elems, [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let gs = crate::gs::GatherScatter::new(&mesh, comm);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();

            // u = sin(πx) sin(πy) sin(πz), f = 3π² u.
            let exact =
                mesh.eval_nodal(|x| (PI * x[0]).sin() * (PI * x[1]).sin() * (PI * x[2]).sin());
            let f = exact.iter().map(|&u| 3.0 * PI * PI * u).collect::<Vec<_>>();

            let (mask, _) = mesh.dirichlet_mask(&BcSet {
                faces: [Bc::Dirichlet(0.0); 6],
                solid_surface: Bc::Neumann,
            });

            // b = GS(M f), masked.
            let mut b = vec![0.0; n];
            ops.mass_apply(comm, &f, &mut b);
            gs.sum(comm, &mut b);
            for i in 0..n {
                b[i] *= mask[i];
            }

            let mut diag = ops.stiffness_diag();
            gs.sum(comm, &mut diag);
            let diag_inv: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();

            let mut x = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            let mut ws = Workspace::new(n);
            let cfg = CgConfig {
                tol: 1e-10,
                max_iter: 500,
                ..Default::default()
            };
            let result = solve(
                comm,
                &gs,
                |comm, p, out| ops.stiffness_apply(comm, p, out, &mut scratch),
                &b,
                &mut x,
                &diag_inv,
                &mask,
                &cfg,
                &mut ws,
            );
            let err = x
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            (err, result)
        });
        results[0]
    }

    #[test]
    fn poisson_converges_to_manufactured_solution_single_rank() {
        let (err, res) = poisson_manufactured(1, 5, [2, 2, 2]);
        assert!(res.converged, "{res:?}");
        // Spectral accuracy: N=5 on 8 elements resolves sin(πx) to ~1e-4.
        assert!(err < 5e-4, "max err {err}");
    }

    #[test]
    fn poisson_parallel_matches_serial() {
        // Parallel summation order changes the CG trajectory slightly, so
        // compare the *discretization* errors, which must agree to well
        // within the discretization error itself.
        let (err1, _) = poisson_manufactured(1, 4, [2, 2, 4]);
        let (err3, res3) = poisson_manufactured(4, 4, [2, 2, 4]);
        assert!(res3.converged);
        assert!(err1 < 2e-3 && err3 < 2e-3);
        assert!(
            (err1 - err3).abs() < 0.5 * err1.max(err3),
            "serial {err1} vs parallel {err3}"
        );
    }

    #[test]
    fn poisson_error_converges_spectrally_in_p() {
        // p-refinement on a fixed mesh: the error of the manufactured
        // solution must fall steeply (spectral convergence), the defining
        // property of the SEM discretization.
        let errors: Vec<f64> = [2usize, 3, 4, 5]
            .iter()
            .map(|&order| poisson_manufactured(1, order, [2, 2, 2]).0)
            .collect();
        for w in errors.windows(2) {
            assert!(
                w[1] < w[0] * 0.5,
                "error must at least halve per order: {errors:?}"
            );
        }
        assert!(
            errors[3] < errors[0] * 1e-3,
            "four orders must buy >= 3 decades: {errors:?}"
        );
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(2, [2, 2, 2], [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let gs = crate::gs::GatherScatter::new(&mesh, comm);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let b = vec![0.0; n];
            let mut x = vec![0.0; n];
            let diag_inv = vec![1.0; n];
            let mask = vec![1.0; n];
            let mut scratch = vec![0.0; n];
            let mut ws = Workspace::new(n);
            solve(
                comm,
                &gs,
                |comm, p, out| ops.stiffness_apply(comm, p, out, &mut scratch),
                &b,
                &mut x,
                &diag_inv,
                &mask,
                &CgConfig::default(),
                &mut ws,
            )
        });
        assert_eq!(res[0].iterations, 0);
        assert!(res[0].converged);
    }

    #[test]
    fn neumann_poisson_with_mean_projection() {
        // Pure Neumann: periodic box, u = sin(2πx), f = 4π²sin(2πx).
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            use std::f64::consts::PI;
            let spec = Arc::new(MeshSpec::box_mesh(5, [2, 1, 2], [1.0; 3], [true; 3]));
            let mesh = LocalMesh::new(spec, comm.rank(), comm.size());
            let gs = crate::gs::GatherScatter::new(&mesh, comm);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let exact = mesh.eval_nodal(|x| (2.0 * PI * x[0]).sin());
            let f: Vec<f64> = exact.iter().map(|&u| 4.0 * PI * PI * u).collect();
            let mut b = vec![0.0; n];
            ops.mass_apply(comm, &f, &mut b);
            gs.sum(comm, &mut b);
            let mut diag = ops.stiffness_diag();
            gs.sum(comm, &mut diag);
            let diag_inv: Vec<f64> = diag.iter().map(|&d| 1.0 / d).collect();
            let mask = vec![1.0; n];
            let mut x = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            let mut ws = Workspace::new(n);
            let cfg = CgConfig {
                tol: 1e-10,
                max_iter: 400,
                project_mean: true,
                ..Default::default()
            };
            let r = solve(
                comm,
                &gs,
                |comm, p, out| ops.stiffness_apply(comm, p, out, &mut scratch),
                &b,
                &mut x,
                &diag_inv,
                &mask,
                &cfg,
                &mut ws,
            );
            let err = x
                .iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            (r.converged, err)
        });
        for (conv, err) in res {
            assert!(conv);
            assert!(err < 2e-3, "max err {err}");
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let spec = Arc::new(MeshSpec::box_mesh(4, [2, 2, 2], [1.0; 3], [false; 3]));
            let mesh = LocalMesh::new(spec, 0, 1);
            let gs = crate::gs::GatherScatter::new(&mesh, comm);
            let ops = Ops::new(&mesh);
            let n = mesh.layout().n_nodes();
            let (mask, _) = mesh.dirichlet_mask(&BcSet::all_dirichlet_zero());
            let mut b = mesh.eval_nodal(|x| x[0] * x[1]);
            gs.sum(comm, &mut b);
            for i in 0..n {
                b[i] *= mask[i];
            }
            let diag_inv = vec![1.0; n];
            let mut x = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            let mut ws = Workspace::new(n);
            let cfg = CgConfig {
                tol: 1e-30,
                abs_tol: 0.0,
                max_iter: 3,
                project_mean: false,
            };
            solve(
                comm,
                &gs,
                |comm, p, out| ops.stiffness_apply(comm, p, out, &mut scratch),
                &b,
                &mut x,
                &diag_inv,
                &mask,
                &cfg,
                &mut ws,
            )
        });
        assert_eq!(res[0].iterations, 3);
        assert!(!res[0].converged);
    }
}
