//! Lagrange basis on GLL points: barycentric interpolation and the
//! collocation derivative matrix.

use crate::quadrature::gll;

/// The 1-D reference element: GLL nodes, weights, barycentric weights, and
/// the dense derivative matrix `D[i][j] = ℓⱼ′(xᵢ)` stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis1d {
    /// Polynomial order N.
    pub order: usize,
    /// GLL nodes (N+1 of them).
    pub nodes: Vec<f64>,
    /// GLL quadrature weights.
    pub weights: Vec<f64>,
    /// Barycentric weights for stable interpolation.
    pub bary: Vec<f64>,
    /// Derivative matrix, row-major `(N+1)×(N+1)`.
    pub deriv: Vec<f64>,
}

impl Basis1d {
    /// Build the order-`n` basis.
    pub fn new(n: usize) -> Self {
        let (nodes, weights) = gll(n);
        let np = n + 1;
        let mut bary = vec![1.0; np];
        for i in 0..np {
            for j in 0..np {
                if i != j {
                    bary[i] *= nodes[i] - nodes[j];
                }
            }
            bary[i] = 1.0 / bary[i];
        }
        // D[i][j] = (b_j / b_i) / (x_i − x_j) for i≠j; D[i][i] = −Σ_{j≠i} D[i][j].
        let mut deriv = vec![0.0; np * np];
        for i in 0..np {
            let mut diag = 0.0;
            for j in 0..np {
                if i != j {
                    let d = (bary[j] / bary[i]) / (nodes[i] - nodes[j]);
                    deriv[i * np + j] = d;
                    diag -= d;
                }
            }
            deriv[i * np + i] = diag;
        }
        Self {
            order: n,
            nodes,
            weights,
            bary,
            deriv,
        }
    }

    /// Number of points (N+1).
    pub fn np(&self) -> usize {
        self.order + 1
    }

    /// Evaluate all Lagrange cardinal functions at `x` (barycentric form).
    pub fn eval_at(&self, x: f64) -> Vec<f64> {
        let np = self.np();
        // Exact hit on a node ⇒ cardinal vector.
        for (i, &xi) in self.nodes.iter().enumerate() {
            if (x - xi).abs() < 1e-14 {
                let mut e = vec![0.0; np];
                e[i] = 1.0;
                return e;
            }
        }
        let mut terms = vec![0.0; np];
        let mut denom = 0.0;
        for i in 0..np {
            terms[i] = self.bary[i] / (x - self.nodes[i]);
            denom += terms[i];
        }
        terms.iter().map(|t| t / denom).collect()
    }

    /// Interpolate nodal values `u` to point `x`.
    pub fn interpolate(&self, u: &[f64], x: f64) -> f64 {
        self.eval_at(x).iter().zip(u).map(|(l, v)| l * v).sum()
    }

    /// Apply the derivative matrix: `out[i] = Σ_j D[i][j] u[j]`.
    pub fn apply_deriv(&self, u: &[f64], out: &mut [f64]) {
        let np = self.np();
        debug_assert_eq!(u.len(), np);
        debug_assert_eq!(out.len(), np);
        for i in 0..np {
            let row = &self.deriv[i * np..(i + 1) * np];
            out[i] = row.iter().zip(u).map(|(d, v)| d * v).sum();
        }
    }

    /// The 1-D modal low-pass filter matrix `F = V·diag(σ)·V⁻¹` (row-major)
    /// of Fischer & Mullen: nodal values are transformed to the Legendre
    /// modal basis, the top `modes` coefficients are attenuated by up to
    /// `strength` (quadratic ramp), and transformed back. `F·u` preserves
    /// polynomials below the cutoff exactly.
    ///
    /// # Panics
    /// Panics when `modes` is 0 or exceeds N, or `strength` ∉ [0, 1].
    pub fn filter_matrix(&self, strength: f64, modes: usize) -> Vec<f64> {
        let np = self.np();
        assert!((1..np).contains(&modes), "filter needs 1..=N modes");
        assert!((0.0..=1.0).contains(&strength), "strength must be in [0,1]");
        // Vandermonde V[i][k] = P_k(x_i).
        let mut v = vec![0.0; np * np];
        for i in 0..np {
            for k in 0..np {
                v[i * np + k] = crate::quadrature::legendre(k, self.nodes[i]).0;
            }
        }
        let v_inv = invert_dense(&v, np);
        // σ_k: identity below the cutoff, quadratic roll-off above.
        let k0 = np - modes;
        let mut f = vec![0.0; np * np];
        for i in 0..np {
            for j in 0..np {
                let mut acc = 0.0;
                for k in 0..np {
                    let sigma = if k < k0 {
                        1.0
                    } else {
                        let t = (k - k0 + 1) as f64 / modes as f64;
                        1.0 - strength * t * t
                    };
                    acc += v[i * np + k] * sigma * v_inv[k * np + j];
                }
                f[i * np + j] = acc;
            }
        }
        f
    }
}

/// Dense matrix inverse by Gauss–Jordan with partial pivoting (basis-sized
/// matrices only: (N+1)² entries).
///
/// # Panics
/// Panics on singular input.
fn invert_dense(m: &[f64], n: usize) -> Vec<f64> {
    let mut a = m.to_vec();
    let mut inv = vec![0.0; n * n];
    for (i, row) in inv.chunks_mut(n).enumerate() {
        row[i] = 1.0;
    }
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))
            .expect("nonempty");
        assert!(
            a[pivot_row * n + col].abs() > 1e-13,
            "singular matrix in basis filter construction"
        );
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
                inv.swap(col * n + j, pivot_row * n + j);
            }
        }
        let p = a[col * n + col];
        for j in 0..n {
            a[col * n + j] /= p;
            inv[col * n + j] /= p;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r * n + col];
            if factor != 0.0 {
                for j in 0..n {
                    a[r * n + j] -= factor * a[col * n + j];
                    inv[r * n + j] -= factor * inv[col * n + j];
                }
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_of_constant_is_zero() {
        for n in 1..9 {
            let b = Basis1d::new(n);
            let u = vec![3.5; b.np()];
            let mut du = vec![0.0; b.np()];
            b.apply_deriv(&u, &mut du);
            for d in du {
                assert!(d.abs() < 1e-11, "n={n}");
            }
        }
    }

    #[test]
    fn derivative_is_exact_for_polynomials_up_to_n() {
        for n in 2..9 {
            let b = Basis1d::new(n);
            for k in 1..=n {
                let u: Vec<f64> = b.nodes.iter().map(|x| x.powi(k as i32)).collect();
                let mut du = vec![0.0; b.np()];
                b.apply_deriv(&u, &mut du);
                for (i, &x) in b.nodes.iter().enumerate() {
                    let exact = k as f64 * x.powi(k as i32 - 1);
                    assert!(
                        (du[i] - exact).abs() < 1e-9,
                        "n={n} k={k} i={i}: {} vs {exact}",
                        du[i]
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_reproduces_nodal_values() {
        let b = Basis1d::new(6);
        let u: Vec<f64> = b.nodes.iter().map(|x| (2.0 * x).sin()).collect();
        for (i, &x) in b.nodes.iter().enumerate() {
            assert!((b.interpolate(&u, x) - u[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn interpolation_is_spectrally_accurate_for_smooth_functions() {
        // sin interpolated at order 10 should be ~1e-9 accurate mid-element.
        let b = Basis1d::new(10);
        let u: Vec<f64> = b.nodes.iter().map(|x| x.sin()).collect();
        for &x in &[-0.55, 0.11, 0.77] {
            assert!((b.interpolate(&u, x) - x.sin()).abs() < 1e-9);
        }
    }

    #[test]
    fn cardinal_property_of_eval_at() {
        let b = Basis1d::new(5);
        for (i, &x) in b.nodes.iter().enumerate() {
            let l = b.eval_at(x);
            for (j, &lj) in l.iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((lj - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eval_partition_of_unity() {
        let b = Basis1d::new(7);
        for &x in &[-0.83, -0.2, 0.4, 0.999] {
            let s: f64 = b.eval_at(x).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn filter_preserves_low_order_polynomials() {
        let b = Basis1d::new(7);
        let f = b.filter_matrix(0.3, 2); // attenuate only modes 6, 7
        let np = b.np();
        for degree in 0..=5 {
            let u: Vec<f64> = b.nodes.iter().map(|x| x.powi(degree)).collect();
            for i in 0..np {
                let fu: f64 = (0..np).map(|j| f[i * np + j] * u[j]).sum();
                assert!(
                    (fu - u[i]).abs() < 1e-10,
                    "degree {degree} must pass through unchanged"
                );
            }
        }
    }

    #[test]
    fn filter_attenuates_the_highest_mode() {
        let b = Basis1d::new(6);
        let strength = 0.4;
        let f = b.filter_matrix(strength, 1);
        let np = b.np();
        // Highest Legendre mode sampled at the nodes.
        let u: Vec<f64> = b
            .nodes
            .iter()
            .map(|&x| crate::quadrature::legendre(6, x).0)
            .collect();
        for i in 0..np {
            let fu: f64 = (0..np).map(|j| f[i * np + j] * u[j]).sum();
            assert!(
                (fu - (1.0 - strength) * u[i]).abs() < 1e-10,
                "top mode must be scaled by 1−α"
            );
        }
    }

    #[test]
    fn zero_strength_filter_is_identity() {
        let b = Basis1d::new(5);
        let f = b.filter_matrix(0.0, 2);
        let np = b.np();
        for i in 0..np {
            for j in 0..np {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((f[i * np + j] - expected).abs() < 1e-11);
            }
        }
    }

    #[test]
    #[should_panic(expected = "modes")]
    fn filter_rejects_zero_modes() {
        Basis1d::new(4).filter_matrix(0.5, 0);
    }

    #[test]
    fn deriv_rows_sum_to_zero() {
        // D·1 = 0 exactly encodes consistency.
        let b = Basis1d::new(8);
        let np = b.np();
        for i in 0..np {
            let s: f64 = b.deriv[i * np..(i + 1) * np].iter().sum();
            assert!(s.abs() < 1e-11);
        }
    }
}
