//! The paper's two scientific workloads, at reduced ("laptop") scale.
//!
//! * [`pb146`] — the **pebble-bed reactor** case (§4.1): flow driven through
//!   a bed of spherical pebbles inside a duct. The production case is a
//!   body-fitted mesh around 146 pebbles; the substitution (DESIGN.md) is a
//!   Cartesian duct with solid-masked elements at deterministically packed
//!   pebble centers — same field content, same data movement, no-slip on
//!   pebble surfaces.
//! * [`rbc`] — the **Rayleigh–Bénard convection** mesoscale case (§4.2): a
//!   fluid layer heated from below in free-fall units (ν = √(Pr/Ra),
//!   κ = 1/√(Pr·Ra), buoyancy = T), periodic laterally, no-slip top/bottom.
//!
//! Each case yields a [`CaseSetup`] that any rank can `build` into a
//! [`FlowSolver`] for its slab of the mesh.

use crate::cg::CgConfig;
use crate::mesh::{Bc, BcSet, LocalMesh, MeshSpec};
use crate::navier_stokes::{FlowBcs, FlowSolver, SolverConfig, TemperatureConfig};
use commsim::Comm;
use std::sync::Arc;

/// Mesh/timestep knobs common to both cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseParams {
    /// Polynomial order N.
    pub order: usize,
    /// Global element counts.
    pub elems: [usize; 3],
    /// Timestep.
    pub dt: f64,
    /// Domain lengths override (None → the case's default). Weak-scaling
    /// harnesses grow the domain with the element count so element size —
    /// and hence solver conditioning — stays constant.
    pub lengths: Option<[f64; 3]>,
}

impl CaseParams {
    /// Default reduced-scale pebble-bed mesh (slab-partitionable to many
    /// ranks along z).
    pub fn pb146_default() -> Self {
        Self {
            order: 3,
            elems: [6, 6, 12],
            dt: 2e-3,
            lengths: None,
        }
    }

    /// Default reduced-scale RBC slab.
    pub fn rbc_default() -> Self {
        Self {
            order: 4,
            elems: [4, 4, 4],
            dt: 5e-3,
            lengths: None,
        }
    }
}

/// How the initial state is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitKind {
    /// Uniform axial inflow velocity (pebble bed).
    AxialInflow {
        /// Inlet velocity along +z.
        w_in: f64,
    },
    /// Conduction temperature profile with a sinusoidal perturbation (RBC).
    RbcPerturbed {
        /// Perturbation amplitude.
        amplitude: f64,
    },
}

/// Everything needed to instantiate the case on any rank.
#[derive(Debug, Clone)]
pub struct CaseSetup {
    /// Case name ("pb146", "rbc").
    pub name: String,
    /// Global mesh (with solids for the pebble bed).
    pub spec: Arc<MeshSpec>,
    /// Solver configuration.
    pub config: SolverConfig,
    /// Boundary conditions.
    pub bcs: FlowBcs,
    /// Initial-condition generator.
    pub init: InitKind,
}

impl CaseSetup {
    /// Build this rank's solver (slab partition by `comm.rank()`).
    pub fn build(&self, comm: &mut Comm) -> FlowSolver {
        let mesh = LocalMesh::new(Arc::clone(&self.spec), comm.rank(), comm.size());
        let (u0, t0) = match self.init {
            InitKind::AxialInflow { w_in } => {
                let u0 = [
                    mesh.eval_nodal(|_| 0.0),
                    mesh.eval_nodal(|_| 0.0),
                    mesh.eval_nodal(|_| w_in),
                ];
                (u0, None)
            }
            InitKind::RbcPerturbed { amplitude } => {
                let lz = self.spec.lengths[2];
                let lx = self.spec.lengths[0];
                let t0 = mesh.eval_nodal(move |x| {
                    (1.0 - x[2] / lz)
                        + amplitude
                            * (2.0 * std::f64::consts::PI * x[0] / lx).sin()
                            * (std::f64::consts::PI * x[2] / lz).sin()
                });
                let u0 = [
                    mesh.eval_nodal(|_| 0.0),
                    mesh.eval_nodal(|_| 0.0),
                    mesh.eval_nodal(|_| 0.0),
                ];
                (u0, Some(t0))
            }
        };
        FlowSolver::new(comm, mesh, self.config.clone(), self.bcs.clone(), u0, t0)
    }

    /// Global fluid element count (for load reporting).
    pub fn n_fluid_elems(&self) -> usize {
        self.spec.n_fluid_elems()
    }
}

/// Deterministic pebble centers: a jittered lattice filling the duct, like
/// a (very) idealized packed bed. `n` centers inside `lengths`, radius
/// returned alongside.
pub fn pebble_centers(n: usize, lengths: [f64; 3]) -> (Vec<[f64; 3]>, f64) {
    // Lattice dimensions close to n^(1/3) scaled by the box aspect.
    let volume = lengths[0] * lengths[1] * lengths[2];
    let spacing = (volume / n as f64).cbrt();
    // Ceil so the lattice always has capacity for n centers.
    let counts = [
        (lengths[0] / spacing).ceil().max(1.0) as usize,
        (lengths[1] / spacing).ceil().max(1.0) as usize,
        (lengths[2] / spacing).ceil().max(1.0) as usize,
    ];
    let mut centers = Vec::with_capacity(n);
    let mut rng_state: u64 = 0x9e3779b97f4a7c15;
    let mut next = move || {
        // xorshift64*: deterministic jitter without external dependencies.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        (rng_state.wrapping_mul(0x2545f4914f6cdd1d) >> 40) as f64 / (1u64 << 24) as f64 - 0.5
    };
    'outer: for kz in 0..counts[2] {
        for ky in 0..counts[1] {
            for kx in 0..counts[0] {
                if centers.len() >= n {
                    break 'outer;
                }
                let jitter = 0.15;
                let c = [
                    (kx as f64 + 0.5 + jitter * next()) * lengths[0] / counts[0] as f64,
                    (ky as f64 + 0.5 + jitter * next()) * lengths[1] / counts[1] as f64,
                    (kz as f64 + 0.5 + jitter * next()) * lengths[2] / counts[2] as f64,
                ];
                centers.push(c);
            }
        }
    }
    let radius = 0.30 * spacing;
    (centers, radius)
}

/// The pebble-bed reactor case with `n_pebbles` pebbles (146 in the paper).
pub fn pb146(params: &CaseParams, n_pebbles: usize) -> CaseSetup {
    let lengths = params.lengths.unwrap_or([1.0, 1.0, 2.0]);
    let mut spec = MeshSpec::box_mesh(params.order, params.elems, lengths, [false; 3]);
    let (centers, radius) = pebble_centers(n_pebbles, lengths);
    for c in &centers {
        spec.add_solid_sphere(*c, radius);
    }
    // Keep every z-layer partly fluid so any slab partition has work: un-mask
    // a layer that ended up fully solid (cannot happen with the default
    // radius, but cheap insurance for exotic parameters).
    for ez in 0..spec.elems[2] {
        let all_solid =
            (0..spec.elems[1]).all(|ey| (0..spec.elems[0]).all(|ex| spec.is_solid([ex, ey, ez])));
        if all_solid {
            let idx = spec.elem_index([0, 0, ez]);
            spec.solid[idx] = false;
        }
    }

    let w_in = 1.0;
    let no_slip_with_inflow = |component_value: f64| BcSet {
        faces: [
            Bc::Dirichlet(0.0), // x walls
            Bc::Dirichlet(0.0),
            Bc::Dirichlet(0.0), // y walls
            Bc::Dirichlet(0.0),
            Bc::Dirichlet(component_value), // z- inflow
            Bc::Neumann,                    // z+ outflow
        ],
        solid_surface: Bc::Dirichlet(0.0),
    };
    let bcs = FlowBcs {
        velocity: [
            no_slip_with_inflow(0.0),
            no_slip_with_inflow(0.0),
            no_slip_with_inflow(w_in),
        ],
        pressure: BcSet {
            faces: [
                Bc::Neumann,
                Bc::Neumann,
                Bc::Neumann,
                Bc::Neumann,
                Bc::Neumann,
                Bc::Dirichlet(0.0), // outflow pins the pressure level
            ],
            solid_surface: Bc::Neumann,
        },
    };
    let config = SolverConfig {
        viscosity: 5e-2, // laminar through-flow at reduced scale
        dt: params.dt,
        bdf_order: 2,
        pressure_cg: CgConfig {
            tol: 1e-6,
            max_iter: 250,
            ..Default::default()
        },
        velocity_cg: CgConfig {
            tol: 1e-8,
            max_iter: 250,
            ..Default::default()
        },
        body_force: [0.0; 3],
        filter: None,
        temperature: None,
    };
    CaseSetup {
        name: "pb146".to_string(),
        spec: Arc::new(spec),
        config,
        bcs,
        init: InitKind::AxialInflow { w_in },
    }
}

/// The Rayleigh–Bénard convection case in free-fall units at Rayleigh
/// number `ra` and Prandtl number `pr`.
pub fn rbc(params: &CaseParams, ra: f64, pr: f64) -> CaseSetup {
    let lengths = params.lengths.unwrap_or([2.0, 2.0, 1.0]);
    let spec = MeshSpec::box_mesh(params.order, params.elems, lengths, [true, true, false]);
    let nu = (pr / ra).sqrt();
    let kappa = 1.0 / (pr * ra).sqrt();
    let t_bc = BcSet {
        faces: [
            Bc::Neumann,
            Bc::Neumann,
            Bc::Neumann,
            Bc::Neumann,
            Bc::Dirichlet(1.0), // heated bottom
            Bc::Dirichlet(0.0), // cooled top
        ],
        solid_surface: Bc::Neumann,
    };
    let vel_bc = BcSet {
        faces: [
            Bc::Neumann,
            Bc::Neumann,
            Bc::Neumann,
            Bc::Neumann,
            Bc::Dirichlet(0.0), // no-slip plates
            Bc::Dirichlet(0.0),
        ],
        solid_surface: Bc::Neumann,
    };
    let bcs = FlowBcs {
        velocity: [vel_bc; 3],
        pressure: BcSet::all_neumann(),
    };
    let config = SolverConfig {
        viscosity: nu,
        dt: params.dt,
        bdf_order: 2,
        pressure_cg: CgConfig {
            tol: 1e-6,
            max_iter: 250,
            ..Default::default()
        },
        velocity_cg: CgConfig {
            tol: 1e-8,
            max_iter: 250,
            ..Default::default()
        },
        body_force: [0.0; 3],
        filter: None,
        temperature: Some(TemperatureConfig {
            diffusivity: kappa,
            buoyancy: 1.0,
            bc: t_bc,
            cg: CgConfig {
                tol: 1e-8,
                max_iter: 250,
                ..Default::default()
            },
        }),
    };
    CaseSetup {
        name: "rbc".to_string(),
        spec: Arc::new(spec),
        config,
        bcs,
        init: InitKind::RbcPerturbed { amplitude: 0.02 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};

    #[test]
    fn pebble_centers_are_deterministic_and_inside() {
        let (a, ra) = pebble_centers(146, [1.0, 1.0, 2.0]);
        let (b, rb) = pebble_centers(146, [1.0, 1.0, 2.0]);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_eq!(a.len(), 146);
        for c in &a {
            assert!(c[0] > 0.0 && c[0] < 1.0);
            assert!(c[1] > 0.0 && c[1] < 1.0);
            assert!(c[2] > 0.0 && c[2] < 2.0);
        }
    }

    #[test]
    fn pb146_masks_pebbles_but_keeps_flow_path() {
        let setup = pb146(&CaseParams::pb146_default(), 146);
        let total = setup.spec.elems.iter().product::<usize>();
        let fluid = setup.n_fluid_elems();
        assert!(fluid < total, "some elements must be solid");
        assert!(fluid > total / 2, "bed must stay mostly open");
        // Every z-layer keeps at least one fluid element.
        for ez in 0..setup.spec.elems[2] {
            let any_fluid = (0..setup.spec.elems[1])
                .any(|ey| (0..setup.spec.elems[0]).any(|ex| !setup.spec.is_solid([ex, ey, ez])));
            assert!(any_fluid, "layer {ez} fully solid");
        }
    }

    #[test]
    fn pb146_runs_stably_for_a_few_steps() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [4, 4, 6];
            let setup = pb146(&params, 30);
            let mut solver = setup.build(comm);
            for _ in 0..5 {
                let r = solver.step(comm);
                assert!(r.pressure.converged, "pressure: {:?}", r.pressure);
            }
            (solver.kinetic_energy(comm), solver.max_velocity(comm))
        });
        let (ke, umax) = res[0];
        assert!(ke.is_finite() && ke > 0.0);
        assert!(umax.is_finite() && umax < 50.0, "runaway velocity {umax}");
    }

    #[test]
    fn rbc_heats_up_and_convects() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::rbc_default();
            params.elems = [2, 2, 2];
            params.order = 3;
            let setup = rbc(&params, 1e5, 0.7);
            let mut solver = setup.build(comm);
            for _ in 0..10 {
                let r = solver.step(comm);
                assert!(r.pressure.converged);
                assert!(r.temperature.unwrap().converged);
            }
            solver.kinetic_energy(comm)
        });
        // Convection must start from the perturbed conduction state.
        assert!(res[0] > 0.0 && res[0].is_finite());
    }

    #[test]
    fn rbc_free_fall_units() {
        let setup = rbc(&CaseParams::rbc_default(), 1e6, 1.0);
        assert!((setup.config.viscosity - 1e-3).abs() < 1e-12);
        let tc = setup.config.temperature.as_ref().unwrap();
        assert!((tc.diffusivity - 1e-3).abs() < 1e-12);
        assert_eq!(tc.buoyancy, 1.0);
    }
}
