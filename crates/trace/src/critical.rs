//! Per-step critical-path analysis over the span + causal-edge graph.
//!
//! [`analyze`] walks the happens-before graph **backward** from the rank
//! that finishes last. At virtual time `t` on some rank, the latest
//! *binding* edge with `t_ready <= t` explains how that rank got to `t`:
//! everything in `[t_ready, t]` was rank-local work (no binding wait can
//! sit inside, or a later edge would have matched), `[t_send, t_ready]`
//! was the message/collective/wire in flight, and the walk jumps to the
//! sender at `t_send`. When no edge remains, `[0, t]` is local and the
//! walk ends. The chain is therefore time-contiguous by construction:
//! its segment lengths sum to the global virtual end time exactly.
//!
//! Rank-local chain segments are attributed to phases by projecting them
//! onto the rank's **leaf-span timeline** (the deepest open span as a
//! step function over virtual time); gaps covered by no span count as
//! `"(untracked)"`. Wait segments are attributed to `net/<kind>`.
//!
//! Per-rank *slack* is the total binding wait each rank endured
//! (`Σ t_ready − t_recv` over its binding edges): ranks with high slack
//! sat blocked on others and could absorb more work; ranks with ~zero
//! slack are the ones the critical chain runs through.

use crate::{unpack_ctx, CausalEdge, EdgeKind, RankTrace};
use std::collections::BTreeMap;

/// Schema tag for the JSON serialization of a [`CriticalReport`].
pub const CRITICAL_SCHEMA: &str = "nekstat/critical-path/v1";

/// Phase name used for time the chain spends inside a channel.
fn net_phase(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Message => "net/message",
        EdgeKind::Collective => "net/collective",
        EdgeKind::Wire => "net/wire",
    }
}

/// Phase name for chain segments no span covered.
pub const UNTRACKED: &str = "(untracked)";

/// One (pid, rank, phase) contribution to the critical chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CritContrib {
    /// World id (0 = simulation, 1 = endpoint).
    pub pid: u32,
    /// Rank within the world.
    pub rank: usize,
    /// Span name (or `net/*` / [`UNTRACKED`]).
    pub phase: String,
    /// Virtual seconds this (rank, phase) spent on the chain.
    pub secs: f64,
}

/// The critical chain restricted to one step window.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCritical {
    /// Timestep index (from the flight-recorder step samples).
    pub step: u64,
    /// Window start (virtual seconds).
    pub t_from: f64,
    /// Window end.
    pub t_to: f64,
    /// Chain time inside the window (= `t_to - t_from` whenever the
    /// chain spans the window, which it does by construction).
    pub total: f64,
    /// Top contributions inside the window, largest first (capped at
    /// [`STEP_CONTRIB_CAP`]; the cap is recorded in `dropped`).
    pub contrib: Vec<CritContrib>,
    /// Contribution entries elided by the cap.
    pub dropped: u64,
}

/// Total binding wait endured by one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSlack {
    /// World id.
    pub pid: u32,
    /// Rank within the world.
    pub rank: usize,
    /// `Σ (t_ready − t_recv)` over this rank's binding edges.
    pub wait_s: f64,
}

/// Per-step contribution entries kept per window.
pub const STEP_CONTRIB_CAP: usize = 8;

/// Everything [`analyze`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalReport {
    /// Chain total in virtual seconds (= the global virtual end time).
    pub total: f64,
    /// Number of chain segments walked (diagnostic).
    pub segments: u64,
    /// Whole-run (pid, rank, phase) aggregation, largest first.
    pub contrib: Vec<CritContrib>,
    /// The chain sliced by step windows (empty when no bounds given).
    pub steps: Vec<StepCritical>,
    /// Per-rank slack, sorted by (pid, rank).
    pub slack: Vec<RankSlack>,
}

impl CriticalReport {
    /// The dominant whole-run contribution, if any.
    pub fn dominant(&self) -> Option<&CritContrib> {
        self.contrib.first()
    }
}

/// One rank-local or in-flight stretch of the chain.
struct Segment {
    pid: u32,
    rank: usize,
    t_from: f64,
    t_to: f64,
    /// `Some(kind)` for in-flight (wait) segments, `None` for work.
    wire: Option<EdgeKind>,
}

/// Deepest-span step function plus the binding edges of one rank.
struct RankIndex<'a> {
    /// `(from, to, phase)` intervals, ascending, covering `[0, end]`.
    timeline: Vec<(f64, f64, &'a str)>,
    /// Binding edges in recorded (chronological) order.
    binding: Vec<&'a CausalEdge>,
}

impl<'a> RankIndex<'a> {
    fn build(trace: &'a RankTrace) -> Self {
        // Sort spans so parents precede children: by start, then depth.
        let mut order: Vec<&crate::Span> = trace.spans.iter().collect();
        order.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.depth.cmp(&b.depth))
                .then(a.id.cmp(&b.id))
        });
        let mut timeline: Vec<(f64, f64, &str)> = Vec::new();
        let mut stack: Vec<&crate::Span> = Vec::new();
        let mut pos = 0.0f64;
        for span in order {
            let target = span.start.max(pos);
            advance_to(&mut timeline, &mut stack, &mut pos, target);
            // Drop ancestors that ended exactly at this span's start.
            while stack.last().is_some_and(|top| top.end <= span.start) {
                stack.pop();
            }
            if span.end > pos {
                stack.push(span);
            }
        }
        let target = trace.end.max(pos);
        advance_to(&mut timeline, &mut stack, &mut pos, target);
        let binding = trace.edges.iter().filter(|e| e.binding).collect();
        Self { timeline, binding }
    }

    /// Accumulate phase coverage of `[a, b]` into `into`.
    fn attribute(&self, a: f64, b: f64, into: &mut BTreeMap<&'a str, f64>) {
        if b <= a {
            return;
        }
        let first = self.timeline.partition_point(|&(_, to, _)| to <= a);
        let mut covered = 0.0;
        for &(from, to, name) in &self.timeline[first..] {
            if from >= b {
                break;
            }
            let lo = from.max(a);
            let hi = to.min(b);
            if hi > lo {
                *into.entry(name).or_insert(0.0) += hi - lo;
                covered += hi - lo;
            }
        }
        let gap = (b - a) - covered;
        if gap > 1e-15 {
            *into.entry(UNTRACKED).or_insert(0.0) += gap;
        }
    }

    /// Latest binding edge with `t_ready <= t`, if any.
    fn last_binding_before(&self, t: f64) -> Option<&'a CausalEdge> {
        let idx = self.binding.partition_point(|e| e.t_ready <= t);
        idx.checked_sub(1).map(|i| self.binding[i])
    }
}

/// Emit deepest-span timeline intervals up to `target`, popping spans
/// off `stack` as their ends pass.
fn advance_to<'a>(
    timeline: &mut Vec<(f64, f64, &'a str)>,
    stack: &mut Vec<&'a crate::Span>,
    pos: &mut f64,
    target: f64,
) {
    while *pos < target {
        match stack.last() {
            Some(top) if top.end <= *pos => {
                stack.pop();
            }
            Some(top) => {
                let stop = top.end.min(target);
                if stop > *pos {
                    timeline.push((*pos, stop, &top.name));
                }
                let ended = top.end <= stop;
                *pos = stop;
                if ended {
                    stack.pop();
                }
            }
            None => {
                if target > *pos {
                    timeline.push((*pos, target, UNTRACKED));
                }
                *pos = target;
            }
        }
    }
}

/// Walk the critical chain over `traces` and slice it by `step_bounds`
/// (`(step, t_start, t_end)` windows, e.g. from the flight recorder's
/// step samples). Fully deterministic: same traces ⇒ identical report.
pub fn analyze(traces: &[RankTrace], step_bounds: &[(u64, f64, f64)]) -> CriticalReport {
    let mut index: BTreeMap<(u32, usize), RankIndex<'_>> = BTreeMap::new();
    for t in traces {
        index.insert((t.pid, t.rank), RankIndex::build(t));
    }

    // Start from the rank that finishes last (smallest (pid, rank) on
    // ties — BTreeMap iteration order makes this deterministic).
    let start = traces
        .iter()
        .map(|t| ((t.pid, t.rank), t.end))
        .fold(None::<((u32, usize), f64)>, |best, cur| match best {
            None => Some(cur),
            Some(b) if cur.1 > b.1 || (cur.1 == b.1 && cur.0 < b.0) => Some(cur),
            Some(b) => Some(b),
        });
    let Some(((mut pid, mut rank), total)) = start else {
        return CriticalReport {
            total: 0.0,
            segments: 0,
            contrib: Vec::new(),
            steps: Vec::new(),
            slack: Vec::new(),
        };
    };

    let mut chain: Vec<Segment> = Vec::new();
    let mut t = total;
    // Backstop against degenerate graphs; real chains are far shorter.
    let mut budget = 5_000_000u64;
    while budget > 0 {
        budget -= 1;
        let Some(ri) = index.get(&(pid, rank)) else {
            chain.push(Segment {
                pid,
                rank,
                t_from: 0.0,
                t_to: t,
                wire: None,
            });
            break;
        };
        match ri.last_binding_before(t) {
            Some(e) if e.t_send < t => {
                chain.push(Segment {
                    pid,
                    rank,
                    t_from: e.t_ready.min(t),
                    t_to: t,
                    wire: None,
                });
                chain.push(Segment {
                    pid,
                    rank,
                    t_from: e.t_send,
                    t_to: e.t_ready.min(t),
                    wire: Some(e.kind),
                });
                t = e.t_send;
                match unpack_ctx(e.src) {
                    Some((src_pid, src_rank, _)) => {
                        pid = src_pid;
                        rank = src_rank;
                    }
                    None => {
                        // Untraced sender: close the chain here.
                        chain.push(Segment {
                            pid,
                            rank,
                            t_from: 0.0,
                            t_to: t,
                            wire: None,
                        });
                        break;
                    }
                }
            }
            _ => {
                chain.push(Segment {
                    pid,
                    rank,
                    t_from: 0.0,
                    t_to: t,
                    wire: None,
                });
                break;
            }
        }
    }

    // Whole-run aggregation.
    let mut agg: BTreeMap<(u32, usize, String), f64> = BTreeMap::new();
    for seg in &chain {
        accumulate(&index, seg, seg.t_from, seg.t_to, &mut agg);
    }
    let contrib = sorted_contribs(agg, usize::MAX).0;

    // Per-step slices.
    let mut steps = Vec::with_capacity(step_bounds.len());
    for &(step, t0, t1) in step_bounds {
        let mut agg: BTreeMap<(u32, usize, String), f64> = BTreeMap::new();
        let mut covered = 0.0;
        for seg in &chain {
            let lo = seg.t_from.max(t0);
            let hi = seg.t_to.min(t1);
            if hi > lo {
                accumulate(&index, seg, lo, hi, &mut agg);
                covered += hi - lo;
            }
        }
        let (contrib, dropped) = sorted_contribs(agg, STEP_CONTRIB_CAP);
        steps.push(StepCritical {
            step,
            t_from: t0,
            t_to: t1,
            total: covered,
            contrib,
            dropped,
        });
    }

    // Per-rank slack over every trace (not only chain members).
    let mut slack = Vec::with_capacity(traces.len());
    for ((pid, rank), ri) in &index {
        let wait_s = ri.binding.iter().map(|e| e.t_ready - e.t_recv).sum();
        slack.push(RankSlack {
            pid: *pid,
            rank: *rank,
            wait_s,
        });
    }

    CriticalReport {
        total,
        segments: chain.len() as u64,
        contrib,
        steps,
        slack,
    }
}

/// Attribute `seg ∩ [lo, hi]` into `agg`.
fn accumulate(
    index: &BTreeMap<(u32, usize), RankIndex<'_>>,
    seg: &Segment,
    lo: f64,
    hi: f64,
    agg: &mut BTreeMap<(u32, usize, String), f64>,
) {
    match seg.wire {
        Some(kind) => {
            *agg.entry((seg.pid, seg.rank, net_phase(kind).to_string()))
                .or_insert(0.0) += hi - lo;
        }
        None => {
            let mut phases: BTreeMap<&str, f64> = BTreeMap::new();
            if let Some(ri) = index.get(&(seg.pid, seg.rank)) {
                ri.attribute(lo, hi, &mut phases);
            } else {
                phases.insert(UNTRACKED, hi - lo);
            }
            for (name, secs) in phases {
                *agg.entry((seg.pid, seg.rank, name.to_string())).or_insert(0.0) += secs;
            }
        }
    }
}

/// Sort contributions largest-first with a deterministic tie-break and
/// cap the list; returns the kept entries and the dropped count.
fn sorted_contribs(
    agg: BTreeMap<(u32, usize, String), f64>,
    cap: usize,
) -> (Vec<CritContrib>, u64) {
    let mut v: Vec<CritContrib> = agg
        .into_iter()
        .map(|((pid, rank, phase), secs)| CritContrib {
            pid,
            rank,
            phase,
            secs,
        })
        .collect();
    v.sort_by(|a, b| {
        b.secs
            .total_cmp(&a.secs)
            .then(a.pid.cmp(&b.pid))
            .then(a.rank.cmp(&b.rank))
            .then(a.phase.cmp(&b.phase))
    });
    let dropped = v.len().saturating_sub(cap) as u64;
    v.truncate(cap);
    (v, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_ctx, Span};

    fn span(id: u64, name: &str, start: f64, end: f64, depth: u32) -> Span {
        Span {
            id,
            name: name.into(),
            start,
            end,
            depth,
            self_time: 0.0,
        }
    }

    /// Rank 0 computes 0..4, sends at 4 (ready at 5); rank 1 waits from
    /// 1 and then post-processes 5..7. Critical chain: r1 [5,7] +
    /// wire [4,5] + r0 [0,4].
    #[test]
    fn two_rank_chain_is_time_contiguous_and_attributed() {
        let t0 = RankTrace {
            pid: 0,
            rank: 0,
            end: 5.0,
            spans: vec![span(0, "compute", 0.0, 4.0, 0)],
            edges: vec![],
        };
        let t1 = RankTrace {
            pid: 0,
            rank: 1,
            end: 7.0,
            spans: vec![span(0, "recv", 1.0, 5.0, 0), span(1, "post", 5.0, 7.0, 0)],
            edges: vec![CausalEdge {
                src: pack_ctx(0, 0, 0),
                dst_span: 0,
                t_send: 4.0,
                t_ready: 5.0,
                t_recv: 1.0,
                binding: true,
                kind: EdgeKind::Message,
            }],
        };
        let r = analyze(&[t0, t1], &[]);
        assert_eq!(r.total, 7.0);
        let sum: f64 = r.contrib.iter().map(|c| c.secs).sum();
        assert!((sum - 7.0).abs() < 1e-12, "chain must cover [0, end]: {sum}");
        let d = r.dominant().unwrap();
        assert_eq!((d.pid, d.rank, d.phase.as_str()), (0, 0, "compute"));
        assert!((d.secs - 4.0).abs() < 1e-12);
        assert!(r
            .contrib
            .iter()
            .any(|c| c.phase == "net/message" && (c.secs - 1.0).abs() < 1e-12));
        // Rank 1 waited 4s; rank 0 never waited.
        assert_eq!(r.slack.len(), 2);
        assert_eq!(r.slack[0].wait_s, 0.0);
        assert!((r.slack[1].wait_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn step_windows_slice_the_chain_exactly() {
        let t = RankTrace {
            pid: 0,
            rank: 0,
            end: 6.0,
            spans: vec![
                span(0, "a", 0.0, 2.0, 0),
                span(1, "b", 2.0, 6.0, 0),
                span(2, "b/inner", 3.0, 4.0, 1),
            ],
            edges: vec![],
        };
        let r = analyze(&[t], &[(1, 0.0, 3.0), (2, 3.0, 6.0)]);
        assert_eq!(r.steps.len(), 2);
        assert!((r.steps[0].total - 3.0).abs() < 1e-12);
        assert!((r.steps[1].total - 3.0).abs() < 1e-12);
        // Window 2 covers the leaf span: [3,4] goes to b/inner, not b.
        let w2: BTreeMap<&str, f64> = r.steps[1]
            .contrib
            .iter()
            .map(|c| (c.phase.as_str(), c.secs))
            .collect();
        assert!((w2["b/inner"] - 1.0).abs() < 1e-12);
        assert!((w2["b"] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn untracked_gaps_and_empty_input_are_handled() {
        let r = analyze(&[], &[]);
        assert_eq!(r.total, 0.0);
        assert!(r.contrib.is_empty());

        let t = RankTrace {
            pid: 0,
            rank: 0,
            end: 4.0,
            spans: vec![span(0, "a", 1.0, 2.0, 0)],
            edges: vec![],
        };
        let r = analyze(&[t], &[]);
        let m: BTreeMap<&str, f64> = r
            .contrib
            .iter()
            .map(|c| (c.phase.as_str(), c.secs))
            .collect();
        assert!((m["a"] - 1.0).abs() < 1e-12);
        assert!((m[UNTRACKED] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_binding_edges_do_not_redirect_the_chain() {
        let t0 = RankTrace {
            pid: 0,
            rank: 0,
            end: 3.0,
            spans: vec![span(0, "w", 0.0, 3.0, 0)],
            edges: vec![],
        };
        // Rank 1 received a message that was already waiting: no jump.
        let t1 = RankTrace {
            pid: 0,
            rank: 1,
            end: 5.0,
            spans: vec![span(0, "w", 0.0, 5.0, 0)],
            edges: vec![CausalEdge {
                src: pack_ctx(0, 0, 0),
                dst_span: 0,
                t_send: 1.0,
                t_ready: 2.0,
                t_recv: 4.0,
                binding: false,
                kind: EdgeKind::Message,
            }],
        };
        let r = analyze(&[t0, t1], &[]);
        assert_eq!(r.segments, 1, "one local segment, no jump");
        let d = r.dominant().unwrap();
        assert_eq!((d.rank, d.secs), (1, 5.0));
    }
}
