//! Aggregation of [`RankTrace`]s into per-phase statistics.
//!
//! `PhaseBreakdown` answers the question the paper's Figures 2 and 5 pose
//! per bar segment: of one rank's virtual wall time, how much went to each
//! pipeline phase? Exclusive (self) time is what sums cleanly — every
//! instant inside any span is charged to exactly one name — so
//! [`RankPhases::attributed_fraction`] uses it, while `total` keeps the
//! inclusive view for nested phases like `sem/cg` under `sem/pressure`.

use crate::{RankTrace, Span};
use std::collections::BTreeMap;

/// Statistics for one span name on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseStat {
    /// How many spans closed under this name.
    pub count: u64,
    /// Summed inclusive duration.
    pub total: f64,
    /// Summed exclusive duration (time not inside a child span).
    pub self_total: f64,
    /// Longest single inclusive duration.
    pub max: f64,
}

impl PhaseStat {
    fn add(&mut self, span: &Span) {
        self.count += 1;
        let d = span.duration();
        self.total += d;
        self.self_total += span.self_time;
        if d > self.max {
            self.max = d;
        }
    }
}

/// One rank's phase table.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPhases {
    /// World id (0 = simulation, 1 = endpoint).
    pub pid: u32,
    /// Rank within the world.
    pub rank: usize,
    /// Virtual wall time at which the trace was taken.
    pub wall: f64,
    /// Per-name statistics, sorted by name.
    pub phases: BTreeMap<String, PhaseStat>,
}

impl RankPhases {
    /// Fraction of `wall` covered by exclusive span time. 1.0 means every
    /// virtual second is attributed to exactly one named phase. A rank
    /// that spent zero virtual seconds (e.g. an endpoint whose run saw no
    /// triggers) has no time to attribute and is vacuously at 1.0.
    pub fn attributed_fraction(&self) -> f64 {
        if self.wall <= 0.0 {
            return 1.0;
        }
        self.phases.values().map(|p| p.self_total).sum::<f64>() / self.wall
    }
}

/// Phase tables for every rank in a run (both worlds of an in-transit
/// run, concatenated).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// One entry per traced rank.
    pub ranks: Vec<RankPhases>,
}

impl PhaseBreakdown {
    /// Aggregate raw traces into phase tables.
    pub fn from_traces(traces: &[RankTrace]) -> Self {
        let mut ranks: Vec<RankPhases> = traces
            .iter()
            .map(|t| {
                let mut phases: BTreeMap<String, PhaseStat> = BTreeMap::new();
                for span in &t.spans {
                    phases.entry(span.name.clone()).or_default().add(span);
                }
                RankPhases {
                    pid: t.pid,
                    rank: t.rank,
                    wall: t.end,
                    phases,
                }
            })
            .collect();
        ranks.sort_by_key(|r| (r.pid, r.rank));
        Self { ranks }
    }

    /// Summed inclusive time of `name` across all ranks.
    pub fn total(&self, name: &str) -> f64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phases.get(name))
            .map(|p| p.total)
            .sum()
    }

    /// Summed exclusive time of `name` across all ranks.
    pub fn self_total(&self, name: &str) -> f64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phases.get(name))
            .map(|p| p.self_total)
            .sum()
    }

    /// Total span count of `name` across all ranks.
    pub fn count(&self, name: &str) -> u64 {
        self.ranks
            .iter()
            .filter_map(|r| r.phases.get(name))
            .map(|p| p.count)
            .sum()
    }

    /// Sorted union of span names seen on any rank.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .ranks
            .iter()
            .flat_map(|r| r.phases.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Minimum attributed fraction over ranks — the acceptance metric:
    /// "≥95% of per-rank virtual wall time attributed to named spans".
    pub fn attributed_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.attributed_fraction())
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Render a compact per-phase table (summed over ranks), largest
    /// exclusive time first — the breakdown the fig bins print.
    pub fn to_table(&self) -> String {
        let mut rows: Vec<(String, u64, f64, f64)> = self
            .names()
            .into_iter()
            .map(|n| {
                let (c, t, s) = (self.count(&n), self.total(&n), self.self_total(&n));
                (n, c, t, s)
            })
            .collect();
        rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
        let mut out = String::from("  phase                     count    incl (s)    self (s)\n");
        for (name, count, total, self_total) in rows {
            out.push_str(&format!(
                "  {name:<24} {count:>7} {total:>11.4} {self_total:>11.4}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: f64, end: f64, depth: u32, self_time: f64) -> Span {
        Span {
            id: 0,
            name: name.to_string(),
            start,
            end,
            depth,
            self_time,
        }
    }

    fn two_rank_traces() -> Vec<RankTrace> {
        vec![
            RankTrace {
                pid: 0,
                rank: 1,
                end: 10.0,
                spans: vec![
                    span("sem/cg", 1.0, 4.0, 1, 3.0),
                    span("sem/pressure", 0.0, 5.0, 0, 2.0),
                    span("transport/send", 5.0, 10.0, 0, 5.0),
                ],
                edges: vec![],
            },
            RankTrace {
                pid: 0,
                rank: 0,
                end: 8.0,
                spans: vec![span("transport/send", 0.0, 8.0, 0, 8.0)],
                edges: vec![],
            },
        ]
    }

    #[test]
    fn aggregates_and_sorts_ranks() {
        let b = PhaseBreakdown::from_traces(&two_rank_traces());
        assert_eq!(b.ranks.len(), 2);
        assert_eq!(b.ranks[0].rank, 0);
        assert_eq!(b.ranks[1].rank, 1);
        assert_eq!(b.count("transport/send"), 2);
        assert!((b.total("transport/send") - 13.0).abs() < 1e-12);
        assert!((b.total("sem/pressure") - 5.0).abs() < 1e-12);
        // Inclusive child time double-counts; self time does not.
        assert!((b.self_total("sem/pressure") - 2.0).abs() < 1e-12);
        assert_eq!(b.total("no/such"), 0.0);
    }

    #[test]
    fn attribution_uses_self_time_per_rank() {
        let b = PhaseBreakdown::from_traces(&two_rank_traces());
        // rank 0: 8/8 = 1.0; rank 1: (3+2+5)/10 = 1.0 → min = 1.0.
        assert!((b.attributed_fraction() - 1.0).abs() < 1e-12);

        let sparse = vec![RankTrace {
            pid: 0,
            rank: 0,
            end: 10.0,
            spans: vec![span("a", 0.0, 5.0, 0, 5.0)],
            edges: vec![],
        }];
        let b = PhaseBreakdown::from_traces(&sparse);
        assert!((b.attributed_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn names_and_table() {
        let b = PhaseBreakdown::from_traces(&two_rank_traces());
        assert_eq!(b.names(), vec!["sem/cg", "sem/pressure", "transport/send"]);
        let table = b.to_table();
        assert!(table.contains("transport/send"));
        // Largest self time first.
        assert!(table.find("transport/send").unwrap() < table.find("sem/pressure").unwrap());
    }

    #[test]
    fn empty_trace_is_fully_attributed_at_zero_wall() {
        let b = PhaseBreakdown::from_traces(&[RankTrace {
            pid: 0,
            rank: 0,
            end: 0.0,
            spans: vec![],
            edges: vec![],
        }]);
        assert!((b.attributed_fraction() - 1.0).abs() < 1e-12);
        // Same for a zero-wall rank that opened spans which charged no
        // virtual time (an endpoint whose run saw no triggers): zero
        // seconds means zero unattributed seconds.
        let b = PhaseBreakdown::from_traces(&[RankTrace {
            pid: 1,
            rank: 0,
            end: 0.0,
            spans: vec![span("transport/recv", 0.0, 0.0, 0, 0.0)],
            edges: vec![],
        }]);
        assert!((b.attributed_fraction() - 1.0).abs() < 1e-12);
    }
}
