//! Per-rank span tracer for the simulated NekRS/SENSEI stack.
//!
//! Instrumented code opens named, nestable spans (`sem/pressure`,
//! `transport/send`, `render/composite`, ...) whose start/end stamps are
//! read from the owning rank's **virtual clock** when the tracer runs
//! inside a commsim world, or from a real monotonic clock otherwise.
//! Spans feed two sinks:
//!
//! * [`chrome::chrome_trace_json`] — a Chrome trace-event array loadable
//!   in Perfetto / `chrome://tracing`, one track per rank;
//! * [`PhaseBreakdown`] — an in-memory per-rank aggregation
//!   (count / total / max per span name) used by the figure harnesses to
//!   attribute virtual wall time to pipeline phases.
//!
//! Design constraints honored here:
//!
//! * **Near-zero overhead when disabled.** A disabled [`Tracer`] is a
//!   `None`; `span()` is a branch and returns an inert guard.
//! * **Unwind safety.** Spans close from RAII guards. Fault-injected
//!   runs unwind rank threads mid-span, so guards may drop in any order
//!   and with the tracer's lock poisoned; `SpanGuard::drop` must never
//!   panic or deadlock. Closing a span force-closes any still-open
//!   descendants, and a second close of the same id is a no-op.

pub mod breakdown;
pub mod chrome;
pub mod critical;

pub use breakdown::{PhaseBreakdown, PhaseStat, RankPhases};
pub use critical::{CriticalReport, CritContrib, RankSlack, StepCritical, CRITICAL_SCHEMA};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Where a tracer reads "now" from.
#[derive(Clone)]
enum TimeSource {
    /// Bits of an `f64` published by the owning rank's virtual clock
    /// after every clock mutation.
    Virtual(Arc<AtomicU64>),
    /// Real monotonic time relative to tracer creation (used outside
    /// simulated runs, e.g. unit tests of library code).
    Real(Instant),
}

impl TimeSource {
    fn now(&self) -> f64 {
        match self {
            TimeSource::Virtual(cell) => f64::from_bits(cell.load(Ordering::Relaxed)),
            TimeSource::Real(origin) => origin.elapsed().as_secs_f64(),
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-context words (cross-rank causality)
// ---------------------------------------------------------------------------

/// Bit layout of a packed trace-context word (`0` = no context):
///
/// ```text
/// [63]    present flag (1)
/// [60:63] pid (3 bits: 0 = simulation world, 1 = endpoint world, …)
/// [40:60] rank (20 bits, up to ~1M virtual ranks)
/// [0:40]  span id within that rank's tracer (40 bits)
/// ```
///
/// The word rides on every commsim message/collective and on transport
/// wire frames; it never feeds any clock computation, so carrying it is
/// bitwise-invisible to the simulation.
const CTX_PRESENT: u64 = 1 << 63;
const CTX_PID_SHIFT: u32 = 60;
const CTX_PID_MASK: u64 = 0x7;
const CTX_RANK_SHIFT: u32 = 40;
const CTX_RANK_MASK: u64 = 0xf_ffff;
const CTX_SPAN_MASK: u64 = (1 << 40) - 1;

/// Pack a (pid, rank, span id) triple into a context word.
pub fn pack_ctx(pid: u32, rank: usize, span: u64) -> u64 {
    CTX_PRESENT
        | ((pid as u64 & CTX_PID_MASK) << CTX_PID_SHIFT)
        | ((rank as u64 & CTX_RANK_MASK) << CTX_RANK_SHIFT)
        | (span & CTX_SPAN_MASK)
}

/// Unpack a context word into (pid, rank, span id); `None` when the
/// word is 0 (sender untraced).
pub fn unpack_ctx(ctx: u64) -> Option<(u32, usize, u64)> {
    if ctx & CTX_PRESENT == 0 {
        return None;
    }
    Some((
        ((ctx >> CTX_PID_SHIFT) & CTX_PID_MASK) as u32,
        ((ctx >> CTX_RANK_SHIFT) & CTX_RANK_MASK) as usize,
        ctx & CTX_SPAN_MASK,
    ))
}

/// What kind of channel carried a happens-before edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// In-world point-to-point message (`Comm::send` → `Comm::recv`).
    Message,
    /// In-world collective: the edge points at the critical contributor
    /// (the last rank to arrive, lowest rank among ties).
    Collective,
    /// Cross-world staged wire frame (the SST-analogue transport).
    Wire,
}

impl EdgeKind {
    /// Stable label used by the JSON serializations.
    pub fn label(&self) -> &'static str {
        match self {
            EdgeKind::Message => "message",
            EdgeKind::Collective => "collective",
            EdgeKind::Wire => "wire",
        }
    }
}

/// One happens-before edge, recorded on the **receiving** rank.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEdge {
    /// Sender context word ([`pack_ctx`]); 0 when the sender was
    /// untraced.
    pub src: u64,
    /// Innermost span open on the receiver when the edge landed (its
    /// local id), or `u64::MAX` when none was open.
    pub dst_span: u64,
    /// Sender's virtual clock when the payload left it.
    pub t_send: f64,
    /// Virtual time the payload became available (the receiver resumed
    /// here when the edge is binding).
    pub t_ready: f64,
    /// Receiver's virtual clock when it matched the payload (before any
    /// advance).
    pub t_recv: f64,
    /// True when `t_ready > t_recv`: the edge advanced the receiver's
    /// clock, i.e. the receiver genuinely waited on the sender.
    pub binding: bool,
    /// Channel that carried the edge.
    pub kind: EdgeKind,
}

/// A span still on the stack.
struct OpenSpan {
    id: u64,
    name: String,
    start: f64,
    /// Inclusive time of already-closed direct children, used to compute
    /// this span's exclusive (self) time at close.
    child_time: f64,
}

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Id unique within this rank's tracer (referenced by context words
    /// and [`CausalEdge::dst_span`]).
    pub id: u64,
    /// Taxonomy name, e.g. `"transport/send"`.
    pub name: String,
    /// Start stamp (virtual seconds in simulated runs).
    pub start: f64,
    /// End stamp.
    pub end: f64,
    /// Nesting depth at open time (0 = root).
    pub depth: u32,
    /// Exclusive time: duration minus time spent in direct children.
    pub self_time: f64,
}

impl Span {
    /// Inclusive duration.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Everything one rank recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTrace {
    /// Process id for grouping tracks (0 = simulation world,
    /// 1 = endpoint world in in-transit runs).
    pub pid: u32,
    /// Rank within that world.
    pub rank: usize,
    /// Stamp at which the trace was taken (virtual wall time of the rank).
    pub end: f64,
    /// Completed spans in close order.
    pub spans: Vec<Span>,
    /// Happens-before edges observed by this rank as a receiver, in the
    /// order they were recorded (chronological in virtual time).
    pub edges: Vec<CausalEdge>,
}

struct TracerState {
    next_id: u64,
    open: Vec<OpenSpan>,
    closed: Vec<Span>,
    edges: Vec<CausalEdge>,
    /// Cumulative self time per span name over every span closed so
    /// far — a running aggregate cheap enough to read once per step
    /// (the telemetry flight recorder diffs consecutive readings).
    self_totals: std::collections::BTreeMap<String, f64>,
}

struct Inner {
    pid: u32,
    rank: usize,
    source: TimeSource,
    state: Mutex<TracerState>,
}

impl Inner {
    /// Lock the state, swallowing poison: a rank thread that unwinds
    /// while holding the lock must not wedge the guards that drop next.
    fn lock(&self) -> MutexGuard<'_, TracerState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Handle for opening spans. Cheap to clone (an `Arc` when enabled, a
/// `None` when disabled); guards hold a clone, so they outlive any
/// borrow of the structure that owns the tracer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("pid", &inner.pid)
                .field("rank", &inner.rank)
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A tracer that records nothing; `span()` is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A tracer reading stamps from `time_cell` (f64 bits, published by
    /// the rank's virtual clock).
    pub fn virtual_clock(pid: u32, rank: usize, time_cell: Arc<AtomicU64>) -> Self {
        Self::new(pid, rank, TimeSource::Virtual(time_cell))
    }

    /// A tracer stamping spans with real monotonic time since this call.
    pub fn real_clock(pid: u32, rank: usize) -> Self {
        Self::new(pid, rank, TimeSource::Real(Instant::now()))
    }

    fn new(pid: u32, rank: usize, source: TimeSource) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                pid,
                rank,
                source,
                state: Mutex::new(TracerState {
                    next_id: 0,
                    open: Vec::new(),
                    closed: Vec::new(),
                    edges: Vec::new(),
                    self_totals: std::collections::BTreeMap::new(),
                }),
            })),
        }
    }

    /// True if spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The packed context word identifying this rank's innermost open
    /// span ([`pack_ctx`]); 0 when disabled. Senders stamp this onto
    /// outgoing messages so receivers can record happens-before edges.
    pub fn ctx_word(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.lock();
        let span = st.open.last().map(|s| s.id).unwrap_or(CTX_SPAN_MASK);
        pack_ctx(inner.pid, inner.rank, span)
    }

    /// Record a happens-before edge observed by this rank as a receiver.
    /// `src` is the sender's context word (0 when untraced), `t_send`
    /// the sender's clock at send, `t_ready` when the payload became
    /// available, and `t_recv` the receiver's clock at match time
    /// (before any advance). No-op when the tracer is disabled; never
    /// touches any clock.
    pub fn record_edge(&self, src: u64, t_send: f64, t_ready: f64, t_recv: f64, kind: EdgeKind) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        let dst_span = st.open.last().map(|s| s.id).unwrap_or(u64::MAX);
        st.edges.push(CausalEdge {
            src,
            dst_span,
            t_send,
            t_ready,
            t_recv,
            binding: t_ready > t_recv,
            kind,
        });
    }

    /// Open a span; it closes when the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tracer: Tracer::disabled(),
                id: 0,
            };
        };
        let id = {
            let mut st = inner.lock();
            let id = st.next_id;
            st.next_id += 1;
            let start = inner.source.now();
            st.open.push(OpenSpan {
                id,
                name: name.to_string(),
                start,
                child_time: 0.0,
            });
            id
        };
        SpanGuard {
            tracer: self.clone(),
            id,
        }
    }

    /// Close `id` and any still-open spans nested inside it. A stale id
    /// (already closed by an ancestor's out-of-order drop) is a no-op.
    fn close(&self, id: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.lock();
        let Some(pos) = st.open.iter().position(|s| s.id == id) else {
            return;
        };
        let now = inner.source.now();
        // Pop descendants first (deeper entries sit above `pos`), then
        // the span itself, charging each closed child's inclusive time
        // to its parent so self-time stays exclusive.
        while st.open.len() > pos {
            let depth = (st.open.len() - 1) as u32;
            let span = st.open.pop().expect("len > pos >= 0");
            let inclusive = (now - span.start).max(0.0);
            if let Some(parent) = st.open.last_mut() {
                parent.child_time += inclusive;
            }
            let self_time = (inclusive - span.child_time).max(0.0);
            *st.self_totals.entry(span.name.clone()).or_insert(0.0) += self_time;
            st.closed.push(Span {
                id: span.id,
                name: span.name,
                start: span.start,
                end: now,
                depth,
                self_time,
            });
        }
    }

    /// Cumulative self time per span name over every span closed so far
    /// (since creation or the last [`Self::take`]). Empty when the
    /// tracer is disabled. Open spans are not included until they
    /// close, so readings taken at step boundaries (where the
    /// instrumented phases have all closed) are exact.
    pub fn self_totals(&self) -> std::collections::BTreeMap<String, f64> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().self_totals.clone())
            .unwrap_or_default()
    }

    /// Force-close any open spans and return everything recorded so far,
    /// or `None` for a disabled tracer. The tracer is left empty and
    /// reusable.
    pub fn take(&self) -> Option<RankTrace> {
        let inner = self.inner.as_ref()?;
        let mut st = inner.lock();
        let now = inner.source.now();
        while let Some(span) = st.open.pop() {
            let depth = st.open.len() as u32;
            let inclusive = (now - span.start).max(0.0);
            if let Some(parent) = st.open.last_mut() {
                parent.child_time += inclusive;
            }
            let self_time = (inclusive - span.child_time).max(0.0);
            *st.self_totals.entry(span.name.clone()).or_insert(0.0) += self_time;
            st.closed.push(Span {
                id: span.id,
                name: span.name,
                start: span.start,
                end: now,
                depth,
                self_time,
            });
        }
        let spans = std::mem::take(&mut st.closed);
        let edges = std::mem::take(&mut st.edges);
        st.self_totals.clear();
        Some(RankTrace {
            pid: inner.pid,
            rank: inner.rank,
            end: now,
            spans,
            edges,
        })
    }
}

/// RAII handle closing its span on drop. Dropping out of order is safe:
/// an outer guard dropped first closes the inner spans too, and the
/// inner guards' later drops are no-ops.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.tracer.close(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: f64) -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(t.to_bits()))
    }

    fn set(c: &Arc<AtomicU64>, t: f64) {
        c.store(t.to_bits(), Ordering::Relaxed);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _g = t.span("a");
            let _h = t.span("b");
        }
        assert!(!t.is_enabled());
        assert!(t.take().is_none());
    }

    #[test]
    fn nested_spans_get_depth_and_self_time() {
        let c = cell(0.0);
        let t = Tracer::virtual_clock(0, 3, Arc::clone(&c));
        {
            let _outer = t.span("outer");
            set(&c, 1.0);
            {
                let _inner = t.span("inner");
                set(&c, 4.0);
            }
            set(&c, 5.0);
        }
        let trace = t.take().unwrap();
        assert_eq!(trace.rank, 3);
        assert_eq!(trace.spans.len(), 2);
        let inner = &trace.spans[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.depth, 1);
        assert!((inner.self_time - 3.0).abs() < 1e-12);
        let outer = &trace.spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert!((outer.duration() - 5.0).abs() < 1e-12);
        // 5.0 total minus 3.0 in the child.
        assert!((outer.self_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_drop_is_safe_and_idempotent() {
        let c = cell(0.0);
        let t = Tracer::virtual_clock(0, 0, Arc::clone(&c));
        let outer = t.span("outer");
        set(&c, 1.0);
        let inner = t.span("inner");
        set(&c, 2.0);
        // Outer drops first (simulates unwind reordering / mem::forget
        // patterns); it must close inner too.
        drop(outer);
        set(&c, 9.0);
        drop(inner); // stale id: no-op, must not panic
        let trace = t.take().unwrap();
        assert_eq!(trace.spans.len(), 2);
        for s in &trace.spans {
            assert!(s.end <= 2.0 + 1e-12, "{} closed late: {}", s.name, s.end);
        }
    }

    #[test]
    fn take_force_closes_open_spans() {
        let c = cell(0.0);
        let t = Tracer::virtual_clock(0, 0, Arc::clone(&c));
        let g = t.span("leaked");
        set(&c, 2.5);
        let trace = t.take().unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert!((trace.spans[0].duration() - 2.5).abs() < 1e-12);
        assert!((trace.end - 2.5).abs() < 1e-12);
        drop(g); // closes an id that no longer exists: no-op
        assert!(t.take().unwrap().spans.is_empty());
    }

    #[test]
    fn drop_survives_poisoned_lock() {
        let c = cell(0.0);
        let t = Tracer::virtual_clock(0, 0, Arc::clone(&c));
        let t2 = t.clone();
        // Poison the state mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _g = t2.inner.as_ref().unwrap().state.lock().unwrap();
            panic!("poison the tracer lock");
        })
        .join();
        {
            let _g = t.span("after-poison");
            set(&c, 1.0);
        }
        let trace = t.take().unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "after-poison");
    }

    #[test]
    fn real_clock_spans_are_monotonic() {
        let t = Tracer::real_clock(0, 0);
        {
            let _g = t.span("real");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let trace = t.take().unwrap();
        assert_eq!(trace.spans.len(), 1);
        assert!(trace.spans[0].duration() > 0.0);
    }

    #[test]
    fn self_totals_accumulate_and_reset_on_take() {
        let c = cell(0.0);
        let t = Tracer::virtual_clock(0, 0, Arc::clone(&c));
        {
            let _outer = t.span("phase/a");
            set(&c, 1.0);
            {
                let _inner = t.span("phase/b");
                set(&c, 4.0);
            }
            set(&c, 5.0);
        }
        {
            let _again = t.span("phase/b");
            set(&c, 6.0);
        }
        let totals = t.self_totals();
        assert!((totals["phase/a"] - 2.0).abs() < 1e-12);
        assert!((totals["phase/b"] - 4.0).abs() < 1e-12, "3.0 + 1.0");
        let _ = t.take().unwrap();
        assert!(t.self_totals().is_empty(), "take resets the aggregate");
        assert!(Tracer::disabled().self_totals().is_empty());
    }

    #[test]
    fn ctx_words_round_trip_and_identify_the_open_span() {
        assert_eq!(unpack_ctx(0), None);
        let (pid, rank, span) = unpack_ctx(pack_ctx(1, 1119, 7)).unwrap();
        assert_eq!((pid, rank, span), (1, 1119, 7));

        let c = cell(0.0);
        let t = Tracer::virtual_clock(1, 5, Arc::clone(&c));
        assert!(Tracer::disabled().ctx_word() == 0);
        {
            let _a = t.span("a");
            let (pid, rank, span) = unpack_ctx(t.ctx_word()).unwrap();
            assert_eq!((pid, rank), (1, 5));
            let trace_span = {
                set(&c, 1.0);
                span
            };
            drop(_a);
            let trace = t.take().unwrap();
            assert_eq!(trace.spans[0].id, trace_span);
        }
    }

    #[test]
    fn edges_capture_binding_and_reset_on_take() {
        let c = cell(2.0);
        let t = Tracer::virtual_clock(0, 1, Arc::clone(&c));
        let g = t.span("recv");
        // Binding: payload ready after the receiver started waiting.
        t.record_edge(pack_ctx(0, 0, 9), 1.0, 3.0, 2.0, EdgeKind::Message);
        // Non-binding: payload was already waiting.
        t.record_edge(pack_ctx(0, 0, 10), 0.5, 1.5, 2.0, EdgeKind::Message);
        drop(g);
        let trace = t.take().unwrap();
        assert_eq!(trace.edges.len(), 2);
        assert!(trace.edges[0].binding);
        assert_eq!(trace.edges[0].dst_span, trace.spans[0].id);
        assert_eq!(unpack_ctx(trace.edges[0].src), Some((0, 0, 9)));
        assert!(!trace.edges[1].binding);
        assert!(t.take().unwrap().edges.is_empty(), "take drains edges");
        // Disabled tracers ignore edges entirely.
        Tracer::disabled().record_edge(0, 0.0, 1.0, 0.0, EdgeKind::Wire);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let c = cell(0.0);
        let t = Tracer::virtual_clock(0, 0, Arc::clone(&c));
        {
            let _a = t.span("a");
            set(&c, 1.0);
        }
        {
            let _b = t.span("b");
            set(&c, 3.0);
        }
        let trace = t.take().unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert!(trace.spans.iter().all(|s| s.depth == 0));
        let b = trace.spans.iter().find(|s| s.name == "b").unwrap();
        assert!((b.self_time - 2.0).abs() < 1e-12);
    }
}
