//! Chrome trace-event export.
//!
//! Emits the JSON array flavor of the trace-event format — loadable in
//! Perfetto and `chrome://tracing` — with one process per world (pid 0 =
//! simulation ranks, pid 1 = endpoint ranks) and one thread track per
//! rank. Stamps are virtual seconds converted to integer microseconds.
//! Serialization is hand-rolled: the workspace is offline and the span
//! payload is flat enough that serde would be overkill.

use crate::RankTrace;

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn micros(t: f64) -> u64 {
    (t.max(0.0) * 1e6).round() as u64
}

fn process_name(pid: u32) -> &'static str {
    match pid {
        0 => "simulation",
        1 => "endpoint",
        _ => "aux",
    }
}

/// Render `traces` as a Chrome trace-event JSON array: `"M"` metadata
/// naming each process and rank track, then one `"X"` (complete) event
/// per span.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let mut events: Vec<String> = Vec::new();

    let mut pids: Vec<u32> = traces.iter().map(|t| t.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            process_name(pid)
        ));
    }

    let mut ordered: Vec<&RankTrace> = traces.iter().collect();
    ordered.sort_by_key(|t| (t.pid, t.rank));
    for t in &ordered {
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{},"args":{{"name":"rank {}"}}}}"#,
            t.pid, t.rank, t.rank
        ));
    }

    for t in &ordered {
        for s in &t.spans {
            events.push(format!(
                r#"{{"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{}}}"#,
                escape(&s.name),
                escape(s.name.split('/').next().unwrap_or("span")),
                micros(s.start),
                micros(s.duration()),
                t.pid,
                t.rank
            ));
        }
    }

    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn trace(pid: u32, rank: usize) -> RankTrace {
        RankTrace {
            pid,
            rank,
            end: 2.0,
            spans: vec![Span {
                id: 0,
                name: "sem/pressure".to_string(),
                start: 0.5,
                end: 1.5,
                depth: 0,
                self_time: 1.0,
            }],
            edges: vec![],
        }
    }

    #[test]
    fn emits_metadata_and_complete_events() {
        let json = chrome_trace_json(&[trace(0, 0), trace(0, 1), trace(1, 0)]);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches(r#""ph":"X""#).count(), 3);
        assert_eq!(json.matches(r#""name":"thread_name""#).count(), 3);
        assert_eq!(json.matches(r#""name":"process_name""#).count(), 2);
        assert!(json.contains(r#""ts":500000"#));
        assert!(json.contains(r#""dur":1000000"#));
        // Balanced braces — cheap structural sanity for the hand-rolled JSON.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn escapes_special_characters() {
        let mut t = trace(0, 0);
        t.spans[0].name = "weird\"name\\with\ncontrol\u{1}".to_string();
        let json = chrome_trace_json(&[t]);
        assert!(json.contains(r#"weird\"name\\with\ncontrol"#));
        assert!(json.contains(r#"control\u0001"#));
    }

    #[test]
    fn empty_input_is_valid_array() {
        assert_eq!(chrome_trace_json(&[]), "[\n]");
    }
}
