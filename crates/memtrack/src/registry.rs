//! A registry grouping accountants so a harness can snapshot the whole job.
//!
//! The paper reports the *aggregate* high-water mark across ranks; the
//! registry's [`Registry::aggregate_peak`] provides exactly that sum, while
//! [`Registry::snapshot`] keeps the per-subsystem breakdown for analysis.

use crate::accountant::Accountant;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named collection of [`Accountant`]s.
///
/// Clonable and thread-safe; typically one registry per simulated job with
/// one accountant per (rank, subsystem) pair.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    accountants: Arc<RwLock<BTreeMap<String, Accountant>>>,
}

/// A point-in-time view of every accountant in a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// (name, current bytes, peak bytes), sorted by name.
    pub entries: Vec<(String, u64, u64)>,
}

impl Snapshot {
    /// Sum of current bytes over all entries.
    pub fn total_current(&self) -> u64 {
        self.entries.iter().map(|(_, c, _)| c).sum()
    }

    /// Sum of peak bytes over all entries.
    pub fn total_peak(&self) -> u64 {
        self.entries.iter().map(|(_, _, p)| p).sum()
    }

    /// Entries whose name starts with `prefix` (e.g. `"rank3/"`).
    pub fn with_prefix(&self, prefix: &str) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|(n, _, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the accountant with this name.
    pub fn accountant(&self, name: &str) -> Accountant {
        if let Some(a) = self.accountants.read().get(name) {
            return a.clone();
        }
        let mut map = self.accountants.write();
        map.entry(name.to_string())
            .or_insert_with(|| Accountant::new(name))
            .clone()
    }

    /// Number of registered accountants.
    pub fn len(&self) -> usize {
        self.accountants.read().len()
    }

    /// True when no accountant has been registered.
    pub fn is_empty(&self) -> bool {
        self.accountants.read().is_empty()
    }

    /// Snapshot every accountant.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.accountants.read();
        Snapshot {
            entries: map
                .iter()
                .map(|(n, a)| (n.clone(), a.current(), a.peak()))
                .collect(),
        }
    }

    /// Aggregate peak over all accountants — the paper's "memory high water
    /// mark across all MPI ranks" when one accountant is kept per rank.
    pub fn aggregate_peak(&self) -> u64 {
        self.accountants.read().values().map(|a| a.peak()).sum()
    }

    /// Aggregate current bytes over all accountants.
    pub fn aggregate_current(&self) -> u64 {
        self.accountants.read().values().map(|a| a.current()).sum()
    }

    /// Maximum single-accountant peak — the per-node footprint view used by
    /// Figure 6 (memory per simulation node).
    pub fn max_peak(&self) -> u64 {
        self.accountants
            .read()
            .values()
            .map(|a| a.peak())
            .max()
            .unwrap_or(0)
    }

    /// Reset every accountant's peak to its current value.
    pub fn reset_peaks(&self) {
        for a in self.accountants.read().values() {
            a.reset_peak();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_is_created_once_and_shared() {
        let r = Registry::new();
        let a = r.accountant("rank0/solver");
        let b = r.accountant("rank0/solver");
        a.charge_raw(10);
        assert_eq!(b.current(), 10);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn aggregate_peak_sums_ranks() {
        let r = Registry::new();
        r.accountant("rank0").charge_raw(100);
        r.accountant("rank1").charge_raw(250);
        assert_eq!(r.aggregate_peak(), 350);
        assert_eq!(r.aggregate_current(), 350);
        assert_eq!(r.max_peak(), 250);
    }

    #[test]
    fn snapshot_prefix_filter_selects_rank() {
        let r = Registry::new();
        r.accountant("rank0/solver").charge_raw(1);
        r.accountant("rank0/vtk").charge_raw(2);
        r.accountant("rank1/solver").charge_raw(4);
        let snap = r.snapshot();
        assert_eq!(snap.total_current(), 7);
        let rank0 = snap.with_prefix("rank0/");
        assert_eq!(rank0.entries.len(), 2);
        assert_eq!(rank0.total_current(), 3);
    }

    #[test]
    fn reset_peaks_applies_to_all() {
        let r = Registry::new();
        let a = r.accountant("x");
        let c = a.charge(1000);
        drop(c);
        assert_eq!(r.aggregate_peak(), 1000);
        r.reset_peaks();
        assert_eq!(r.aggregate_peak(), 0);
    }

    #[test]
    fn empty_registry_reports_zero() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.aggregate_peak(), 0);
        assert_eq!(r.max_peak(), 0);
        assert_eq!(r.snapshot().entries.len(), 0);
    }
}
