//! Memory high-water-mark instrumentation.
//!
//! The paper's Figures 3 and 6 report the *aggregate memory high water mark
//! across all MPI ranks* of a NekRS run under different in situ
//! configurations. Reproducing that measurement needs two instruments:
//!
//! 1. [`TrackingAllocator`] — a process-wide `GlobalAlloc` wrapper that
//!    records current and peak heap usage. Binaries opt in with
//!    `#[global_allocator]`. Because our "MPI ranks" are threads inside one
//!    process, this gives the whole-job high-water mark directly.
//! 2. [`Accountant`] — an explicit, cheap byte counter that subsystems
//!    (solver state, VTK copies, staging queues, framebuffers) charge their
//!    allocations to. Accountants nest under a [`Registry`] so a per-rank or
//!    per-subsystem breakdown can be reported, which is what the figure
//!    harnesses use to attribute the +25% Catalyst overhead the paper
//!    observes to the GPU→CPU data copy and render pipeline.
//!
//! Both instruments report `current()` and `peak()` in bytes and are safe to
//! use concurrently from many rank threads.

pub mod accountant;
pub mod alloc;
pub mod registry;

pub use accountant::{Accountant, Charge};
pub use alloc::TrackingAllocator;
pub use registry::{Registry, Snapshot};

/// Format a byte count in human-readable IEC units (KiB/MiB/GiB).
///
/// Used by the figure harnesses so their output reads like the paper's
/// memory plots ("19GB", "6.5MB").
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1536), "1.50 KiB");
        assert_eq!(human_bytes(1024 * 1024), "1.00 MiB");
        assert_eq!(human_bytes(19 * 1024 * 1024 * 1024), "19.00 GiB");
    }

    #[test]
    fn human_bytes_saturates_at_tib() {
        let huge = 1u64 << 50; // 1 PiB expressed in TiB
        assert_eq!(human_bytes(huge), "1024.00 TiB");
    }
}
