//! Explicit byte accounting for attributing memory to subsystems.
//!
//! The process-wide tracking allocator cannot say *which* rank or subsystem
//! owns the bytes at the high-water mark. Subsystems therefore charge their
//! long-lived buffers to an [`Accountant`] ("solver state", "vtk copy",
//! "staging queue", "framebuffer", ...). The figure harnesses read the
//! accountants to reproduce the paper's per-configuration memory comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    current: AtomicU64,
    peak: AtomicU64,
    charges: AtomicU64,
}

/// A cheap, clonable, thread-safe byte counter with a high-water mark.
///
/// Cloning shares the same counters (it is an `Arc` internally), so a rank
/// thread and the metrics collector can hold the same accountant.
#[derive(Debug, Clone, Default)]
pub struct Accountant {
    name: Arc<str>,
    inner: Arc<Inner>,
}

impl Accountant {
    /// Create a named accountant with zeroed counters.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Self {
            name: name.into(),
            inner: Arc::new(Inner::default()),
        }
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record `bytes` as newly resident. Returns a [`Charge`] guard that
    /// credits the bytes back when dropped, so scoped buffers can be
    /// accounted with RAII.
    pub fn charge(&self, bytes: u64) -> Charge {
        self.charge_raw(bytes);
        Charge {
            accountant: self.clone(),
            bytes,
        }
    }

    /// Record `bytes` as resident without a guard. Pair with
    /// [`Accountant::credit_raw`].
    pub fn charge_raw(&self, bytes: u64) {
        self.inner.charges.fetch_add(1, Ordering::Relaxed);
        let now = self.inner.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let mut peak = self.inner.peak.load(Ordering::Relaxed);
        while now > peak {
            match self.inner.peak.compare_exchange_weak(
                peak,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    /// Release `bytes` previously charged with [`Accountant::charge_raw`].
    ///
    /// Saturates at zero: crediting more than was charged is a caller bug but
    /// must not wrap the counter, which would poison every later reading.
    pub fn credit_raw(&self, bytes: u64) {
        let mut cur = self.inner.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.inner.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Bytes currently charged.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Number of charge operations (diagnostic).
    pub fn charge_count(&self) -> u64 {
        self.inner.charges.load(Ordering::Relaxed)
    }

    /// Reset the peak to the current value (phase-scoped measurement).
    pub fn reset_peak(&self) {
        self.inner.peak.store(
            self.inner.current.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

/// RAII guard returned by [`Accountant::charge`]; credits the bytes back on
/// drop.
#[derive(Debug)]
pub struct Charge {
    accountant: Accountant,
    bytes: u64,
}

impl Charge {
    /// Bytes held by this charge.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow or shrink the charge in place (e.g. a staging queue that
    /// changes size), keeping RAII semantics.
    pub fn resize(&mut self, new_bytes: u64) {
        if new_bytes > self.bytes {
            self.accountant.charge_raw(new_bytes - self.bytes);
        } else {
            self.accountant.credit_raw(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
    }
}

impl Drop for Charge {
    fn drop(&mut self) {
        self.accountant.credit_raw(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn charge_guard_credits_on_drop() {
        let a = Accountant::new("test");
        {
            let _c = a.charge(1000);
            assert_eq!(a.current(), 1000);
        }
        assert_eq!(a.current(), 0);
        assert_eq!(a.peak(), 1000);
    }

    #[test]
    fn resize_adjusts_current_both_directions() {
        let a = Accountant::new("resize");
        let mut c = a.charge(100);
        c.resize(400);
        assert_eq!(a.current(), 400);
        c.resize(50);
        assert_eq!(a.current(), 50);
        drop(c);
        assert_eq!(a.current(), 0);
        assert_eq!(a.peak(), 400);
    }

    #[test]
    fn credit_saturates_instead_of_wrapping() {
        let a = Accountant::new("sat");
        a.charge_raw(10);
        a.credit_raw(100);
        assert_eq!(a.current(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let a = Accountant::new("shared");
        let b = a.clone();
        a.charge_raw(64);
        assert_eq!(b.current(), 64);
        b.credit_raw(64);
        assert_eq!(a.current(), 0);
    }

    #[test]
    fn concurrent_charges_preserve_balance_and_peak_lower_bound() {
        let a = Accountant::new("mt");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = a.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        a.charge_raw(16);
                        a.credit_raw(16);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.current(), 0);
        assert!(a.peak() >= 16);
        assert_eq!(a.charge_count(), 8000);
    }

    #[test]
    fn reset_peak_snaps_to_current() {
        let a = Accountant::new("reset");
        let c = a.charge(500);
        drop(c);
        assert_eq!(a.peak(), 500);
        a.reset_peak();
        assert_eq!(a.peak(), 0);
    }
}
