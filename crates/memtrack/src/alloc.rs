//! Process-wide tracking allocator.
//!
//! Wraps the system allocator and maintains lock-free counters for live and
//! peak heap bytes. The peak is maintained with a CAS loop so concurrent
//! rank threads never lose an update.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A `GlobalAlloc` wrapper that tracks current and peak heap usage.
///
/// Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: memtrack::TrackingAllocator = memtrack::TrackingAllocator::new();
/// ```
///
/// and read the counters at any point via [`TrackingAllocator::current`] /
/// [`TrackingAllocator::peak`] on the static, or process-wide through
/// [`global_current`] / [`global_peak`] which read the same counters.
pub struct TrackingAllocator {
    _priv: (),
}

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

impl TrackingAllocator {
    /// Create the allocator. `const` so it can initialize a static.
    pub const fn new() -> Self {
        Self { _priv: () }
    }

    /// Live heap bytes right now.
    pub fn current(&self) -> u64 {
        global_current()
    }

    /// High-water mark of live heap bytes since process start (or last
    /// [`reset_peak`]).
    pub fn peak(&self) -> u64 {
        global_peak()
    }
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

fn record_alloc(size: usize) {
    let size = size as u64;
    TOTAL_ALLOCATED.fetch_add(size, Ordering::Relaxed);
    ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // CAS loop: only ratchet the peak upward.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn record_dealloc(size: usize) {
    CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: defers entirely to `System` for memory management; the counters are
// side effects on atomics and cannot affect allocation correctness.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        new_ptr
    }
}

/// Live heap bytes as seen by the tracking allocator (0 if not installed).
pub fn global_current() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes as seen by the tracking allocator (0 if not installed).
pub fn global_peak() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes ever allocated (never decreases).
pub fn global_total_allocated() -> u64 {
    TOTAL_ALLOCATED.load(Ordering::Relaxed)
}

/// Number of allocation calls observed.
pub fn global_allocation_count() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

/// Reset the peak to the current live value, so a harness can measure the
/// high-water mark of one phase in isolation.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in unit tests (installing a global
    // allocator in a lib crate would impose it on every dependent), so we
    // exercise the counter logic directly.

    #[test]
    fn peak_ratchets_up_only() {
        reset_peak();
        let before_peak = global_peak();
        record_alloc(4096);
        assert!(global_peak() >= before_peak + 4096);
        let peak_after_alloc = global_peak();
        record_dealloc(4096);
        assert_eq!(
            global_peak(),
            peak_after_alloc,
            "dealloc must not lower peak"
        );
    }

    #[test]
    fn current_tracks_alloc_dealloc_balance() {
        let before = global_current();
        record_alloc(128);
        record_alloc(256);
        assert_eq!(global_current(), before + 384);
        record_dealloc(128);
        record_dealloc(256);
        assert_eq!(global_current(), before);
    }

    #[test]
    fn totals_are_monotonic() {
        let t0 = global_total_allocated();
        let c0 = global_allocation_count();
        record_alloc(64);
        record_dealloc(64);
        assert_eq!(global_total_allocated(), t0 + 64);
        assert_eq!(global_allocation_count(), c0 + 1);
    }
}
