//! Reduction operators for collectives.

/// The reduction operators the solver and harnesses need (MPI_SUM/MIN/MAX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to two scalars.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The operator's identity element.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Fold an iterator of contributions.
    pub fn fold(self, values: impl IntoIterator<Item = f64>) -> f64 {
        values
            .into_iter()
            .fold(self.identity(), |acc, v| self.apply(acc, v))
    }

    /// Elementwise fold of equal-length vectors into `out`.
    ///
    /// # Panics
    /// Panics if any contribution's length differs from `out.len()`.
    pub fn fold_vecs(self, out: &mut [f64], contributions: &[Vec<f64>]) {
        for v in out.iter_mut() {
            *v = self.identity();
        }
        for c in contributions {
            assert_eq!(c.len(), out.len(), "allreduce length mismatch across ranks");
            for (o, x) in out.iter_mut().zip(c) {
                *o = self.apply(*o, *x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_ops() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn fold_respects_identity() {
        assert_eq!(ReduceOp::Sum.fold([]), 0.0);
        assert_eq!(ReduceOp::Min.fold([]), f64::INFINITY);
        assert_eq!(ReduceOp::Max.fold([1.0, -4.0, 2.5]), 2.5);
        assert_eq!(ReduceOp::Min.fold([1.0, -4.0, 2.5]), -4.0);
    }

    #[test]
    fn fold_vecs_elementwise() {
        let mut out = vec![0.0; 3];
        ReduceOp::Max.fold_vecs(&mut out, &[vec![1.0, 5.0, 3.0], vec![4.0, 2.0, 6.0]]);
        assert_eq!(out, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_vecs_rejects_ragged_input() {
        let mut out = vec![0.0; 2];
        ReduceOp::Sum.fold_vecs(&mut out, &[vec![1.0, 2.0, 3.0]]);
    }
}
