//! Execution modes: how the ranks of a [`crate::World`] are driven.
//!
//! Two executors implement the same rank-per-OS-thread spawn/join contract
//! (see [`Executor`]):
//!
//! * [`ThreadExecutor`] — every rank thread runs freely and blocks in the
//!   rendezvous primitives (channel timeouts, condvars). This is the
//!   original commsim behavior: simple, parallel on real cores, but every
//!   blocked rank still burns a 50 ms wakeup poll, and collectives wake
//!   all waiters per phase flip — at thousands of ranks the host drowns
//!   in futile wakeups. A hard world-size cap (see
//!   [`ThreadExecutor::max_ranks`]) turns the eventual OS thread-spawn
//!   failure into an actionable error.
//!
//! * [`EventExecutor`] — discrete-event mode. Rank threads exist only as
//!   suspension points: a single *run token* is granted to one rank at a
//!   time by [`EventSched`], and every blocking point in
//!   `comm.rs` (recv, barrier/reduce rendezvous) parks the thread and
//!   returns the token. The scheduler always resumes the runnable rank
//!   with the **earliest virtual clock** (a pending queue keyed by the
//!   clock's bit pattern), so execution order follows virtual time, not
//!   OS scheduling. Blocked ranks are woken by targeted `unpark`s (O(1)
//!   per message, O(waiters) per collective phase flip), which is what
//!   makes 10k-rank worlds practical.
//!
//! Virtual-time output is bitwise identical across the two executors by
//! construction: both drive the *same* rendezvous code in `comm.rs`, and
//! the clock rules there depend only on operation order and sizes — never
//! on which thread happened to run first. The differential suite in
//! `tests/scheduler_parity.rs` enforces this end to end.
//!
//! Mode selection: `NEK_SCHED_MODE=event` (or `thread`, the default), or
//! programmatically via [`with_mode`], which takes precedence and is
//! propagated into spawned rank threads like the compute-pool override.

use crate::comm::{Comm, World};
use crate::machine::MachineModel;
use crate::runner::RankResult;
use crate::sched::EventSched;
use memtrack::Registry;
use std::cell::Cell;
use std::sync::Arc;
use std::thread;

/// Which executor drives the rank world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// One free-running OS thread per rank (the original behavior).
    Thread,
    /// Discrete-event scheduling: one rank runs at a time, earliest
    /// virtual clock first.
    Event,
}

impl SchedMode {
    /// Read `NEK_SCHED_MODE` (`"event"` / `"thread"`); defaults to
    /// [`SchedMode::Thread`] when unset or unrecognised.
    pub fn from_env() -> Self {
        match std::env::var("NEK_SCHED_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("event") => SchedMode::Event,
            _ => SchedMode::Thread,
        }
    }

    /// The effective mode on this thread: a [`with_mode`] override wins,
    /// otherwise the environment default applies.
    pub fn current() -> Self {
        mode_override().unwrap_or_else(Self::from_env)
    }

    /// Display label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SchedMode::Thread => "thread",
            SchedMode::Event => "event",
        }
    }
}

impl Default for SchedMode {
    /// The ambient mode ([`SchedMode::current`]), so configuration
    /// structs built with `..Default::default()` follow the environment
    /// or an enclosing [`with_mode`] scope.
    fn default() -> Self {
        Self::current()
    }
}

thread_local! {
    static MODE_OVERRIDE: Cell<Option<SchedMode>> = const { Cell::new(None) };
}

/// The active [`with_mode`] override on this thread, if any. Capture it
/// before spawning helper threads that should inherit the scope.
pub fn mode_override() -> Option<SchedMode> {
    MODE_OVERRIDE.with(|c| c.get())
}

/// Run `f` with the scheduler mode forced to `mode` on this thread
/// (restores the previous override on exit, including on panic).
pub fn with_mode<R>(mode: SchedMode, f: impl FnOnce() -> R) -> R {
    with_mode_override(Some(mode), f)
}

/// Run `f` under a captured [`mode_override`] (no-op when `None`). Used
/// to carry an enclosing `with_mode` scope across thread spawns.
pub fn with_mode_override<R>(over: Option<SchedMode>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SchedMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = MODE_OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    if over.is_some() {
        MODE_OVERRIDE.with(|c| c.set(over));
    }
    f()
}

/// Spawn-and-join contract shared by both executors: run `f` on every
/// rank of a fresh world and return per-rank results indexed by rank,
/// re-raising the first rank panic after poisoning the world.
pub trait Executor {
    /// The mode this executor implements.
    fn mode(&self) -> SchedMode;

    /// Run `f` on `size` ranks over `machine`, sharing `registry`.
    fn run_world<R, F>(
        &self,
        size: usize,
        machine: MachineModel,
        registry: Registry,
        f: F,
    ) -> Vec<RankResult<R>>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static;
}

/// Default per-rank stack: ranks mostly block in rendezvous, so stacks
/// stay small and hundreds of ranks fit comfortably.
pub const RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Default world-size cap for [`ThreadExecutor`] (overridable via
/// `NEK_THREAD_MAX_RANKS`). Beyond ~2k free-running threads the condvar
/// broadcast storms in the collective rendezvous dominate wall time long
/// before the OS refuses to spawn, so the cap fails fast with a pointer
/// to event mode instead.
pub const THREAD_MODE_DEFAULT_MAX_RANKS: usize = 2048;

/// The original rank-per-thread executor: all ranks run concurrently and
/// block inside the rendezvous primitives.
#[derive(Debug, Clone, Copy)]
pub struct ThreadExecutor {
    /// Stack bytes per rank thread.
    pub stack_bytes: usize,
    /// Largest world this executor accepts; exceeding it panics with an
    /// actionable error instead of failing thread-by-thread at spawn.
    pub max_ranks: usize,
}

impl Default for ThreadExecutor {
    fn default() -> Self {
        let max_ranks = std::env::var("NEK_THREAD_MAX_RANKS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(THREAD_MODE_DEFAULT_MAX_RANKS);
        Self {
            stack_bytes: RANK_STACK_BYTES,
            max_ranks,
        }
    }
}

impl Executor for ThreadExecutor {
    fn mode(&self) -> SchedMode {
        SchedMode::Thread
    }

    fn run_world<R, F>(
        &self,
        size: usize,
        machine: MachineModel,
        registry: Registry,
        f: F,
    ) -> Vec<RankResult<R>>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        assert!(
            size <= self.max_ranks,
            "thread executor: world size {size} exceeds the {} free-running \
             OS-thread cap ({} B stacks). Use NEK_SCHED_MODE=event (the \
             discrete-event executor handles 10k+ virtual ranks), or raise \
             NEK_THREAD_MAX_RANKS if the host really has the headroom.",
            self.max_ranks,
            self.stack_bytes,
        );
        spawn_and_join(size, machine, registry, self.stack_bytes, None, f)
    }
}

/// The discrete-event executor: rank threads are coroutine-style tasks
/// suspended at every communication point; an [`EventSched`] resumes the
/// runnable rank with the earliest virtual clock.
#[derive(Debug, Clone, Copy)]
pub struct EventExecutor {
    /// Stack bytes per rank task. Only one rank runs at a time, but every
    /// suspended rank keeps its stack; tests that spawn 10k trivial ranks
    /// shrink this well below [`RANK_STACK_BYTES`].
    pub stack_bytes: usize,
}

impl Default for EventExecutor {
    fn default() -> Self {
        Self {
            stack_bytes: RANK_STACK_BYTES,
        }
    }
}

impl EventExecutor {
    /// An executor with `stack_bytes` per rank task (for very wide,
    /// trivial-workload worlds).
    pub fn with_stack_bytes(stack_bytes: usize) -> Self {
        Self { stack_bytes }
    }
}

impl Executor for EventExecutor {
    fn mode(&self) -> SchedMode {
        SchedMode::Event
    }

    fn run_world<R, F>(
        &self,
        size: usize,
        machine: MachineModel,
        registry: Registry,
        f: F,
    ) -> Vec<RankResult<R>>
    where
        R: Send + 'static,
        F: Fn(&mut Comm) -> R + Send + Sync + 'static,
    {
        let sched = Arc::new(EventSched::new(size));
        spawn_and_join(size, machine, registry, self.stack_bytes, Some(sched), f)
    }
}

/// The spawn/join loop both executors share. With a scheduler, each rank
/// registers itself and waits for the run token before touching user
/// code, and releases its slot when it finishes or unwinds.
fn spawn_and_join<R, F>(
    size: usize,
    machine: MachineModel,
    registry: Registry,
    stack_bytes: usize,
    sched: Option<Arc<EventSched>>,
    f: F,
) -> Vec<RankResult<R>>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> R + Send + Sync + 'static,
{
    let world = World::new_with_sched(size, machine, registry, sched.clone());
    let f = Arc::new(f);
    // Rank threads share one global compute pool (see `rayon::pool`); the
    // spawning thread's pool-size override carries over so e.g.
    // `pool::with_threads(1, || run_ranks(..))` forces sequential kernels
    // inside every rank. The scheduler-mode override carries the same way
    // so nested worlds spawned from rank code stay in the chosen mode.
    let pool_override = rayon::pool::override_threads();
    let sched_override = mode_override();
    let mut handles = Vec::with_capacity(size);
    for rank in 0..size {
        let world = Arc::clone(&world);
        let f = Arc::clone(&f);
        let sched = sched.clone();
        let handle = thread::Builder::new()
            .name(format!("rank{rank}"))
            .stack_size(stack_bytes)
            .spawn(move || {
                let mut comm = world.attach(rank);
                if let Some(s) = &sched {
                    // Wait for the run token; on a world already poisoned
                    // by an earlier rank panic, fall through — the first
                    // communication attempt aborts with the poison error.
                    s.start(rank);
                }
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rayon::pool::with_override(pool_override, || {
                        with_mode_override(sched_override, || f(&mut comm))
                    })
                }));
                let out = match outcome {
                    Ok(value) => {
                        let time = comm.now();
                        let stats = *comm.stats();
                        Ok(RankResult {
                            rank,
                            value,
                            time,
                            stats,
                        })
                    }
                    Err(payload) => {
                        // A rank that panics because the world was already
                        // poisoned is collateral damage; remember that so the
                        // runner re-raises the original panic, not this one.
                        let secondary = world.is_poisoned();
                        world.poison();
                        Err((secondary, payload))
                    }
                };
                if let Some(s) = &sched {
                    s.finish(rank);
                }
                out
            })
            .expect("failed to spawn rank thread");
        handles.push(handle);
    }

    let mut results: Vec<Option<RankResult<R>>> = (0..size).map(|_| None).collect();
    let mut primary_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut secondary_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(result)) => {
                let rank = result.rank;
                results[rank] = Some(result);
            }
            Ok(Err((secondary, payload))) => {
                if secondary {
                    secondary_panic.get_or_insert(payload);
                } else {
                    primary_panic.get_or_insert(payload);
                }
            }
            Err(payload) => {
                primary_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = primary_panic.or(secondary_panic) {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|r| r.expect("rank produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_thread() {
        // The test harness never sets NEK_SCHED_MODE=event globally for
        // this unit test binary; current() must fall back cleanly.
        let m = SchedMode::current();
        assert!(matches!(m, SchedMode::Thread | SchedMode::Event));
    }

    #[test]
    fn with_mode_scopes_and_restores() {
        let base = SchedMode::current();
        let inner = with_mode(SchedMode::Event, SchedMode::current);
        assert_eq!(inner, SchedMode::Event);
        assert_eq!(SchedMode::current(), base);
        let nested = with_mode(SchedMode::Event, || {
            with_mode(SchedMode::Thread, SchedMode::current)
        });
        assert_eq!(nested, SchedMode::Thread);
        assert_eq!(SchedMode::current(), base);
    }

    #[test]
    fn with_mode_restores_on_panic() {
        let base = mode_override();
        let _ = std::panic::catch_unwind(|| {
            with_mode(SchedMode::Event, || panic!("boom"));
        });
        assert_eq!(mode_override(), base);
    }

    #[test]
    fn labels_round_trip() {
        assert_eq!(SchedMode::Thread.label(), "thread");
        assert_eq!(SchedMode::Event.label(), "event");
    }

    #[test]
    #[should_panic(expected = "exceeds the 4 free-running OS-thread cap")]
    fn thread_executor_caps_world_size() {
        let exec = ThreadExecutor {
            stack_bytes: RANK_STACK_BYTES,
            max_ranks: 4,
        };
        exec.run_world(5, MachineModel::test_tiny(), Registry::new(), |comm| {
            comm.rank()
        });
    }

    #[test]
    fn event_executor_matches_thread_executor_on_a_ring() {
        let run = |exec: &dyn Fn() -> Vec<RankResult<f64>>| exec();
        let workload = |comm: &mut Comm| {
            let n = comm.size();
            let r = comm.rank();
            comm.advance(r as f64 * 1e-3);
            comm.send((r + 1) % n, 7, r as u64, 64);
            let got = comm.recv::<u64>((r + n - 1) % n, 7);
            assert_eq!(got as usize, (r + n - 1) % n);
            let s = comm.allreduce(1.0, crate::ReduceOp::Sum);
            assert_eq!(s, n as f64);
            comm.now()
        };
        let a = run(&|| {
            ThreadExecutor::default().run_world(
                6,
                MachineModel::test_tiny(),
                Registry::new(),
                workload,
            )
        });
        let b = run(&|| {
            EventExecutor::default().run_world(
                6,
                MachineModel::test_tiny(),
                Registry::new(),
                workload,
            )
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time.to_bits(), y.time.to_bits(), "rank {}", x.rank);
            assert_eq!(x.stats, y.stats, "rank {}", x.rank);
        }
    }
}
