//! The communicator: MPI-like point-to-point and collective operations over
//! rank threads, synchronizing per-rank virtual clocks.
//!
//! Time semantics:
//! * `send` stamps the message with `sender_now + α + bytes/β` (its arrival
//!   time at the destination NIC) and does not block (eager protocol).
//! * `recv` completes at `max(receiver_now, message_arrival_time)`.
//! * collectives rendezvous all ranks and release them at
//!   `max(arrival times) + tree_cost(P, bytes)`.
//!
//! Because these rules depend only on operation order and sizes, virtual
//! time is deterministic across runs regardless of OS scheduling.

use crate::clock::Clock;
use crate::machine::MachineModel;
use crate::reduce::ReduceOp;
use crate::sched::{EventSched, WaitReason};
use crate::stats::CommStats;
use crossbeam_channel::{unbounded, Receiver, Sender};
use memtrack::{Accountant, Registry};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{RankTelemetry, TelemetryHub};
use trace::{RankTrace, SpanGuard, Tracer};

/// Errors surfaced by non-panicking communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank thread panicked; every blocked operation aborts.
    Poisoned,
    /// `try_recv` found no matching message.
    WouldBlock,
    /// A message with the requested (source, tag) carried a different type.
    TypeMismatch {
        /// Source rank of the offending message.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Poisoned => write!(f, "communicator poisoned by a rank panic"),
            CommError::WouldBlock => write!(f, "no matching message available"),
            CommError::TypeMismatch { src, tag } => {
                write!(
                    f,
                    "message from rank {src} tag {tag} has unexpected payload type"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

struct Envelope {
    src: usize,
    tag: u64,
    /// Virtual time at which the message is available at the receiver.
    t_avail: f64,
    nbytes: u64,
    /// Sender's trace-context word ([`trace::pack_ctx`]); 0 when the
    /// sender is untraced. Piggybacked so the receiver can record a
    /// happens-before edge without any extra synchronization.
    ctx: u64,
    /// Sender's virtual clock at the moment of the send.
    t_sent: f64,
    payload: Box<dyn Any + Send>,
}

enum Phase {
    Collecting,
    Distributing,
}

struct CollState {
    phase: Phase,
    arrived: usize,
    departed: usize,
    times: Vec<f64>,
    /// Per-rank trace-context words captured at rendezvous arrival (0 =
    /// untraced). Lets each departing rank record a causal edge from the
    /// critical contributor.
    ctxs: Vec<u64>,
    inputs: Vec<Option<Box<dyn Any + Send>>>,
    result: Option<Arc<dyn Any + Send + Sync>>,
    out_time: f64,
}

/// Shared state of one simulated job: mailboxes, collective rendezvous,
/// machine model, and the memory registry.
pub struct World {
    size: usize,
    machine: Arc<MachineModel>,
    senders: Vec<Sender<Envelope>>,
    receivers: Mutex<Vec<Option<Receiver<Envelope>>>>,
    coll: Mutex<CollState>,
    coll_cv: Condvar,
    poisoned: AtomicBool,
    registry: Registry,
    /// Discrete-event scheduler (None = free-running thread mode). When
    /// set, every blocking point below parks through it instead of
    /// polling, and sends post targeted wakeups.
    sched: Option<Arc<EventSched>>,
}

impl World {
    /// Build a world of `size` ranks over `machine`, sharing `registry` for
    /// memory accounting. Runs in free-running thread mode; executors that
    /// schedule ranks by virtual time use [`World::new_with_sched`].
    pub fn new(size: usize, machine: MachineModel, registry: Registry) -> Arc<Self> {
        Self::new_with_sched(size, machine, registry, None)
    }

    /// Build a world driven by `sched` when given (see
    /// [`crate::exec::EventExecutor`]), or free-running when `None`.
    pub fn new_with_sched(
        size: usize,
        machine: MachineModel,
        registry: Registry,
        sched: Option<Arc<EventSched>>,
    ) -> Arc<Self> {
        assert!(size > 0, "a world needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        Arc::new(Self {
            size,
            machine: Arc::new(machine),
            senders,
            receivers: Mutex::new(receivers),
            coll: Mutex::new(CollState {
                phase: Phase::Collecting,
                arrived: 0,
                departed: 0,
                times: vec![0.0; size],
                ctxs: vec![0; size],
                inputs: (0..size).map(|_| None).collect(),
                result: None,
                out_time: 0.0,
            }),
            coll_cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
            registry,
            sched,
        })
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine model the world runs on.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The shared memory registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Create the communicator handle for `rank`. Each rank may be attached
    /// exactly once.
    ///
    /// # Panics
    /// Panics if `rank` is out of range or already attached.
    pub fn attach(self: &Arc<Self>, rank: usize) -> Comm {
        let rx = self.receivers.lock()[rank]
            .take()
            .unwrap_or_else(|| panic!("rank {rank} attached twice"));
        Comm {
            world: Arc::clone(self),
            rank,
            rx,
            stash: Vec::new(),
            clock: Clock::new(),
            stats: CommStats::default(),
            tracer: Tracer::disabled(),
            time_cell: None,
            telemetry: RankTelemetry::default(),
        }
    }

    /// Mark the world poisoned (a rank panicked) and wake all waiters.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        {
            let _guard = self.coll.lock();
            self.coll_cv.notify_all();
        }
        if let Some(s) = &self.sched {
            s.poison();
        }
    }

    /// True if any rank has panicked.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }
}

/// Per-rank communicator handle. Owned and used by exactly one thread.
pub struct Comm {
    world: Arc<World>,
    rank: usize,
    rx: Receiver<Envelope>,
    stash: Vec<Envelope>,
    clock: Clock,
    stats: CommStats,
    tracer: Tracer,
    /// Published copy of `clock.now()` (f64 bits) the tracer reads span
    /// stamps from; `None` until tracing is enabled.
    time_cell: Option<Arc<AtomicU64>>,
    /// Rank-scoped handle onto the run's telemetry hub; the disabled
    /// default makes every instrument a no-op.
    telemetry: RankTelemetry,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> usize {
        self.world.size
    }

    /// The machine model this job runs on.
    pub fn machine(&self) -> &MachineModel {
        &self.world.machine
    }

    /// Current virtual time on this rank.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Per-rank operation counters.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Memory accountant for a subsystem on this rank, named
    /// `rank<id>/<subsystem>` in the shared registry.
    pub fn accountant(&self, subsystem: &str) -> Accountant {
        self.world
            .registry
            .accountant(&format!("rank{}/{}", self.rank, subsystem))
    }

    /// The job-wide memory registry.
    pub fn registry(&self) -> &Registry {
        &self.world.registry
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Publish the clock to the tracer's time cell. Called after every
    /// clock mutation so open spans always see the current virtual time.
    fn tick(&self) {
        if let Some(cell) = &self.time_cell {
            cell.store(self.clock.now().to_bits(), Ordering::Relaxed);
        }
    }

    /// Turn on span recording against this rank's virtual clock. `pid`
    /// groups tracks in exported traces (0 = simulation world, 1 =
    /// endpoint world of an in-transit run).
    pub fn enable_tracing(&mut self, pid: u32) {
        let cell = Arc::new(AtomicU64::new(self.clock.now().to_bits()));
        self.tracer = Tracer::virtual_clock(pid, self.rank, Arc::clone(&cell));
        self.time_cell = Some(cell);
    }

    /// This rank's tracer (disabled unless [`Comm::enable_tracing`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Open a named span stamped with this rank's virtual clock. The
    /// guard holds no borrow of the communicator, so `&mut self` methods
    /// may be called while it is live. No-op when tracing is disabled.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.tracer.span(name)
    }

    /// Close any open spans and return everything recorded, or `None`
    /// when tracing is disabled.
    pub fn take_trace(&mut self) -> Option<RankTrace> {
        self.tick();
        self.tracer.take()
    }

    /// This rank's current trace-context word (0 when tracing is
    /// disabled) — piggybacked on outgoing transport wire frames so
    /// cross-world receivers can record causal edges.
    pub fn trace_ctx(&self) -> u64 {
        self.tracer.ctx_word()
    }

    /// Record a happens-before edge observed by this rank as a receiver
    /// of an external (cross-world) payload. `src` is the sender's
    /// context word as carried on the wire; no-op when it is 0 or when
    /// tracing is disabled. Never touches the clock — call before any
    /// `advance_to(t_ready)`.
    pub fn trace_edge(&self, src: u64, t_send: f64, t_ready: f64, kind: trace::EdgeKind) {
        if src != 0 {
            self.tracer
                .record_edge(src, t_send, t_ready, self.clock.now(), kind);
        }
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// Scope this rank's instruments onto `hub` (`rank<r>/...` names for
    /// pid 0, `endpoint<r>/...` for any other pid). Telemetry never
    /// advances the clock, so enabling it cannot perturb a run's virtual
    /// timings.
    pub fn enable_telemetry(&mut self, hub: &TelemetryHub, pid: u32) {
        self.telemetry = RankTelemetry::new(hub, pid, self.rank);
    }

    /// This rank's telemetry handle (disabled — all instruments no-ops —
    /// unless [`Comm::enable_telemetry`] ran).
    pub fn telemetry(&self) -> &RankTelemetry {
        &self.telemetry
    }

    /// Record a structured telemetry event stamped with this rank's
    /// current virtual time. No-op when telemetry is disabled.
    pub fn telemetry_event(
        &self,
        kind: telemetry::EventKind,
        step: Option<u64>,
        detail: impl Into<String>,
    ) {
        self.telemetry.event(self.clock.now(), kind, step, detail);
    }

    // ------------------------------------------------------------------
    // Virtual-time charging
    // ------------------------------------------------------------------

    /// Advance this rank's clock by a raw duration.
    pub fn advance(&mut self, seconds: f64) {
        self.clock.advance(seconds);
        self.tick();
    }

    /// Advance this rank's clock to absolute virtual time `t` (no-op when
    /// the clock is already at or past `t` — virtual time never rewinds).
    ///
    /// This is how overlapped (pipelined) execution charges `max(a, b)`
    /// instead of `a + b`: both sides advance to the same barrier time.
    pub fn advance_to(&mut self, t: f64) {
        let now = self.clock.now();
        if t > now {
            self.clock.advance(t - now);
        }
        self.tick();
    }

    /// Charge a GPU kernel (roofline of flops and device-memory bytes).
    pub fn compute_gpu(&mut self, flops: f64, bytes: f64) {
        let t = self.world.machine.gpu_kernel_time(flops, bytes);
        self.stats.time_gpu_compute += t;
        self.clock.advance(t);
        self.tick();
    }

    /// Charge host-side compute (VTK conversion, rendering, marshaling).
    pub fn compute_host(&mut self, flops: f64, bytes: f64) {
        let t = self.world.machine.host_compute_time(flops, bytes);
        self.stats.time_host_compute += t;
        self.clock.advance(t);
        self.tick();
    }

    /// Charge a device→host copy of `bytes`.
    pub fn d2h(&mut self, bytes: u64) {
        let t = self.world.machine.d2h_time(bytes);
        self.stats.bytes_d2h += bytes;
        self.stats.time_xfer += t;
        self.clock.advance(t);
        self.tick();
    }

    /// Charge a host→device copy of `bytes`.
    pub fn h2d(&mut self, bytes: u64) {
        let t = self.world.machine.h2d_time(bytes);
        self.stats.bytes_h2d += bytes;
        self.stats.time_xfer += t;
        self.clock.advance(t);
        self.tick();
    }

    /// Charge a filesystem write of `bytes` with `concurrent_writers` ranks
    /// writing simultaneously (bandwidth sharing per the FS model).
    pub fn fs_write(&mut self, bytes: u64, concurrent_writers: usize) {
        let t = self
            .world
            .machine
            .filesystem
            .write_time(bytes, concurrent_writers);
        self.stats.bytes_written_fs += bytes;
        self.stats.files_written += 1;
        self.stats.time_io += t;
        self.clock.advance(t);
        self.tick();
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send `value` (`nbytes` on the wire) to `dest` with `tag`. Eager and
    /// non-blocking, like a small MPI_Send.
    pub fn send<T: Send + 'static>(&mut self, dest: usize, tag: u64, value: T, nbytes: u64) {
        assert!(dest < self.world.size, "send to out-of-range rank {dest}");
        let t_sent = self.clock.now();
        let t_avail = t_sent + self.world.machine.network.p2p_time(nbytes);
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += nbytes;
        let env = Envelope {
            src: self.rank,
            tag,
            t_avail,
            nbytes,
            ctx: self.tracer.ctx_word(),
            t_sent,
            payload: Box::new(value),
        };
        // Receiver ends only drop after all senders are done (runner joins
        // threads before dropping the world), so send cannot fail unless the
        // world is poisoned — in which case unwinding is correct anyway.
        self.world.senders[dest]
            .send(env)
            .expect("mailbox closed: world torn down while sending");
        if let Some(s) = &self.world.sched {
            // Event mode: wake the destination if it is parked in a recv,
            // then cede the token if some ready rank is earlier in virtual
            // time — the send-side yield point of the event scheduler.
            s.notify_message(dest);
            if !s.yield_if_earlier(self.rank, self.clock.now().to_bits()) {
                self.sched_abort("send");
            }
        }
    }

    /// Convenience: send a `Vec<f64>` with its true wire size.
    pub fn send_f64s(&mut self, dest: usize, tag: u64, values: Vec<f64>) {
        let nbytes = (values.len() * std::mem::size_of::<f64>()) as u64;
        self.send(dest, tag, values, nbytes);
    }

    /// Blocking receive of a message from `src` with `tag`.
    ///
    /// # Panics
    /// Panics if the matching message's payload is not a `T`, or if the
    /// world is poisoned while waiting.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: u64) -> T {
        let env = self.wait_matching(|e| e.src == src && e.tag == tag);
        self.finish_recv(env)
    }

    /// Blocking receive of a message with `tag` from any rank; returns the
    /// source rank alongside the payload.
    pub fn recv_any<T: Send + 'static>(&mut self, tag: u64) -> (usize, T) {
        let env = self.wait_matching(|e| e.tag == tag);
        let src = env.src;
        (src, self.finish_recv(env))
    }

    /// Non-blocking receive: `Ok` with the payload if a matching message is
    /// already available, `Err(WouldBlock)` otherwise.
    pub fn try_recv<T: Send + 'static>(&mut self, src: usize, tag: u64) -> Result<T, CommError> {
        self.drain_channel();
        match self.stash.iter().position(|e| e.src == src && e.tag == tag) {
            Some(i) => {
                let env = self.stash.remove(i);
                Ok(self.finish_recv(env))
            }
            None => Err(CommError::WouldBlock),
        }
    }

    /// True if a message from `src` with `tag` is waiting (MPI_Iprobe).
    pub fn probe(&mut self, src: usize, tag: u64) -> bool {
        self.drain_channel();
        self.stash.iter().any(|e| e.src == src && e.tag == tag)
    }

    fn drain_channel(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            self.stash.push(env);
        }
    }

    fn wait_matching(&mut self, pred: impl Fn(&Envelope) -> bool) -> Envelope {
        if let Some(i) = self.stash.iter().position(&pred) {
            return self.stash.remove(i);
        }
        let sched = self.world.sched.clone();
        if let Some(s) = &sched {
            // Event mode: drain the mailbox, re-check, and park until a
            // sender posts a wakeup. No polling — the scheduler resumes
            // this rank only when a message has actually arrived (or the
            // world poisons/deadlocks).
            loop {
                self.drain_channel();
                if let Some(i) = self.stash.iter().position(&pred) {
                    return self.stash.remove(i);
                }
                if !s.block(self.rank, WaitReason::Message, self.clock.now().to_bits()) {
                    self.sched_abort("recv");
                }
            }
        }
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok(env) => {
                    if pred(&env) {
                        return env;
                    }
                    self.stash.push(env);
                }
                Err(_) => {
                    assert!(
                        !self.world.is_poisoned(),
                        "rank {} aborting recv: another rank panicked",
                        self.rank
                    );
                }
            }
        }
    }

    fn finish_recv<T: Send + 'static>(&mut self, env: Envelope) -> T {
        if env.ctx != 0 {
            // Record the happens-before edge before advancing: t_recv is
            // the clock at match time, so `binding` captures whether this
            // rank genuinely waited on the sender.
            self.tracer.record_edge(
                env.ctx,
                env.t_sent,
                env.t_avail,
                self.clock.now(),
                trace::EdgeKind::Message,
            );
        }
        let wait = env.t_avail - self.clock.now();
        if wait > 0.0 {
            self.stats.time_comm += wait;
        }
        self.clock.advance_to(env.t_avail);
        self.tick();
        self.stats.messages_received += 1;
        let src = env.src;
        let tag = env.tag;
        let _ = env.nbytes;
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("message from rank {src} tag {tag} has unexpected payload type")
        })
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    fn collective<T, R, F>(&mut self, input: T, payload_bytes: u64, combine: F) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>) -> R,
    {
        let world = Arc::clone(&self.world);
        let mut st = world.coll.lock();
        // Wait for any previous collective to fully drain.
        while !matches!(st.phase, Phase::Collecting) {
            self.check_poison();
            match &world.sched {
                None => self.coll_wait(&mut st),
                Some(s) => {
                    drop(st);
                    if !s.block(
                        self.rank,
                        WaitReason::Collective,
                        self.clock.now().to_bits(),
                    ) {
                        self.sched_abort("collective");
                    }
                    st = world.coll.lock();
                }
            }
        }
        st.times[self.rank] = self.clock.now();
        st.ctxs[self.rank] = self.tracer.ctx_word();
        st.inputs[self.rank] = Some(Box::new(input));
        st.arrived += 1;
        if st.arrived == world.size {
            // Last arrival combines, prices, and releases everyone.
            let inputs: Vec<T> = st
                .inputs
                .iter_mut()
                .map(|slot| {
                    *slot
                        .take()
                        .expect("collective input missing")
                        .downcast::<T>()
                        .unwrap_or_else(|_| {
                            panic!("collective called with mismatched types across ranks")
                        })
                })
                .collect();
            let t_max = st.times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            st.out_time = t_max
                + world
                    .machine
                    .network
                    .collective_time(world.size, payload_bytes);
            st.result = Some(Arc::new(combine(inputs)));
            st.phase = Phase::Distributing;
            world.coll_cv.notify_all();
            if let Some(s) = &world.sched {
                s.notify_collective();
            }
        } else {
            while !matches!(st.phase, Phase::Distributing) {
                self.check_poison();
                match &world.sched {
                    None => self.coll_wait(&mut st),
                    Some(s) => {
                        drop(st);
                        if !s.block(
                            self.rank,
                            WaitReason::Collective,
                            self.clock.now().to_bits(),
                        ) {
                            self.sched_abort("collective");
                        }
                        st = world.coll.lock();
                    }
                }
            }
        }
        let result: Arc<R> = Arc::clone(st.result.as_ref().expect("collective result missing"))
            .downcast::<R>()
            .expect("collective result type mismatch");
        let out_time = st.out_time;
        // Causal edge from the critical contributor: the last rank to
        // arrive (lowest rank among virtual-time ties). Deterministic in
        // both sched modes because `times` is — it holds virtual clocks,
        // not wall clocks.
        let crit = st
            .times
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.total_cmp(b).then(ib.cmp(ia)))
            .map(|(i, t)| (i, *t));
        if let Some((crit_rank, t_max)) = crit {
            let src = st.ctxs[crit_rank];
            if src != 0 {
                self.tracer.record_edge(
                    src,
                    t_max,
                    out_time,
                    self.clock.now(),
                    trace::EdgeKind::Collective,
                );
            }
        }
        st.departed += 1;
        if st.departed == world.size {
            st.arrived = 0;
            st.departed = 0;
            st.result = None;
            st.phase = Phase::Collecting;
            world.coll_cv.notify_all();
            if let Some(s) = &world.sched {
                s.notify_collective();
            }
        }
        drop(st);
        let wait = out_time - self.clock.now();
        if wait > 0.0 {
            self.stats.time_comm += wait;
        }
        self.clock.advance_to(out_time);
        self.tick();
        self.stats.collectives += 1;
        result
    }

    /// Price a collective without the rendezvous machinery — the
    /// single-rank fast path for `allreduce{,_vec}` so hot solver loops
    /// stay allocation-free (the general path boxes inputs and allocates
    /// an `Arc` result even for one rank). The time charging mirrors
    /// `collective` step for step so virtual-clock output is bit-identical.
    fn charge_single_rank_collective(&mut self, payload_bytes: u64) {
        let t_max = self.clock.now();
        let out_time = t_max
            + self
                .world
                .machine
                .network
                .collective_time(self.world.size, payload_bytes);
        let wait = out_time - self.clock.now();
        if wait > 0.0 {
            self.stats.time_comm += wait;
        }
        self.clock.advance_to(out_time);
        self.tick();
        self.stats.collectives += 1;
    }

    fn coll_wait(&self, st: &mut parking_lot::MutexGuard<'_, CollState>) {
        self.world.coll_cv.wait_for(st, Duration::from_millis(50));
    }

    fn check_poison(&self) {
        assert!(
            !self.world.is_poisoned(),
            "rank {} aborting collective: another rank panicked",
            self.rank
        );
    }

    /// Abort a blocked event-mode operation: the scheduler returned
    /// `false`, meaning the world poisoned or the program deadlocked.
    fn sched_abort(&self, what: &str) -> ! {
        if let Some(s) = &self.world.sched {
            if let Some(d) = s.deadlock_diag() {
                panic!("{d}");
            }
        }
        panic!("rank {} aborting {what}: another rank panicked", self.rank);
    }

    /// Run `f` — which may block on something *outside* this world (an OS
    /// channel to another world, a supervisor pipe, ...) — without holding
    /// the event scheduler's run token. In thread mode this is just `f()`.
    ///
    /// Event mode serializes ranks on a single run token; blocking on an
    /// external resource while holding it would wedge every other rank in
    /// this world (and, transitively, whichever world feeds the resource).
    pub fn external_wait<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.world.sched {
            None => f(),
            Some(s) => {
                s.external_begin(self.rank);
                let out = f();
                // A false return means the world poisoned while we were
                // out; let the caller observe that through its own result
                // handling (mirrors thread mode, where poisoning surfaces
                // at the next comm op).
                let _ = s.external_end(self.rank, self.clock.now().to_bits());
                out
            }
        }
    }

    /// Synchronize all ranks (and their clocks) — MPI_Barrier.
    pub fn barrier(&mut self) {
        self.collective((), 8, |_| ());
    }

    /// Allreduce one scalar — MPI_Allreduce on a single f64.
    pub fn allreduce(&mut self, value: f64, op: ReduceOp) -> f64 {
        if self.world.size == 1 {
            self.charge_single_rank_collective(8);
            // Same fold as the general path (identity ⊕ value) so edge
            // cases like -0.0 normalize identically.
            return op.apply(op.identity(), value);
        }
        *self.collective(value, 8, move |v| op.fold(v))
    }

    /// Elementwise allreduce of a slice, in place.
    pub fn allreduce_vec(&mut self, values: &mut [f64], op: ReduceOp) {
        if self.world.size == 1 {
            self.charge_single_rank_collective((values.len() * 8) as u64);
            for v in values.iter_mut() {
                *v = op.apply(op.identity(), *v);
            }
            return;
        }
        let n = values.len();
        let input = values.to_vec();
        let result = self.collective(input, (n * 8) as u64, move |contribs| {
            let mut out = vec![0.0; n];
            op.fold_vecs(&mut out, &contribs);
            out
        });
        values.copy_from_slice(&result);
    }

    /// Gather one value from every rank onto every rank — MPI_Allgather.
    pub fn allgather<T: Clone + Send + Sync + 'static>(&mut self, value: T, nbytes: u64) -> Vec<T> {
        self.collective(value, nbytes, |v| v).as_ref().clone()
    }

    /// Gather one value from every rank onto `root`; other ranks get `None`.
    pub fn gather<T: Clone + Send + Sync + 'static>(
        &mut self,
        root: usize,
        value: T,
        nbytes: u64,
    ) -> Option<Vec<T>> {
        let all = self.collective(value, nbytes, |v| v);
        (self.rank == root).then(|| all.as_ref().clone())
    }

    /// Broadcast `root`'s value to all ranks. Non-root ranks pass anything
    /// (their contribution is ignored); typically `bcast(root, value)` where
    /// non-roots pass a default.
    pub fn bcast<T: Clone + Send + Sync + 'static>(
        &mut self,
        root: usize,
        value: T,
        nbytes: u64,
    ) -> T {
        let all = self.collective(value, nbytes, |v| v);
        all[root].clone()
    }

    /// Reduce one scalar to `root`; other ranks get `None`.
    pub fn reduce(&mut self, root: usize, value: f64, op: ReduceOp) -> Option<f64> {
        let r = self.allreduce(value, op);
        (self.rank == root).then_some(r)
    }

    /// Take the stats out when the rank finishes (used by the runner).
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_ranks;

    fn tiny() -> MachineModel {
        MachineModel::test_tiny()
    }

    #[test]
    fn send_recv_roundtrip_with_latency() {
        let res = run_ranks(2, tiny(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 42u64, 1000);
                0.0
            } else {
                let v = comm.recv::<u64>(0, 1);
                assert_eq!(v, 42);
                comm.now()
            }
        });
        // 1 µs latency + 1000 B / 1 GB/s = 1 µs + 1 µs = 2 µs.
        assert!((res[1] - 2.0e-6).abs() < 1e-12, "got {}", res[1]);
    }

    #[test]
    fn messages_from_same_source_and_tag_arrive_in_order() {
        let res = run_ranks(2, tiny(), |comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(1, 5, i, 4);
                }
                vec![]
            } else {
                (0..100).map(|_| comm.recv::<u32>(0, 5)).collect::<Vec<_>>()
            }
        });
        assert_eq!(res[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn tags_demultiplex_out_of_order_receives() {
        let res = run_ranks(2, tiny(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, "first".to_string(), 5);
                comm.send(1, 20, "second".to_string(), 6);
                (String::new(), String::new())
            } else {
                // Receive tag 20 before tag 10 — the stash must hold tag 10.
                let b = comm.recv::<String>(0, 20);
                let a = comm.recv::<String>(0, 10);
                (a, b)
            }
        });
        assert_eq!(res[1], ("first".to_string(), "second".to_string()));
    }

    #[test]
    fn allreduce_sum_and_max() {
        let res = run_ranks(5, tiny(), |comm| {
            let s = comm.allreduce(comm.rank() as f64, ReduceOp::Sum);
            let m = comm.allreduce(comm.rank() as f64, ReduceOp::Max);
            (s, m)
        });
        for (s, m) in res {
            assert_eq!(s, 10.0);
            assert_eq!(m, 4.0);
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let res = run_ranks(3, tiny(), |comm| {
            let mut v = vec![comm.rank() as f64, 10.0 * comm.rank() as f64];
            comm.allreduce_vec(&mut v, ReduceOp::Sum);
            v
        });
        for v in res {
            assert_eq!(v, vec![3.0, 30.0]);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let res = run_ranks(4, tiny(), |comm| comm.allgather(comm.rank() * 10, 8));
        for v in res {
            assert_eq!(v, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn gather_only_root_receives() {
        let res = run_ranks(3, tiny(), |comm| comm.gather(1, comm.rank(), 8));
        assert!(res[0].is_none());
        assert_eq!(res[1], Some(vec![0, 1, 2]));
        assert!(res[2].is_none());
    }

    #[test]
    fn bcast_distributes_root_value() {
        let res = run_ranks(4, tiny(), |comm| {
            let mine = if comm.rank() == 2 { 99 } else { 0 };
            comm.bcast(2, mine, 8)
        });
        assert_eq!(res, vec![99; 4]);
    }

    #[test]
    fn collective_syncs_clocks_to_slowest_rank() {
        let res = run_ranks(4, tiny(), |comm| {
            // Rank 3 does 3 virtual seconds of compute before the barrier.
            if comm.rank() == 3 {
                comm.advance(3.0);
            }
            comm.barrier();
            comm.now()
        });
        for t in &res {
            assert!(*t >= 3.0, "barrier must lift everyone to the slowest rank");
            assert!((*t - res[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn repeated_collectives_reuse_slot_correctly() {
        let res = run_ranks(3, tiny(), |comm| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc += comm.allreduce(i as f64, ReduceOp::Sum);
            }
            acc
        });
        let expected: f64 = (0..50).map(|i| 3.0 * i as f64).sum();
        for v in res {
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn try_recv_and_probe() {
        let res = run_ranks(2, tiny(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 7u8, 1);
                comm.barrier();
                true
            } else {
                assert_eq!(comm.try_recv::<u8>(0, 99), Err(CommError::WouldBlock));
                comm.barrier(); // ensure the message has been sent
                                // The message may need a moment to traverse the channel.
                let mut got = None;
                for _ in 0..1000 {
                    if comm.probe(0, 3) {
                        got = comm.try_recv::<u8>(0, 3).ok();
                        break;
                    }
                    std::thread::yield_now();
                }
                got == Some(7)
            }
        });
        assert!(res[1]);
    }

    #[test]
    fn stats_count_traffic() {
        let res = run_ranks(2, tiny(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u32, 400);
                comm.barrier();
                (
                    comm.stats().messages_sent,
                    comm.stats().bytes_sent,
                    comm.stats().collectives,
                )
            } else {
                let _ = comm.recv::<u32>(0, 0);
                comm.barrier();
                (
                    comm.stats().messages_received,
                    comm.stats().bytes_sent,
                    comm.stats().collectives,
                )
            }
        });
        assert_eq!(res[0], (1, 400, 1));
        assert_eq!(res[1], (1, 0, 1));
    }

    #[test]
    fn fs_write_and_d2h_charge_time_and_bytes() {
        let res = run_ranks(1, tiny(), |comm| {
            comm.d2h(100_000_000); // 1 s at 100 MB/s (+latency)
            comm.fs_write(250_000_000, 1); // 1 s at the 250 MB/s stream cap
            (
                comm.now(),
                comm.stats().bytes_d2h,
                comm.stats().bytes_written_fs,
            )
        });
        let (t, d2h, fsw) = res[0];
        assert!(t > 2.0 && t < 2.01, "got {t}");
        assert_eq!(d2h, 100_000_000);
        assert_eq!(fsw, 250_000_000);
    }

    #[test]
    fn accountants_are_per_rank_namespaced() {
        let reg = Registry::new();
        let reg2 = reg.clone();
        crate::runner::run_ranks_with_registry(2, tiny(), reg2, |comm| {
            comm.accountant("solver")
                .charge_raw(100 * (comm.rank() as u64 + 1));
        });
        let snap = reg.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(reg.accountant("rank0/solver").current(), 100);
        assert_eq!(reg.accountant("rank1/solver").current(), 200);
    }

    #[test]
    fn single_rank_world_collectives_are_trivial() {
        let res = run_ranks(1, tiny(), |comm| {
            comm.barrier();
            comm.allreduce(5.0, ReduceOp::Sum)
        });
        assert_eq!(res[0], 5.0);
    }
}
