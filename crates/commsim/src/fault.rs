//! Deterministic fault injection for the virtual-clock world.
//!
//! A [`FaultPlan`] is a *seeded, pure* description of every fault a run
//! will experience: per-packet link faults (drops, payload corruption,
//! delay spikes), endpoint crashes at a chosen step, and slow-consumer
//! stalls. Every decision is a hash of `(seed, producer, step, attempt)` —
//! never a sequential RNG stream — so outcomes are identical across runs
//! and independent of thread scheduling. Faults cost virtual time like any
//! other operation (retries, backoff, stalls all advance the clock), so
//! figures produced under fault injection stay reproducible.
//!
//! The plan is deliberately transport-agnostic: `commsim` defines the
//! vocabulary, the `transport` crate consults it on its send/receive
//! paths, and harnesses sweep its parameters.

/// Per-packet link fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaultSpec {
    /// Probability that a data frame is lost in flight.
    pub drop_prob: f64,
    /// Probability that a data frame arrives with flipped bytes.
    pub corrupt_prob: f64,
    /// Probability that a delivered frame suffers a delay spike.
    pub delay_prob: f64,
    /// Size of a delay spike in virtual seconds.
    pub delay_secs: f64,
}

/// Kill one endpoint (reader) when it is about to deliver `at_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndpointCrash {
    /// Endpoint (reader) index.
    pub endpoint: usize,
    /// First step the crashed endpoint fails to deliver.
    pub at_step: u64,
}

/// Stall one endpoint for a fixed virtual duration at one step — the
/// "slow consumer" fault that exercises staging back-pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsumerStall {
    /// Endpoint (reader) index.
    pub endpoint: usize,
    /// Step whose delivery is slowed.
    pub at_step: u64,
    /// Extra virtual seconds spent on that delivery.
    pub seconds: f64,
}

/// Kill one *simulation* rank right after it completes `at_step` — the
/// node-failure fault a run supervisor must recover from. The rank raises
/// an [`InjectedCrash`] panic, poisoning its world; the supervisor
/// classifies the payload and restarts from the newest valid checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRankCrash {
    /// Simulation rank that dies.
    pub rank: usize,
    /// Last step the rank completes before dying.
    pub at_step: u64,
}

/// Flip bytes of one rank's checkpoint file *after* it has been written
/// and renamed into place — silent on-disk bit rot. The generation's
/// manifest CRC no longer matches, so a later restore must quarantine the
/// generation instead of loading it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointCorruption {
    /// Rank whose dump file is damaged.
    pub rank: usize,
    /// Checkpoint generation (step) to damage.
    pub at_step: u64,
}

/// Panic payload raised by a rank whose scheduled [`SimRankCrash`] fired.
/// Supervisors downcast the payload to classify the failure precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Rank that crashed.
    pub rank: usize,
    /// Step it crashed at.
    pub step: u64,
}

/// Panic payload raised when a producer's pipeline-backpressure wait
/// exceeds the configured watchdog deadline (a stalled consumer that
/// would otherwise wedge the run indefinitely).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogTimeout {
    /// Producer rank that tripped the watchdog.
    pub rank: usize,
    /// Step the producer was publishing when it gave up.
    pub step: u64,
    /// Virtual seconds it waited before tripping.
    pub waited: f64,
}

/// The fate of one data-frame transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttemptFate {
    /// Frame arrives intact, `extra_delay` virtual seconds late.
    Deliver {
        /// Delay spike beyond the modeled transfer time (0 for none).
        extra_delay: f64,
    },
    /// Frame lost in flight; the sender times out and retries.
    Drop,
    /// Frame arrives with flipped bytes; the receiver's CRC rejects it.
    Corrupt,
}

/// A complete, seeded fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every per-packet decision.
    pub seed: u64,
    /// Link-level fault probabilities.
    pub link: LinkFaultSpec,
    /// Endpoint crashes.
    pub crashes: Vec<EndpointCrash>,
    /// Slow-consumer stalls.
    pub stalls: Vec<ConsumerStall>,
    /// Simulation-rank crashes (recoverable only under a supervisor).
    pub sim_crashes: Vec<SimRankCrash>,
    /// On-disk checkpoint corruption (silent bit rot after the write).
    pub disk_corruptions: Vec<CheckpointCorruption>,
}

const SALT_FATE: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DELAY: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_FLIP: u64 = 0x1656_67B1_9E37_79F9;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing (every helper is a cheap no-op).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with link faults only.
    pub fn with_link(seed: u64, link: LinkFaultSpec) -> Self {
        Self {
            seed,
            link,
            ..Self::default()
        }
    }

    /// True when the plan injects no fault of any kind.
    pub fn is_quiet(&self) -> bool {
        let l = &self.link;
        l.drop_prob <= 0.0
            && l.corrupt_prob <= 0.0
            && l.delay_prob <= 0.0
            && self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.sim_crashes.is_empty()
            && self.disk_corruptions.is_empty()
    }

    /// Uniform draw in `[0, 1)` keyed by `(seed, producer, step, attempt,
    /// salt)`. Pure: the same key always rolls the same value.
    fn roll(&self, producer: usize, step: u64, attempt: u32, salt: u64) -> f64 {
        let key = self.seed.wrapping_mul(0xA076_1D64_78BD_642F)
            ^ (producer as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
            ^ step.wrapping_mul(0x8EBC_6AF0_9C88_C6E3)
            ^ (u64::from(attempt)).wrapping_mul(0x5895_59F2_B269_6AED)
            ^ salt;
        (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of transmission `attempt` of `(producer, step)`.
    pub fn attempt_fate(&self, producer: usize, step: u64, attempt: u32) -> AttemptFate {
        let l = &self.link;
        if l.drop_prob <= 0.0 && l.corrupt_prob <= 0.0 && l.delay_prob <= 0.0 {
            return AttemptFate::Deliver { extra_delay: 0.0 };
        }
        let u = self.roll(producer, step, attempt, SALT_FATE);
        if u < l.drop_prob {
            return AttemptFate::Drop;
        }
        if u < l.drop_prob + l.corrupt_prob {
            return AttemptFate::Corrupt;
        }
        let extra_delay = if l.delay_prob > 0.0
            && self.roll(producer, step, attempt, SALT_DELAY) < l.delay_prob
        {
            l.delay_secs
        } else {
            0.0
        };
        AttemptFate::Deliver { extra_delay }
    }

    /// The step at which `endpoint` crashes, if any.
    pub fn crash_step(&self, endpoint: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.endpoint == endpoint)
            .map(|c| c.at_step)
            .min()
    }

    /// The step at which simulation rank `rank` crashes, if any.
    pub fn sim_crash_step(&self, rank: usize) -> Option<u64> {
        self.sim_crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.at_step)
            .min()
    }

    /// True when `rank`'s checkpoint file for generation `step` is
    /// scheduled to rot on disk after the write.
    pub fn corrupts_checkpoint(&self, rank: usize, step: u64) -> bool {
        self.disk_corruptions
            .iter()
            .any(|c| c.rank == rank && c.at_step == step)
    }

    /// Drop every scheduled one-shot fault that already fired at or
    /// before `step` — the supervisor calls this before a restart so a
    /// transient crash/stall does not re-fire while the run replays the
    /// steps since the restored checkpoint. Link-fault probabilities and
    /// disk corruptions (already materialized on disk) are left alone.
    #[must_use]
    pub fn without_fired(&self, step: u64) -> Self {
        let mut plan = self.clone();
        plan.sim_crashes.retain(|c| c.at_step > step);
        plan.crashes.retain(|c| c.at_step > step);
        plan.stalls.retain(|s| s.at_step > step);
        plan.disk_corruptions.retain(|c| c.at_step > step);
        plan
    }

    /// Extra virtual seconds `endpoint` spends delivering `step`.
    pub fn stall_secs(&self, endpoint: usize, step: u64) -> f64 {
        self.stalls
            .iter()
            .filter(|s| s.endpoint == endpoint && s.at_step == step)
            .map(|s| s.seconds)
            .sum()
    }

    /// Deterministically flip a few bytes of `payload` (the on-wire damage
    /// behind [`AttemptFate::Corrupt`]). Guaranteed to change the payload
    /// whenever it is non-empty.
    pub fn corrupt_payload(&self, payload: &mut [u8], producer: usize, step: u64, attempt: u32) {
        if payload.is_empty() {
            return;
        }
        for flip in 0..3u64 {
            let h = splitmix64(
                self.seed
                    ^ (producer as u64).rotate_left(17)
                    ^ step.rotate_left(33)
                    ^ u64::from(attempt).rotate_left(47)
                    ^ SALT_FLIP.wrapping_add(flip),
            );
            let idx = (h as usize) % payload.len();
            // XOR with a non-zero mask so the byte always changes.
            payload[idx] ^= 0x5A | ((h >> 32) as u8 & 0xA5) | 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultPlan {
        FaultPlan::with_link(
            42,
            LinkFaultSpec {
                drop_prob: 0.3,
                corrupt_prob: 0.2,
                delay_prob: 0.25,
                delay_secs: 1e-3,
            },
        )
    }

    #[test]
    fn quiet_plan_delivers_everything() {
        let p = FaultPlan::none();
        assert!(p.is_quiet());
        for step in 0..100 {
            assert_eq!(
                p.attempt_fate(3, step, 0),
                AttemptFate::Deliver { extra_delay: 0.0 }
            );
        }
        assert_eq!(p.crash_step(0), None);
        assert_eq!(p.stall_secs(0, 5), 0.0);
    }

    #[test]
    fn fates_are_deterministic_and_key_sensitive() {
        let p = lossy();
        let q = lossy();
        let mut differs = false;
        for producer in 0..4 {
            for step in 0..50u64 {
                for attempt in 0..3u32 {
                    let a = p.attempt_fate(producer, step, attempt);
                    assert_eq!(a, q.attempt_fate(producer, step, attempt));
                    if a != p.attempt_fate(producer, step, attempt + 1) {
                        differs = true;
                    }
                }
            }
        }
        assert!(differs, "fates must vary with the attempt index");
    }

    #[test]
    fn rates_roughly_match_probabilities() {
        let p = lossy();
        let n = 20_000;
        let (mut drops, mut corrupts) = (0, 0);
        for step in 0..n as u64 {
            match p.attempt_fate(0, step, 0) {
                AttemptFate::Drop => drops += 1,
                AttemptFate::Corrupt => corrupts += 1,
                AttemptFate::Deliver { .. } => {}
            }
        }
        let (dr, cr) = (drops as f64 / n as f64, corrupts as f64 / n as f64);
        assert!((dr - 0.3).abs() < 0.02, "drop rate {dr}");
        assert!((cr - 0.2).abs() < 0.02, "corrupt rate {cr}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::with_link(1, lossy().link);
        let b = FaultPlan::with_link(2, lossy().link);
        let n = (0..200u64)
            .filter(|&s| a.attempt_fate(0, s, 0) != b.attempt_fate(0, s, 0))
            .count();
        assert!(n > 20, "only {n}/200 differed between seeds");
    }

    #[test]
    fn crash_and_stall_lookups() {
        let p = FaultPlan {
            crashes: vec![
                EndpointCrash {
                    endpoint: 1,
                    at_step: 7,
                },
                EndpointCrash {
                    endpoint: 1,
                    at_step: 4,
                },
            ],
            stalls: vec![ConsumerStall {
                endpoint: 0,
                at_step: 3,
                seconds: 2.5,
            }],
            ..FaultPlan::none()
        };
        assert_eq!(p.crash_step(1), Some(4), "earliest crash wins");
        assert_eq!(p.crash_step(0), None);
        assert_eq!(p.stall_secs(0, 3), 2.5);
        assert_eq!(p.stall_secs(0, 4), 0.0);
        assert!(!p.is_quiet());
    }

    #[test]
    fn sim_crash_and_disk_corruption_lookups() {
        let p = FaultPlan {
            sim_crashes: vec![
                SimRankCrash {
                    rank: 2,
                    at_step: 9,
                },
                SimRankCrash {
                    rank: 2,
                    at_step: 5,
                },
            ],
            disk_corruptions: vec![CheckpointCorruption {
                rank: 0,
                at_step: 4,
            }],
            ..FaultPlan::none()
        };
        assert!(!p.is_quiet());
        assert_eq!(p.sim_crash_step(2), Some(5), "earliest crash wins");
        assert_eq!(p.sim_crash_step(0), None);
        assert!(p.corrupts_checkpoint(0, 4));
        assert!(!p.corrupts_checkpoint(0, 6));
        assert!(!p.corrupts_checkpoint(1, 4));
    }

    #[test]
    fn without_fired_strips_only_elapsed_one_shot_faults() {
        let p = FaultPlan {
            link: LinkFaultSpec {
                drop_prob: 0.1,
                ..LinkFaultSpec::default()
            },
            crashes: vec![EndpointCrash {
                endpoint: 0,
                at_step: 3,
            }],
            stalls: vec![
                ConsumerStall {
                    endpoint: 0,
                    at_step: 2,
                    seconds: 1.0,
                },
                ConsumerStall {
                    endpoint: 0,
                    at_step: 8,
                    seconds: 1.0,
                },
            ],
            sim_crashes: vec![SimRankCrash {
                rank: 1,
                at_step: 5,
            }],
            disk_corruptions: vec![CheckpointCorruption {
                rank: 0,
                at_step: 4,
            }],
            ..FaultPlan::none()
        };
        let after = p.without_fired(5);
        assert_eq!(after.link.drop_prob, 0.1, "link probabilities persist");
        assert!(after.crashes.is_empty());
        assert!(after.sim_crashes.is_empty());
        assert!(after.disk_corruptions.is_empty());
        assert_eq!(after.stalls.len(), 1);
        assert_eq!(after.stalls[0].at_step, 8, "future faults survive");
    }

    #[test]
    fn corruption_always_changes_nonempty_payloads() {
        let p = lossy();
        for len in [1usize, 2, 7, 1024] {
            let orig = vec![0xABu8; len];
            let mut damaged = orig.clone();
            p.corrupt_payload(&mut damaged, 1, 9, 0);
            assert_ne!(orig, damaged, "len {len} unchanged");
            // And deterministically so.
            let mut again = orig.clone();
            p.corrupt_payload(&mut again, 1, 9, 0);
            assert_eq!(damaged, again);
        }
        let mut empty: Vec<u8> = vec![];
        p.corrupt_payload(&mut empty, 0, 0, 0);
        assert!(empty.is_empty());
    }
}
