//! Per-rank virtual clock.
//!
//! A rank's clock is plain state owned by its [`crate::Comm`] handle; only
//! the rank thread mutates it. Synchronization across ranks happens through
//! message timestamps and collective rendezvous (see [`crate::comm`]), so
//! virtual time needs no shared mutable clock and stays deterministic.

/// Virtual time in seconds for one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    now: f64,
}

impl Clock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by a non-negative duration. Negative or NaN durations are a
    /// cost-model bug; they panic in debug and clamp to zero in release so a
    /// long harness run cannot silently move backwards in time.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(
            seconds.is_finite() && seconds >= 0.0,
            "clock advanced by invalid duration {seconds}"
        );
        if seconds.is_finite() && seconds > 0.0 {
            self.now += seconds;
        }
    }

    /// Jump forward to `t` if `t` is later than now (used when a blocking
    /// operation completes at a known absolute time).
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now() - 1.75).abs() < 1e-15);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = Clock::new();
        c.advance(10.0);
        c.advance_to(5.0);
        assert_eq!(c.now(), 10.0);
        c.advance_to(12.0);
        assert_eq!(c.now(), 12.0);
    }

    #[test]
    fn zero_advance_is_noop() {
        let mut c = Clock::new();
        c.advance(0.0);
        assert_eq!(c.now(), 0.0);
    }
}
