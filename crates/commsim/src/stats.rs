//! Per-rank communication and I/O counters.
//!
//! Plain (non-atomic) counters owned by the rank thread via its `Comm`
//! handle; the runner collects them after join. The storage-economy
//! comparison in §4.1 of the paper (6.5 MB of images vs 19 GB of
//! checkpoints) is reproduced from `bytes_written_fs`.

/// Counters of everything a rank did, for tests and harness reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub messages_received: u64,
    /// Collective operations participated in.
    pub collectives: u64,
    /// Bytes written to the simulated filesystem.
    pub bytes_written_fs: u64,
    /// Files created on the simulated filesystem.
    pub files_written: u64,
    /// Bytes moved device→host.
    pub bytes_d2h: u64,
    /// Bytes moved host→device.
    pub bytes_h2d: u64,
    /// Virtual seconds spent in GPU compute.
    pub time_gpu_compute: f64,
    /// Virtual seconds spent in host compute.
    pub time_host_compute: f64,
    /// Virtual seconds spent in device↔host transfers.
    pub time_xfer: f64,
    /// Virtual seconds spent writing to the filesystem.
    pub time_io: f64,
    /// Virtual seconds spent blocked in communication (p2p + collectives).
    pub time_comm: f64,
}

impl CommStats {
    /// Merge another rank's stats into this one (sums every counter).
    pub fn merge(&mut self, other: &CommStats) {
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_received += other.messages_received;
        self.collectives += other.collectives;
        self.bytes_written_fs += other.bytes_written_fs;
        self.files_written += other.files_written;
        self.bytes_d2h += other.bytes_d2h;
        self.bytes_h2d += other.bytes_h2d;
        self.time_gpu_compute += other.time_gpu_compute;
        self.time_host_compute += other.time_host_compute;
        self.time_xfer += other.time_xfer;
        self.time_io += other.time_io;
        self.time_comm += other.time_comm;
    }

    /// Sum a collection of per-rank stats into a job total.
    pub fn aggregate<'a>(all: impl IntoIterator<Item = &'a CommStats>) -> CommStats {
        let mut total = CommStats::default();
        for s in all {
            total.merge(s);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let a = CommStats {
            messages_sent: 1,
            bytes_sent: 100,
            messages_received: 2,
            collectives: 3,
            bytes_written_fs: 4,
            files_written: 5,
            bytes_d2h: 6,
            bytes_h2d: 7,
            time_gpu_compute: 1.0,
            time_host_compute: 2.0,
            time_xfer: 3.0,
            time_io: 4.0,
            time_comm: 5.0,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.messages_sent, 2);
        assert_eq!(b.bytes_sent, 200);
        assert_eq!(b.files_written, 10);
        assert_eq!(b.time_comm, 10.0);
    }

    #[test]
    fn aggregate_over_ranks() {
        let ranks = vec![
            CommStats {
                bytes_written_fs: 10,
                ..Default::default()
            };
            4
        ];
        let total = CommStats::aggregate(&ranks);
        assert_eq!(total.bytes_written_fs, 40);
    }
}
