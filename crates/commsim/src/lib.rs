//! `commsim` — an MPI-like communication runtime for simulating
//! leadership-class jobs inside one process.
//!
//! The paper runs NekRS on 280–1120 MPI ranks of Polaris and on JUWELS
//! Booster. Neither machine (nor MPI itself) is available to this
//! reproduction, so `commsim` provides the same programming model with ranks
//! mapped to OS threads:
//!
//! * [`Comm`] — per-rank communicator handle: `send`/`recv` with tags and
//!   MPI-style (source, tag) ordering, plus collectives (`barrier`,
//!   `allreduce`, `bcast`, `gather`, `allgather`, `alltoall`).
//! * [`clock::Clock`] — a per-rank **virtual clock**. Every compute kernel,
//!   message, collective, device transfer, and file write advances the clock
//!   by a deterministic cost from the [`machine::MachineModel`]. Wall-clock
//!   results in the figure harnesses are *virtual seconds*, which makes
//!   280/560/1120-rank scaling curves reproducible on a single CPU core.
//! * [`machine`] — named parameter sets for the paper's two testbeds
//!   (Polaris A100 nodes, JUWELS Booster A100 nodes) and their file systems.
//! * [`runner`] — spawn-join harness that runs a closure on every rank and
//!   collects results, with panic propagation.
//! * [`fault`] — seeded, deterministic fault schedules ([`fault::FaultPlan`]):
//!   link drops/corruption/delay spikes, endpoint crashes, and consumer
//!   stalls, all costed in virtual time so faulty runs stay reproducible.
//!
//! Virtual time is deterministic: it depends only on the sequence of
//! operations each rank performs and the sizes involved, never on real
//! thread scheduling. Messages carry their send timestamp; a receive
//! completes at `max(local_time, send_time + latency + bytes/bandwidth)`;
//! collectives synchronize all participants to the maximum arrival time plus
//! a log₂(P) tree cost.

pub mod clock;
pub mod comm;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod reduce;
pub mod runner;
pub mod sched;
pub mod stats;

pub use clock::Clock;
pub use comm::{Comm, CommError, World};
pub use exec::{
    with_mode, EventExecutor, Executor, SchedMode, ThreadExecutor, RANK_STACK_BYTES,
    THREAD_MODE_DEFAULT_MAX_RANKS,
};
pub use fault::{
    AttemptFate, CheckpointCorruption, ConsumerStall, EndpointCrash, FaultPlan, InjectedCrash,
    LinkFaultSpec, SimRankCrash, WatchdogTimeout,
};
pub use machine::{FilesystemModel, GpuModel, MachineModel, NetworkModel};
pub use reduce::ReduceOp;
pub use runner::{run_ranks, run_ranks_with_registry, run_ranks_with_state, RankResult};
pub use stats::CommStats;
// Re-export the span-tracing vocabulary so instrumented crates need no
// direct `trace` dependency: they open spans through `Comm::span` and
// only name these types in signatures.
pub use trace::chrome::chrome_trace_json;
pub use trace::{
    unpack_ctx, CausalEdge, EdgeKind, PhaseBreakdown, PhaseStat, RankPhases, RankTrace, Span,
    SpanGuard, Tracer,
};
// Same deal for the telemetry vocabulary: instrumented crates reach the
// bus through `Comm::telemetry` / `Comm::telemetry_event` and only name
// these types in signatures.
pub use telemetry::{Counter, EventKind, Gauge, Histogram, RankTelemetry, TelemetryHub};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_ring_pass() {
        // Each rank sends its id around a ring; after `size` hops everyone
        // has their own id back and all virtual clocks agree via barrier.
        let results = run_ranks(4, MachineModel::test_tiny(), |comm| {
            let size = comm.size();
            let right = (comm.rank() + 1) % size;
            let left = (comm.rank() + size - 1) % size;
            let mut token = comm.rank();
            for _ in 0..size {
                comm.send(right, 7, token, 8);
                token = comm.recv::<usize>(left, 7);
            }
            comm.barrier();
            (token, comm.now())
        });
        let times: Vec<f64> = results.iter().map(|r| r.1).collect();
        for (rank, (token, _)) in results.iter().enumerate() {
            assert_eq!(*token, rank);
        }
        for t in &times {
            assert!((t - times[0]).abs() < 1e-12, "barrier must sync clocks");
        }
    }

    #[test]
    fn spans_track_virtual_time() {
        let results = run_ranks(2, MachineModel::test_tiny(), |comm| {
            comm.enable_tracing(0);
            {
                let _g = comm.span("work/compute");
                comm.compute_host(1e6, 1e6);
            }
            {
                let _g = comm.span("work/sync");
                comm.barrier();
            }
            let wall = comm.now();
            (comm.take_trace().unwrap(), wall)
        });
        for r in &results {
            let (trace, wall) = r;
            assert_eq!(trace.spans.len(), 2);
            let total: f64 = trace.spans.iter().map(|s| s.self_time).sum();
            assert!(*wall > 0.0, "virtual time must advance");
            // Both ops happen inside spans, so attribution is exact.
            assert!(
                (total - wall).abs() < 1e-12,
                "span time {total} != wall {wall}"
            );
        }
        // Virtual time is deterministic, so both ranks' compute spans agree.
        assert_eq!(
            results[0].0.spans[0].duration(),
            results[1].0.spans[0].duration()
        );
    }
}
