//! Cost models for the paper's testbeds.
//!
//! The evaluation ran on **Polaris** (ALCF: 560 nodes, 1× EPYC Milan + 4×
//! NVIDIA A100 per node, Slingshot interconnect, Lustre-like parallel FS)
//! and **JUWELS Booster** (JSC: 936 nodes, 2× EPYC Rome + 4× A100,
//! DragonFly+ HDR-200 InfiniBand). One MPI rank drives one GPU on both.
//!
//! These structs capture the handful of rates the virtual clock needs:
//! sustained per-rank GPU throughput, device/host copy bandwidth (the
//! paper's key overhead: VTK has no device-memory support, so every in situ
//! trigger pays a D2H copy), network α–β parameters, and a shared
//! filesystem model for checkpoint writes. The absolute values are public
//! spec-sheet magnitudes, deliberately rounded — the reproduction targets
//! curve *shapes*, not testbed-exact numbers.

/// GPU compute/copy rates for one rank (= one GPU in the paper's mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Sustained double-precision throughput per rank (FLOP/s).
    pub flops: f64,
    /// Device memory bandwidth (bytes/s) — the roofline for SEM kernels.
    pub mem_bandwidth: f64,
    /// Device→host copy bandwidth (bytes/s), PCIe-gen4-ish.
    pub d2h_bandwidth: f64,
    /// Host→device copy bandwidth (bytes/s).
    pub h2d_bandwidth: f64,
    /// Fixed launch/copy latency per transfer (s).
    pub xfer_latency: f64,
}

/// α–β network model plus a tree factor for collectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-message latency α (s).
    pub latency: f64,
    /// Per-rank injection bandwidth β⁻¹ (bytes/s).
    pub bandwidth: f64,
    /// Multiplier on `log2(P)` stages for collectives (dimensionless ≥ 1).
    pub collective_factor: f64,
}

impl NetworkModel {
    /// Time for one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time for a tree collective over `ranks` participants moving `bytes`
    /// per stage (α·⌈log2 P⌉·factor + stages·bytes/β).
    pub fn collective_time(&self, ranks: usize, bytes: u64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let stages = (ranks as f64).log2().ceil().max(1.0);
        self.collective_factor * stages * (self.latency + bytes as f64 / self.bandwidth)
    }
}

/// Shared parallel filesystem model (Lustre/GPFS analogue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilesystemModel {
    /// Aggregate sustained write bandwidth of the filesystem (bytes/s).
    pub aggregate_write_bandwidth: f64,
    /// Per-file open/close + metadata latency (s).
    pub metadata_latency: f64,
    /// Number of I/O streams the FS can absorb at full rate; beyond this,
    /// writers share bandwidth.
    pub max_parallel_streams: usize,
}

impl FilesystemModel {
    /// Time for one rank among `writers` concurrently writing `bytes`.
    ///
    /// Each writer gets an equal share of the aggregate bandwidth once the
    /// writer count exceeds the stream limit; below it, a single stream is
    /// capped at `aggregate / max_parallel_streams` (one OST's worth).
    pub fn write_time(&self, bytes: u64, writers: usize) -> f64 {
        let writers = writers.max(1);
        let per_stream_cap = self.aggregate_write_bandwidth / self.max_parallel_streams as f64;
        let fair_share = self.aggregate_write_bandwidth / writers as f64;
        let rate = fair_share.min(per_stream_cap).max(1.0);
        self.metadata_latency + bytes as f64 / rate
    }
}

/// A full testbed: node shape + GPU + network + filesystem.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Human-readable testbed name ("polaris", "juwels-booster", ...).
    pub name: &'static str,
    /// GPUs (= ranks) per node; both testbeds have 4.
    pub ranks_per_node: usize,
    /// Per-rank GPU model.
    pub gpu: GpuModel,
    /// Inter-node network.
    pub network: NetworkModel,
    /// Shared filesystem.
    pub filesystem: FilesystemModel,
    /// Host (CPU) effective throughput per rank for host-side work such as
    /// VTK conversion and software rendering (FLOP/s-equivalent).
    pub host_flops: f64,
    /// Host memory bandwidth per rank (bytes/s).
    pub host_mem_bandwidth: f64,
    /// Accumulated [`MachineModel::derate_throughput`] factor (1.0 on real
    /// models). Work whose volume does *not* scale with the mesh (image
    /// rasterization, compositing, encoding) divides its declared cost by
    /// this factor to be charged at the machine's true rates.
    pub derate_factor: f64,
}

impl MachineModel {
    /// Polaris (ALCF): HPE Apollo, 1× EPYC Milan + 4× A100/node,
    /// Slingshot-10 at the time of the paper, Lustre (Grand) filesystem.
    pub fn polaris() -> Self {
        Self {
            name: "polaris",
            ranks_per_node: 4,
            gpu: GpuModel {
                flops: 9.0e12,         // sustained FP64 w/ tensor cores derated
                mem_bandwidth: 1.3e12, // ~1.6 TB/s HBM2e derated
                d2h_bandwidth: 20.0e9, // PCIe gen4 x16 practical
                h2d_bandwidth: 20.0e9,
                xfer_latency: 12.0e-6,
            },
            network: NetworkModel {
                latency: 2.5e-6,
                bandwidth: 22.0e9, // Slingshot-10 ~25 GB/s per NIC derated
                collective_factor: 1.3,
            },
            filesystem: FilesystemModel {
                aggregate_write_bandwidth: 650.0e9, // Grand ~650 GB/s peak
                metadata_latency: 3.0e-3,
                max_parallel_streams: 160,
            },
            host_flops: 4.0e10,
            host_mem_bandwidth: 50.0e9,
            derate_factor: 1.0,
        }
    }

    /// JUWELS Booster (JSC): Atos BullSequana, 2× EPYC Rome + 4× A100/node,
    /// DragonFly+ HDR-200 InfiniBand, GPFS-like storage (JUST).
    pub fn juwels_booster() -> Self {
        Self {
            name: "juwels-booster",
            ranks_per_node: 4,
            gpu: GpuModel {
                flops: 9.0e12,
                mem_bandwidth: 1.3e12,
                d2h_bandwidth: 24.0e9, // NVLink-attached PCIe switch fabric
                h2d_bandwidth: 24.0e9,
                xfer_latency: 10.0e-6,
            },
            network: NetworkModel {
                latency: 1.8e-6,
                bandwidth: 23.0e9, // HDR-200: 4 NICs/node shared by 4 ranks
                collective_factor: 1.2,
            },
            filesystem: FilesystemModel {
                aggregate_write_bandwidth: 400.0e9,
                metadata_latency: 2.5e-3,
                max_parallel_streams: 128,
            },
            host_flops: 6.0e10,
            host_mem_bandwidth: 60.0e9,
            derate_factor: 1.0,
        }
    }

    /// Aurora (ALCF): the exascale system the paper's introduction
    /// motivates with — HPE Cray EX, 2× Xeon Max + 6× Intel Data Center
    /// GPU Max per node, Slingshot-11, DAOS storage. Included so the
    /// "widening gap between compute and I/O" claim can be explored by
    /// re-running any harness with this model.
    pub fn aurora() -> Self {
        Self {
            name: "aurora",
            ranks_per_node: 6,
            gpu: GpuModel {
                flops: 2.0e13, // PVC tile pair sustained FP64
                mem_bandwidth: 2.0e12,
                d2h_bandwidth: 40.0e9,
                h2d_bandwidth: 40.0e9,
                xfer_latency: 8.0e-6,
            },
            network: NetworkModel {
                latency: 2.0e-6,
                bandwidth: 25.0e9, // Slingshot-11 per-NIC share
                collective_factor: 1.25,
            },
            filesystem: FilesystemModel {
                aggregate_write_bandwidth: 1.0e12, // DAOS-class
                metadata_latency: 1.0e-3,
                max_parallel_streams: 512,
            },
            host_flops: 8.0e10,
            host_mem_bandwidth: 100.0e9,
            derate_factor: 1.0,
        }
    }

    /// A deliberately tiny, fast model for unit tests: all rates are round
    /// numbers so expected virtual times can be computed by hand.
    pub fn test_tiny() -> Self {
        Self {
            name: "test-tiny",
            ranks_per_node: 2,
            gpu: GpuModel {
                flops: 1.0e9,
                mem_bandwidth: 1.0e9,
                d2h_bandwidth: 1.0e8,
                h2d_bandwidth: 1.0e8,
                xfer_latency: 1.0e-6,
            },
            network: NetworkModel {
                latency: 1.0e-6,
                bandwidth: 1.0e9,
                collective_factor: 1.0,
            },
            filesystem: FilesystemModel {
                aggregate_write_bandwidth: 1.0e9,
                metadata_latency: 1.0e-3,
                max_parallel_streams: 4,
            },
            host_flops: 1.0e9,
            host_mem_bandwidth: 1.0e9,
            derate_factor: 1.0,
        }
    }

    /// Number of nodes for a given rank count (ceiling division).
    pub fn nodes_for_ranks(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.ranks_per_node)
    }

    /// Derate every *throughput* by `factor`, keeping latencies unchanged.
    ///
    /// This is how the figure harnesses run paper-scale experiments through
    /// reduced-scale meshes: if the real workload has `factor`× more data
    /// per rank than the scaled one, then a machine whose bandwidths and
    /// flop rates are `factor`× lower sees the *same* compute, transfer,
    /// I/O and message times per operation as the real machine does on the
    /// real workload — while α costs (which don't scale with data size)
    /// stay at their true values. The compute:communication ratio of the
    /// paper's regime is therefore preserved.
    pub fn derate_throughput(&self, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "derating factor must be >= 1"
        );
        let mut m = self.clone();
        m.gpu.flops /= factor;
        m.gpu.mem_bandwidth /= factor;
        m.gpu.d2h_bandwidth /= factor;
        m.gpu.h2d_bandwidth /= factor;
        m.host_flops /= factor;
        m.host_mem_bandwidth /= factor;
        m.network.bandwidth /= factor;
        m.filesystem.aggregate_write_bandwidth /= factor;
        m.derate_factor *= factor;
        m
    }

    /// Virtual time for a device compute kernel: roofline max of the
    /// flop-bound and bandwidth-bound times.
    pub fn gpu_kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.gpu.flops).max(bytes / self.gpu.mem_bandwidth)
    }

    /// Virtual time for host-side compute (VTK conversion, rendering).
    pub fn host_compute_time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.host_flops).max(bytes / self.host_mem_bandwidth)
    }

    /// Virtual time for a device→host copy.
    pub fn d2h_time(&self, bytes: u64) -> f64 {
        self.gpu.xfer_latency + bytes as f64 / self.gpu.d2h_bandwidth
    }

    /// Virtual time for a host→device copy.
    pub fn h2d_time(&self, bytes: u64) -> f64 {
        self.gpu.xfer_latency + bytes as f64 / self.gpu.h2d_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_time_is_alpha_beta() {
        let n = NetworkModel {
            latency: 1e-6,
            bandwidth: 1e9,
            collective_factor: 1.0,
        };
        let t = n.p2p_time(1_000_000);
        assert!((t - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn collective_time_grows_logarithmically() {
        let n = MachineModel::polaris().network;
        let t2 = n.collective_time(2, 8);
        let t1024 = n.collective_time(1024, 8);
        assert!(t1024 > t2);
        assert!((t1024 / t2 - 10.0).abs() < 1e-9, "log2(1024)=10 stages");
        assert_eq!(n.collective_time(1, 8), 0.0);
    }

    #[test]
    fn fs_write_shares_bandwidth_beyond_stream_limit() {
        let fs = MachineModel::test_tiny().filesystem;
        // 4 writers: each gets 1/4 of 1 GB/s == per-stream cap.
        let t4 = fs.write_time(250_000_000, 4);
        // 8 writers: each gets 1/8 of 1 GB/s — twice as slow per byte.
        let t8 = fs.write_time(250_000_000, 8);
        assert!(t8 > t4);
        assert!(((t8 - fs.metadata_latency) / (t4 - fs.metadata_latency) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fs_single_writer_capped_at_one_stream() {
        let fs = MachineModel::test_tiny().filesystem;
        // One writer cannot exceed aggregate/max_streams = 250 MB/s.
        let t = fs.write_time(250_000_000, 1);
        assert!((t - (fs.metadata_latency + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn roofline_picks_binding_constraint() {
        let m = MachineModel::test_tiny();
        // Flop-bound: lots of flops, few bytes.
        assert!((m.gpu_kernel_time(2.0e9, 8.0) - 2.0).abs() < 1e-12);
        // Bandwidth-bound: few flops, many bytes.
        assert!((m.gpu_kernel_time(8.0, 2.0e9) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_for_ranks_rounds_up() {
        let m = MachineModel::polaris();
        assert_eq!(m.nodes_for_ranks(1), 1);
        assert_eq!(m.nodes_for_ranks(4), 1);
        assert_eq!(m.nodes_for_ranks(5), 2);
        assert_eq!(m.nodes_for_ranks(1120), 280);
    }

    #[test]
    fn paper_testbeds_have_expected_identity() {
        assert_eq!(MachineModel::polaris().name, "polaris");
        assert_eq!(MachineModel::juwels_booster().name, "juwels-booster");
        assert_eq!(MachineModel::polaris().ranks_per_node, 4);
        assert_eq!(MachineModel::juwels_booster().ranks_per_node, 4);
        assert_eq!(MachineModel::aurora().name, "aurora");
        assert_eq!(MachineModel::aurora().ranks_per_node, 6);
    }

    #[test]
    fn aurora_widens_the_compute_vs_io_gap() {
        // The paper's motivation: exascale compute grows faster than I/O.
        // Flops per byte of filesystem bandwidth must be larger on Aurora
        // than on Polaris.
        let p = MachineModel::polaris();
        let a = MachineModel::aurora();
        let ratio = |m: &MachineModel| {
            m.gpu.flops * m.ranks_per_node as f64 / m.filesystem.aggregate_write_bandwidth
        };
        assert!(ratio(&a) > ratio(&p), "{} vs {}", ratio(&a), ratio(&p));
    }

    #[test]
    fn derate_scales_throughputs_not_latencies() {
        let m = MachineModel::polaris();
        let d = m.derate_throughput(100.0);
        assert_eq!(d.gpu.flops, m.gpu.flops / 100.0);
        assert_eq!(d.network.bandwidth, m.network.bandwidth / 100.0);
        assert_eq!(
            d.filesystem.aggregate_write_bandwidth,
            m.filesystem.aggregate_write_bandwidth / 100.0
        );
        assert_eq!(d.network.latency, m.network.latency);
        assert_eq!(d.gpu.xfer_latency, m.gpu.xfer_latency);
        assert_eq!(d.filesystem.metadata_latency, m.filesystem.metadata_latency);
        // Kernel time on 1/100 of the data matches the full machine on all
        // of it.
        let full = m.gpu_kernel_time(1e12, 1e12);
        let scaled = d.gpu_kernel_time(1e10, 1e10);
        assert!((full - scaled).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn derate_rejects_speedup() {
        MachineModel::polaris().derate_throughput(0.5);
    }

    #[test]
    fn d2h_slower_than_device_memory() {
        // The premise of the paper's in situ overhead: staging to host is
        // far slower than device-resident access.
        let m = MachineModel::polaris();
        assert!(m.gpu.d2h_bandwidth < m.gpu.mem_bandwidth / 10.0);
    }
}
