//! The discrete-event rank scheduler behind [`crate::exec::EventExecutor`].
//!
//! Ranks are OS threads used purely as resumable tasks: a single *run
//! token* means at most one rank executes simulation code at a time.
//! Every blocking point in the communicator parks the calling thread
//! here; the scheduler then grants the token to the pending rank with
//! the **earliest virtual clock** (ties broken by rank id, so grant
//! order is fully deterministic). Wakeups are targeted `unpark`s:
//! O(1) per point-to-point message, O(waiters) per collective phase
//! flip — never a broadcast over the whole world.
//!
//! Ranks that must block on something *outside* the world's own
//! rendezvous (the pipelined frame/credit channels, the in-transit
//! staging queues) bracket that wait with [`EventSched::external_begin`]
//! / [`EventSched::external_end`] (see `Comm::external_wait`), releasing
//! the token so the rest of the world keeps making progress. Without
//! this, a producer parked on a cross-world channel would starve the
//! very consumers that feed it.
//!
//! Deadlock detection falls out of the bookkeeping: when no rank is
//! running, ready, starting, or in an external wait, yet unfinished
//! ranks remain, no future wakeup can exist — the scheduler poisons the
//! world and every parked rank panics with a per-rank wait diagnostic.
//! (Thread mode hangs forever on such programs; the proptests in
//! `tests/proptests.rs` rely on this as a bounded-step watchdog.)

use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::Thread;

/// Why a rank parked (reported in deadlock diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Blocked in `recv`/`recv_any` waiting for a matching message.
    Message,
    /// Blocked in a collective rendezvous (barrier/reduce/gather/bcast).
    Collective,
}

impl WaitReason {
    fn label(self) -> &'static str {
        match self {
            WaitReason::Message => "recv",
            WaitReason::Collective => "collective",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// Thread not yet registered with the scheduler.
    Unstarted,
    /// Runnable, queued for the token.
    Ready,
    /// Holds the run token.
    Running,
    /// Parked in a communicator wait; woken by `notify_*`.
    Blocked(WaitReason),
    /// Executing a non-communicator blocking region (`external_wait`).
    External,
    /// Returned (or unwound) from its closure.
    Finished,
}

struct Slot {
    state: RankState,
    thread: Option<Thread>,
    /// `f64::to_bits` of the rank's virtual clock when it last became
    /// ready/blocked. Monotonic under `u64` comparison for the
    /// non-negative finite clocks the simulator produces.
    clock_bits: u64,
}

struct SchedState {
    slots: Vec<Slot>,
    /// Min-heap of (clock bits, rank) over exactly the `Ready` slots.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    running: Option<usize>,
    unstarted: usize,
    external: usize,
    live: usize,
    poisoned: bool,
    /// Deadlock diagnostic, set at detection time; parked ranks panic
    /// with this instead of the generic poison message.
    deadlock: Option<Arc<String>>,
}

/// Token scheduler for one event-mode world. Shared by the world, its
/// communicators, and the executor's rank threads.
pub struct EventSched {
    state: Mutex<SchedState>,
}

impl EventSched {
    /// A scheduler for a world of `size` ranks, all initially unstarted.
    pub fn new(size: usize) -> Self {
        Self {
            state: Mutex::new(SchedState {
                slots: (0..size)
                    .map(|_| Slot {
                        state: RankState::Unstarted,
                        thread: None,
                        clock_bits: 0,
                    })
                    .collect(),
                ready: BinaryHeap::with_capacity(size),
                running: None,
                unstarted: size,
                external: 0,
                live: size,
                poisoned: false,
                deadlock: None,
            }),
        }
    }

    /// Register the calling thread as `rank` and wait for the run token.
    /// Returns `false` when the world poisoned before the grant (the
    /// rank may proceed; its first communication will abort).
    pub fn start(&self, rank: usize) -> bool {
        {
            let mut st = self.state.lock();
            let slot = &mut st.slots[rank];
            debug_assert_eq!(slot.state, RankState::Unstarted);
            slot.thread = Some(std::thread::current());
            slot.state = RankState::Ready;
            slot.clock_bits = 0;
            st.unstarted -= 1;
            st.ready.push(Reverse((0, rank)));
            if st.poisoned {
                return false;
            }
            Self::grant_next(&mut st);
        }
        self.park_until_running(rank)
    }

    /// Park in a communicator wait (`reason`) at virtual time
    /// `clock_bits`; returns when re-granted the token. `false` means
    /// the world poisoned (or deadlocked) instead — see
    /// [`EventSched::deadlock_diag`].
    pub fn block(&self, rank: usize, reason: WaitReason, clock_bits: u64) -> bool {
        {
            let mut st = self.state.lock();
            if st.poisoned {
                return false;
            }
            debug_assert_eq!(st.running, Some(rank), "only the token holder may block");
            st.slots[rank].state = RankState::Blocked(reason);
            st.slots[rank].clock_bits = clock_bits;
            st.running = None;
            Self::grant_next(&mut st);
        }
        self.park_until_running(rank)
    }

    /// Cede the token if a ready rank has an earlier virtual clock — the
    /// send-side yield point that keeps execution in timestamp order.
    /// Returns `false` on poison, like [`EventSched::block`].
    pub fn yield_if_earlier(&self, rank: usize, clock_bits: u64) -> bool {
        {
            let mut st = self.state.lock();
            if st.poisoned {
                return false;
            }
            let earlier = st
                .ready
                .peek()
                .is_some_and(|Reverse((bits, _))| *bits < clock_bits);
            if !earlier {
                return true;
            }
            debug_assert_eq!(st.running, Some(rank), "only the token holder may yield");
            st.slots[rank].state = RankState::Ready;
            st.slots[rank].clock_bits = clock_bits;
            st.ready.push(Reverse((clock_bits, rank)));
            st.running = None;
            Self::grant_next(&mut st);
        }
        self.park_until_running(rank)
    }

    /// A message landed in `dest`'s mailbox: make it runnable if it was
    /// parked waiting for one. (The woken rank re-checks its match
    /// predicate and re-blocks if the message was not the one.)
    pub fn notify_message(&self, dest: usize) {
        let mut st = self.state.lock();
        if matches!(
            st.slots[dest].state,
            RankState::Blocked(WaitReason::Message)
        ) {
            st.slots[dest].state = RankState::Ready;
            let bits = st.slots[dest].clock_bits;
            st.ready.push(Reverse((bits, dest)));
            // No grant: the sender holds the token and keeps running.
        }
    }

    /// A collective phase flipped: every rank parked in the rendezvous
    /// re-checks its predicate.
    pub fn notify_collective(&self) {
        let mut st = self.state.lock();
        for rank in 0..st.slots.len() {
            if matches!(
                st.slots[rank].state,
                RankState::Blocked(WaitReason::Collective)
            ) {
                st.slots[rank].state = RankState::Ready;
                let bits = st.slots[rank].clock_bits;
                st.ready.push(Reverse((bits, rank)));
            }
        }
    }

    /// Enter a non-communicator blocking region: release the token so the
    /// world keeps running while this rank waits on an external channel.
    pub fn external_begin(&self, rank: usize) {
        let mut st = self.state.lock();
        debug_assert!(
            st.poisoned || st.running == Some(rank),
            "only the token holder may enter an external wait"
        );
        st.slots[rank].state = RankState::External;
        st.external += 1;
        if st.running == Some(rank) {
            st.running = None;
        }
        Self::grant_next(&mut st);
    }

    /// Leave an external region and wait to be re-granted the token.
    /// Returns `false` on poison (the caller proceeds; its next
    /// communication aborts).
    pub fn external_end(&self, rank: usize, clock_bits: u64) -> bool {
        {
            let mut st = self.state.lock();
            st.external -= 1;
            st.slots[rank].clock_bits = clock_bits;
            if st.poisoned {
                st.slots[rank].state = RankState::Ready;
                return false;
            }
            st.slots[rank].state = RankState::Ready;
            st.ready.push(Reverse((clock_bits, rank)));
            Self::grant_next(&mut st);
        }
        self.park_until_running(rank)
    }

    /// The rank returned (or unwound) from its closure: release its slot
    /// and hand the token on.
    pub fn finish(&self, rank: usize) {
        let mut st = self.state.lock();
        match st.slots[rank].state {
            RankState::Finished => return,
            RankState::External => st.external -= 1,
            RankState::Unstarted => st.unstarted -= 1,
            _ => {}
        }
        st.slots[rank].state = RankState::Finished;
        st.live -= 1;
        if st.running == Some(rank) {
            st.running = None;
        }
        Self::grant_next(&mut st);
    }

    /// Poison after a rank panic: wake every parked rank so it aborts.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        for slot in &st.slots {
            if let Some(t) = &slot.thread {
                t.unpark();
            }
        }
    }

    /// The deadlock diagnostic, when detection fired.
    pub fn deadlock_diag(&self) -> Option<Arc<String>> {
        self.state.lock().deadlock.clone()
    }

    /// Number of ranks that have registered with the scheduler (test
    /// hook: parked ranks count, so the token holder can wait for the
    /// whole world before exercising deterministic grant ordering).
    #[doc(hidden)]
    pub fn registered(&self) -> usize {
        let st = self.state.lock();
        st.slots.len() - st.unstarted
    }

    /// Grant the token to the earliest-clock ready rank; with nobody to
    /// grant and no possible future wakeup, declare deadlock.
    fn grant_next(st: &mut SchedState) {
        if st.running.is_some() || st.poisoned {
            return;
        }
        while let Some(Reverse((bits, rank))) = st.ready.pop() {
            // Stale heap entries (rank moved on since being pushed) are
            // skipped; a slot is granted only from `Ready`.
            if st.slots[rank].state == RankState::Ready && st.slots[rank].clock_bits == bits {
                st.slots[rank].state = RankState::Running;
                st.running = Some(rank);
                if let Some(t) = &st.slots[rank].thread {
                    t.unpark();
                }
                return;
            }
        }
        if st.unstarted == 0 && st.external == 0 && st.live > 0 {
            // Every unfinished rank is parked in a communicator wait and
            // no runnable rank remains to wake any of them.
            let mut diag = format!(
                "discrete-event scheduler deadlock: all {} unfinished ranks are blocked \
                 with no possible wakeup (invalid communication program):",
                st.live
            );
            let mut listed = 0;
            for (rank, slot) in st.slots.iter().enumerate() {
                if let RankState::Blocked(reason) = slot.state {
                    if listed < 16 {
                        diag.push_str(&format!(
                            " rank{rank}@{}[t={:.3e}]",
                            reason.label(),
                            f64::from_bits(slot.clock_bits)
                        ));
                    }
                    listed += 1;
                }
            }
            if listed > 16 {
                diag.push_str(&format!(" … ({} more)", listed - 16));
            }
            st.poisoned = true;
            st.deadlock = Some(Arc::new(diag));
            for slot in &st.slots {
                if let Some(t) = &slot.thread {
                    t.unpark();
                }
            }
        }
    }

    /// Park until granted the token (`true`) or poisoned (`false`).
    fn park_until_running(&self, rank: usize) -> bool {
        loop {
            {
                let st = self.state.lock();
                if st.slots[rank].state == RankState::Running {
                    return true;
                }
                if st.poisoned {
                    return false;
                }
            }
            // Unpark tokens are sticky: an unpark between the check above
            // and this park makes park return immediately.
            std::thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_order_follows_virtual_clock_then_rank() {
        let s = Arc::new(EventSched::new(3));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for rank in 0..3 {
            let s = Arc::clone(&s);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                assert!(s.start(rank));
                // Whichever rank is granted first holds the token (the
                // others are parked) until the whole world registers,
                // then cedes to the earliest clock — from here on the
                // grant sequence is fully deterministic.
                while s.registered() < 3 {
                    std::thread::yield_now();
                }
                assert!(s.yield_if_earlier(rank, (((rank + 1) * 100) as f64).to_bits()));
                order.lock().push(rank);
                assert!(s.yield_if_earlier(rank, (((rank + 1) * 1000) as f64).to_bits()));
                order.lock().push(rank + 10);
                s.finish(rank);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = order.lock().clone();
        // First pass granted at clocks 100 < 200 < 300, second pass at
        // 1000 < 2000 < 3000 — virtual-clock order, which is rank order.
        assert_eq!(got, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn deadlock_is_detected_and_diagnosed() {
        let s = Arc::new(EventSched::new(2));
        let mut handles = Vec::new();
        for rank in 0..2 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                assert!(s.start(rank));
                // Both ranks block on a message that will never arrive.
                let granted = s.block(rank, WaitReason::Message, 0);
                s.finish(rank);
                granted
            }));
        }
        let granted: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(granted, vec![false, false]);
        let diag = s.deadlock_diag().expect("deadlock recorded");
        assert!(diag.contains("scheduler deadlock"), "{diag}");
        assert!(diag.contains("rank0@recv"), "{diag}");
        assert!(diag.contains("rank1@recv"), "{diag}");
    }

    #[test]
    fn external_waits_release_the_token() {
        let s = Arc::new(EventSched::new(2));
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        let s0 = Arc::clone(&s);
        let h0 = std::thread::spawn(move || {
            assert!(s0.start(0));
            s0.external_begin(0);
            let v = rx.recv().unwrap(); // needs rank 1 to run
            assert!(s0.external_end(0, 1.0f64.to_bits()));
            s0.finish(0);
            v
        });
        let s1 = Arc::clone(&s);
        let h1 = std::thread::spawn(move || {
            assert!(s1.start(1));
            tx.send(42).unwrap();
            s1.finish(1);
        });
        h1.join().unwrap();
        assert_eq!(h0.join().unwrap(), 42);
        assert!(s.deadlock_diag().is_none());
    }
}
