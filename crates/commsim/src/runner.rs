//! Spawn-join harness: run a closure on every rank of a world.
//!
//! Rank counts can exceed the physical core count — ranks are threads that
//! mostly block in rendezvous, and the figure harnesses rely on virtual
//! time, not wall time. Stacks are kept small (2 MiB) so hundreds of ranks
//! fit comfortably.

use crate::comm::{Comm, World};
use crate::machine::MachineModel;
use crate::stats::CommStats;
use memtrack::Registry;
use std::sync::Arc;
use std::thread;

/// Everything a rank produced: its closure's return value, final virtual
/// time, and operation counters.
#[derive(Debug, Clone)]
pub struct RankResult<R> {
    /// Rank id.
    pub rank: usize,
    /// The closure's return value.
    pub value: R,
    /// Virtual time when the rank finished.
    pub time: f64,
    /// Communication/IO counters.
    pub stats: CommStats,
}

const RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Run `f` on `size` ranks; return just the closure values, indexed by rank.
///
/// # Panics
/// Re-raises the first rank panic after poisoning the world so the other
/// ranks abort instead of deadlocking.
pub fn run_ranks<R, F>(size: usize, machine: MachineModel, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> R + Send + Sync + 'static,
{
    run_ranks_with_registry(size, machine, Registry::new(), f)
        .into_iter()
        .map(|r| r.value)
        .collect()
}

/// Run `f` on one rank per element of `states`, moving each element into
/// its rank. Useful when ranks need owned, mutable resources (staging
/// writers/readers, solvers) that a shared `Fn` closure cannot provide.
///
/// # Panics
/// Re-raises rank panics like [`run_ranks`].
pub fn run_ranks_with_state<S, R, F>(machine: MachineModel, states: Vec<S>, f: F) -> Vec<R>
where
    S: Send + 'static,
    R: Send + 'static,
    F: Fn(&mut Comm, S) -> R + Send + Sync + 'static,
{
    use parking_lot::Mutex;
    let slots: Arc<Mutex<Vec<Option<S>>>> =
        Arc::new(Mutex::new(states.into_iter().map(Some).collect()));
    let n = slots.lock().len();
    run_ranks(n, machine, move |comm| {
        let state = slots.lock()[comm.rank()]
            .take()
            .expect("state taken exactly once per rank");
        f(comm, state)
    })
}

/// Run `f` on `size` ranks with a caller-provided memory registry; return
/// full [`RankResult`]s including virtual times and stats.
pub fn run_ranks_with_registry<R, F>(
    size: usize,
    machine: MachineModel,
    registry: Registry,
    f: F,
) -> Vec<RankResult<R>>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> R + Send + Sync + 'static,
{
    let world = World::new(size, machine, registry);
    let f = Arc::new(f);
    // Rank threads share one global compute pool (see `rayon::pool`); the
    // spawning thread's pool-size override carries over so e.g.
    // `pool::with_threads(1, || run_ranks(..))` forces sequential kernels
    // inside every rank.
    let pool_override = rayon::pool::override_threads();
    let mut handles = Vec::with_capacity(size);
    for rank in 0..size {
        let world = Arc::clone(&world);
        let f = Arc::clone(&f);
        let handle = thread::Builder::new()
            .name(format!("rank{rank}"))
            .stack_size(RANK_STACK_BYTES)
            .spawn(move || {
                let mut comm = world.attach(rank);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rayon::pool::with_override(pool_override, || f(&mut comm))
                }));
                match outcome {
                    Ok(value) => {
                        let time = comm.now();
                        let stats = *comm.stats();
                        Ok(RankResult {
                            rank,
                            value,
                            time,
                            stats,
                        })
                    }
                    Err(payload) => {
                        // A rank that panics because the world was already
                        // poisoned is collateral damage; remember that so the
                        // runner re-raises the original panic, not this one.
                        let secondary = world.is_poisoned();
                        world.poison();
                        Err((secondary, payload))
                    }
                }
            })
            .expect("failed to spawn rank thread");
        handles.push(handle);
    }

    let mut results: Vec<Option<RankResult<R>>> = (0..size).map(|_| None).collect();
    let mut primary_panic: Option<Box<dyn std::any::Any + Send>> = None;
    let mut secondary_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(result)) => {
                let rank = result.rank;
                results[rank] = Some(result);
            }
            Ok(Err((secondary, payload))) => {
                if secondary {
                    secondary_panic.get_or_insert(payload);
                } else {
                    primary_panic.get_or_insert(payload);
                }
            }
            Err(payload) => {
                primary_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = primary_panic.or(secondary_panic) {
        std::panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|r| r.expect("rank produced no result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_rank() {
        let res = run_ranks(6, MachineModel::test_tiny(), |comm| comm.rank() * 2);
        assert_eq!(res, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn rank_results_carry_time_and_stats() {
        let res = run_ranks_with_registry(2, MachineModel::test_tiny(), Registry::new(), |comm| {
            comm.advance(1.25);
            comm.barrier();
        });
        for r in &res {
            assert!(r.time >= 1.25);
            assert_eq!(r.stats.collectives, 1);
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates_without_deadlock() {
        run_ranks(3, MachineModel::test_tiny(), |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
            // Other ranks block in a collective; poisoning must abort them.
            comm.barrier();
        });
    }

    #[test]
    fn many_ranks_oversubscribe_one_core() {
        // 64 ranks on however few cores the host has.
        let res = run_ranks(64, MachineModel::test_tiny(), |comm| {
            comm.allreduce(1.0, crate::ReduceOp::Sum)
        });
        for v in res {
            assert_eq!(v, 64.0);
        }
    }
}
