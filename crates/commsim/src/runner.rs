//! Spawn-join harness: run a closure on every rank of a world.
//!
//! Rank counts can exceed the physical core count — ranks are threads that
//! mostly block in rendezvous, and the figure harnesses rely on virtual
//! time, not wall time. The actual spawn/park mechanics live in
//! [`crate::exec`]: these entry points dispatch on the ambient
//! [`SchedMode`] (the `NEK_SCHED_MODE` env var or a
//! [`crate::exec::with_mode`] override) between the free-running
//! [`ThreadExecutor`] and the discrete-event [`EventExecutor`].
//!
//! Thread mode keeps stacks small (2 MiB) so hundreds of ranks fit, but it
//! still spends one free-running OS thread per rank — it refuses world
//! sizes above a documented cap (default 2048, see
//! [`crate::exec::ThreadExecutor`]) with a clear error instead of dying in
//! `pthread_create`. Event mode parks all but one rank and scales to tens
//! of thousands of ranks.

use crate::comm::Comm;
use crate::exec::{EventExecutor, Executor, SchedMode, ThreadExecutor};
use crate::machine::MachineModel;
use crate::stats::CommStats;
use memtrack::Registry;
use std::sync::Arc;

/// Everything a rank produced: its closure's return value, final virtual
/// time, and operation counters.
#[derive(Debug, Clone)]
pub struct RankResult<R> {
    /// Rank id.
    pub rank: usize,
    /// The closure's return value.
    pub value: R,
    /// Virtual time when the rank finished.
    pub time: f64,
    /// Communication/IO counters.
    pub stats: CommStats,
}

/// Run `f` on `size` ranks; return just the closure values, indexed by rank.
///
/// # Panics
/// Re-raises the first rank panic after poisoning the world so the other
/// ranks abort instead of deadlocking.
pub fn run_ranks<R, F>(size: usize, machine: MachineModel, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> R + Send + Sync + 'static,
{
    run_ranks_with_registry(size, machine, Registry::new(), f)
        .into_iter()
        .map(|r| r.value)
        .collect()
}

/// Run `f` on one rank per element of `states`, moving each element into
/// its rank. Useful when ranks need owned, mutable resources (staging
/// writers/readers, solvers) that a shared `Fn` closure cannot provide.
///
/// # Panics
/// Re-raises rank panics like [`run_ranks`].
pub fn run_ranks_with_state<S, R, F>(machine: MachineModel, states: Vec<S>, f: F) -> Vec<R>
where
    S: Send + 'static,
    R: Send + 'static,
    F: Fn(&mut Comm, S) -> R + Send + Sync + 'static,
{
    use parking_lot::Mutex;
    let slots: Arc<Mutex<Vec<Option<S>>>> =
        Arc::new(Mutex::new(states.into_iter().map(Some).collect()));
    let n = slots.lock().len();
    run_ranks(n, machine, move |comm| {
        let state = slots.lock()[comm.rank()]
            .take()
            .expect("state taken exactly once per rank");
        f(comm, state)
    })
}

/// Run `f` on `size` ranks with a caller-provided memory registry; return
/// full [`RankResult`]s including virtual times and stats.
///
/// Dispatches on [`SchedMode::current`]: `NEK_SCHED_MODE=event` (or an
/// enclosing [`crate::exec::with_mode`]) selects the discrete-event
/// executor; the default is the free-running thread executor.
pub fn run_ranks_with_registry<R, F>(
    size: usize,
    machine: MachineModel,
    registry: Registry,
    f: F,
) -> Vec<RankResult<R>>
where
    R: Send + 'static,
    F: Fn(&mut Comm) -> R + Send + Sync + 'static,
{
    match SchedMode::current() {
        SchedMode::Thread => ThreadExecutor::default().run_world(size, machine, registry, f),
        SchedMode::Event => EventExecutor::default().run_world(size, machine, registry, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_rank() {
        let res = run_ranks(6, MachineModel::test_tiny(), |comm| comm.rank() * 2);
        assert_eq!(res, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn rank_results_carry_time_and_stats() {
        let res = run_ranks_with_registry(2, MachineModel::test_tiny(), Registry::new(), |comm| {
            comm.advance(1.25);
            comm.barrier();
        });
        for r in &res {
            assert!(r.time >= 1.25);
            assert_eq!(r.stats.collectives, 1);
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates_without_deadlock() {
        run_ranks(3, MachineModel::test_tiny(), |comm| {
            if comm.rank() == 1 {
                panic!("deliberate");
            }
            // Other ranks block in a collective; poisoning must abort them.
            comm.barrier();
        });
    }

    #[test]
    fn many_ranks_oversubscribe_one_core() {
        // 64 ranks on however few cores the host has.
        let res = run_ranks(64, MachineModel::test_tiny(), |comm| {
            comm.allreduce(1.0, crate::ReduceOp::Sum)
        });
        for v in res {
            assert_eq!(v, 64.0);
        }
    }
}
