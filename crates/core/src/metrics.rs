//! Aggregation of virtual-clock timings and memory high-water marks into
//! the quantities the paper's figures plot.

use commsim::CommStats;
use memtrack::{Registry, Snapshot};

// Time attribution lives next to memory attribution: `MemoryBreakdown`
// answers "where did the bytes go", `PhaseBreakdown` answers "where did
// the virtual seconds go" (per rank, per span name). These types are
// defined — and the aggregation implemented — in the `trace` crate,
// which is their one canonical home; `commsim` re-exports them only so
// instrumented crates need no direct `trace` dependency. Workflow
// reports carry a breakdown when run with `trace: true`.
pub use trace::{PhaseBreakdown, PhaseStat, RankPhases, RankTrace};

/// Host/device memory split for one run, derived from the per-rank
/// accountants (`rank<r>/<subsystem>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBreakdown {
    /// Sum over ranks of host-side peaks (Figure 3's metric).
    pub host_aggregate_peak: u64,
    /// Largest single-rank host peak.
    pub host_max_rank_peak: u64,
    /// Sum over ranks of device (`gpu`) peaks.
    pub gpu_aggregate_peak: u64,
    /// Peak bytes in accountants without a `rank<r>/` prefix (shared or
    /// process-global allocations that belong to no single rank). Not
    /// part of the per-rank host figures, but surfaced so nothing the
    /// registry tracked disappears from the report.
    pub unscoped: u64,
}

/// Compute the breakdown from a registry snapshot. Host = every subsystem
/// except `gpu` (the paper's Figures 3/6 report CPU memory; the GPU
/// footprint is identical across configurations by construction).
pub fn memory_breakdown(registry: &Registry) -> MemoryBreakdown {
    breakdown_of(&registry.snapshot())
}

fn breakdown_of(snap: &Snapshot) -> MemoryBreakdown {
    use std::collections::BTreeMap;
    let mut host_by_rank: BTreeMap<String, u64> = BTreeMap::new();
    let mut gpu = 0u64;
    let mut unscoped = 0u64;
    for (name, _cur, peak) in &snap.entries {
        let Some((rank, subsystem)) = name.split_once('/') else {
            // No `rank<r>/` prefix: count it instead of dropping it.
            unscoped += peak;
            continue;
        };
        if subsystem == "gpu" {
            gpu += peak;
        } else {
            *host_by_rank.entry(rank.to_string()).or_default() += peak;
        }
    }
    MemoryBreakdown {
        host_aggregate_peak: host_by_rank.values().sum(),
        host_max_rank_peak: host_by_rank.values().copied().max().unwrap_or(0),
        gpu_aggregate_peak: gpu,
        unscoped,
    }
}

/// Fault-tolerance outcome of one run, aggregated over the simulation-side
/// producers: how many triggers were staged in transit, lost to exhausted
/// retries, or parked to the BP file fallback after a circuit breaker
/// opened (DESIGN.md "Fault model & degradation ladder").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationSummary {
    /// Producers reporting.
    pub producers: usize,
    /// Triggers delivered over the staging link, summed over producers.
    pub staged_steps: u64,
    /// Triggers lost to transient transport failures (no fallback ran).
    pub lost_steps: u64,
    /// Triggers appended to the BP file fallback after degradation.
    pub parked_steps: u64,
    /// Producers whose circuit breaker opened and who switched engines.
    pub degraded_producers: usize,
    /// Earliest step at which any producer switched to the fallback.
    pub first_switch_step: Option<u64>,
    /// Data-plane loss events endured (retried sends), summed.
    pub retries: u64,
}

impl DegradationSummary {
    /// Aggregate the per-producer staging reports.
    pub fn from_reports(reports: &[transport::ProducerReport]) -> Self {
        let mut s = Self {
            producers: reports.len(),
            ..Self::default()
        };
        for r in reports {
            s.staged_steps += r.staged_steps;
            s.lost_steps += r.lost_steps;
            s.parked_steps += r.parked_steps;
            s.retries += r.retries;
            if let Some(sw) = r.switch_step {
                s.degraded_producers += 1;
                s.first_switch_step = Some(match s.first_switch_step {
                    Some(cur) => cur.min(sw),
                    None => sw,
                });
            }
        }
        s
    }

    /// Did any producer fall back to the file engine?
    pub fn degraded(&self) -> bool {
        self.degraded_producers > 0
    }
}

/// The timing/traffic summary of one run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Max over ranks of final virtual time — the paper's elapsed
    /// wall-clock ("time to solution").
    pub time_to_solution: f64,
    /// `time_to_solution / steps`.
    pub mean_step_time: f64,
    /// Aggregated per-rank operation counters.
    pub totals: CommStats,
    /// Memory accountant breakdown.
    pub memory: MemoryBreakdown,
}

impl RunMetrics {
    /// Build from per-rank `(virtual_time, stats)` pairs.
    pub fn from_ranks(
        times_and_stats: &[(f64, CommStats)],
        steps: usize,
        registry: &Registry,
    ) -> Self {
        let time_to_solution = times_and_stats.iter().map(|(t, _)| *t).fold(0.0, f64::max);
        let totals = CommStats::aggregate(times_and_stats.iter().map(|(_, s)| s));
        Self {
            time_to_solution,
            mean_step_time: time_to_solution / steps.max(1) as f64,
            totals,
            memory: memory_breakdown(registry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_splits_gpu_from_host_by_rank() {
        let reg = Registry::new();
        reg.accountant("rank0/gpu").charge_raw(1000);
        reg.accountant("rank0/vtk").charge_raw(100);
        reg.accountant("rank0/host-base").charge_raw(50);
        reg.accountant("rank1/gpu").charge_raw(1000);
        reg.accountant("rank1/vtk").charge_raw(300);
        reg.accountant("unscoped").charge_raw(7); // no rank prefix
        let b = memory_breakdown(&reg);
        assert_eq!(b.gpu_aggregate_peak, 2000);
        assert_eq!(
            b.host_aggregate_peak, 450,
            "unscoped stays out of per-rank host"
        );
        assert_eq!(b.host_max_rank_peak, 300);
        assert_eq!(b.unscoped, 7, "but is counted, not dropped");
    }

    #[test]
    fn run_metrics_take_slowest_rank() {
        let reg = Registry::new();
        let ranks = vec![
            (10.0, CommStats::default()),
            (12.5, CommStats::default()),
            (11.0, CommStats::default()),
        ];
        let m = RunMetrics::from_ranks(&ranks, 5, &reg);
        assert_eq!(m.time_to_solution, 12.5);
        assert_eq!(m.mean_step_time, 2.5);
    }

    #[test]
    fn degradation_summary_aggregates_producer_reports() {
        use transport::ProducerReport;
        let healthy = ProducerReport {
            producer: 0,
            staged_steps: 10,
            lost_steps: 0,
            parked_steps: 0,
            switch_step: None,
            retries: 2,
        };
        let degraded = ProducerReport {
            producer: 1,
            staged_steps: 4,
            lost_steps: 2,
            parked_steps: 4,
            switch_step: Some(7),
            retries: 9,
        };
        let late_degraded = ProducerReport {
            switch_step: Some(9),
            ..degraded
        };
        let s = DegradationSummary::from_reports(&[healthy, degraded, late_degraded]);
        assert_eq!(s.producers, 3);
        assert_eq!(s.staged_steps, 18);
        assert_eq!(s.lost_steps, 4);
        assert_eq!(s.parked_steps, 8);
        assert_eq!(s.degraded_producers, 2);
        assert_eq!(s.first_switch_step, Some(7));
        assert_eq!(s.retries, 20);
        assert!(s.degraded());
        assert!(!DegradationSummary::from_reports(&[healthy]).degraded());
    }

    #[test]
    fn empty_inputs_are_safe() {
        let reg = Registry::new();
        let m = RunMetrics::from_ranks(&[], 0, &reg);
        assert_eq!(m.time_to_solution, 0.0);
        assert_eq!(m.memory, MemoryBreakdown::default());
    }
}
