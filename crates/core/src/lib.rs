//! `nek-sensei` — the paper's contribution: instrumenting the NekRS-style
//! SEM solver with the SENSEI-style generic in situ interface.
//!
//! The paper (§3) describes exactly three pieces of coupling code, all
//! rebuilt here:
//!
//! 1. **`nek_sensei::DataAdaptor`** (Listing 2) → [`adaptor::SnapshotAdaptor`]:
//!    presents a published [`sem::snapshot::FieldSnapshot`] as VTK-model
//!    meshes over the cached [`adaptor::NekGeometry`]. The solver stages
//!    each requested field device→host exactly once at publish time — the
//!    paper's central overhead — and consumers share the staged buffers
//!    zero-copy.
//! 2. **the bridge** (Listing 3) → re-exported from [`insitu::bridge`],
//!    driven by the workflow runners.
//! 3. **run configurations** → [`workflow`]: the §4.1 in situ pebble-bed
//!    experiment ({Original, Checkpointing, Catalyst} × rank counts) and
//!    the §4.2 in transit RBC experiment ({No Transport, Checkpointing,
//!    Catalyst} with a 4:1 sim:endpoint ratio over the SST-analogue
//!    staging engine).
//!
//! [`checkpoint::FldCheckpointer`] reproduces NekRS's *built-in*
//! checkpointing (full-resolution field dumps — the 19 GB side of the
//! paper's storage-economy comparison), distinct from the SENSEI
//! `vtu-checkpoint` analysis used by the in-transit endpoint.
//! [`metrics`] aggregates virtual-clock timings and memory-accountant
//! high-water marks into the quantities Figures 2, 3, 5 and 6 plot.

pub mod adaptor;
pub mod checkpoint;
pub mod metrics;
pub mod workflow;

pub use adaptor::{NekGeometry, SnapshotAdaptor, SnapshotPlane, MESH_NAME};
pub use checkpoint::{
    encode_fld, read_fld, scan_for_restore, CheckpointSpec, CheckpointStore, EncodedFld,
    FldCheckpointer, FldDump, QuarantinedGeneration, RecoveryScan, RestoreError,
    RestoredGeneration,
};
pub use metrics::{
    DegradationSummary, MemoryBreakdown, PhaseBreakdown, PhaseStat, RankPhases, RankTrace,
    RunMetrics,
};
pub use workflow::insitu::{
    run_insitu, ExecMode, InSituConfig, InSituMode, InSituReport, PIPELINE_DEPTH,
};
pub use workflow::intransit::{run_intransit, EndpointMode, InTransitConfig, InTransitReport};
pub use workflow::supervisor::{
    run_supervised_insitu, run_supervised_intransit, AttemptOutcome, FailureKind, RecoveryOptions,
    RecoveryStats, SupervisedReport, SupervisorConfig,
};
