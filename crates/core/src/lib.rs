//! `nek-sensei` — the paper's contribution: instrumenting the NekRS-style
//! SEM solver with the SENSEI-style generic in situ interface.
//!
//! The paper (§3) describes exactly three pieces of coupling code, all
//! rebuilt here:
//!
//! 1. **`nek_sensei::DataAdaptor`** (Listing 2) → [`adaptor::NekDataAdaptor`]:
//!    presents the solver's GPU-resident fields as VTK-model meshes. Every
//!    `add_array` stages the field device→host first (VTK cannot consume
//!    device memory) and charges the copy — the paper's central overhead.
//! 2. **the bridge** (Listing 3) → re-exported from [`insitu::bridge`],
//!    driven by the workflow runners.
//! 3. **run configurations** → [`workflow`]: the §4.1 in situ pebble-bed
//!    experiment ({Original, Checkpointing, Catalyst} × rank counts) and
//!    the §4.2 in transit RBC experiment ({No Transport, Checkpointing,
//!    Catalyst} with a 4:1 sim:endpoint ratio over the SST-analogue
//!    staging engine).
//!
//! [`checkpoint::FldCheckpointer`] reproduces NekRS's *built-in*
//! checkpointing (full-resolution field dumps — the 19 GB side of the
//! paper's storage-economy comparison), distinct from the SENSEI
//! `vtu-checkpoint` analysis used by the in-transit endpoint.
//! [`metrics`] aggregates virtual-clock timings and memory-accountant
//! high-water marks into the quantities Figures 2, 3, 5 and 6 plot.

pub mod adaptor;
pub mod checkpoint;
pub mod metrics;
pub mod workflow;

pub use adaptor::NekDataAdaptor;
pub use checkpoint::{read_fld, FldCheckpointer, FldDump};
pub use metrics::{
    DegradationSummary, MemoryBreakdown, PhaseBreakdown, PhaseStat, RankPhases, RankTrace,
    RunMetrics,
};
pub use workflow::insitu::{run_insitu, InSituConfig, InSituMode, InSituReport};
pub use workflow::intransit::{run_intransit, EndpointMode, InTransitConfig, InTransitReport};
