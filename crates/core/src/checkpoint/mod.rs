//! NekRS-style built-in checkpointing: full-resolution raw field dumps.
//!
//! The paper's §4.1 "Checkpointing" configuration is NekRS's own
//! checkpoint writer ("periodically storing raw simulation data onto
//! disk"), *not* a SENSEI analysis. Each trigger, every rank stages its
//! fields from the device and writes them verbatim — which is why the
//! paper measures ~19 GB of checkpoints against 6.5 MB of rendered images.

use commsim::Comm;
use memtrack::Accountant;
use sem::navier_stokes::FlowSolver;
use sem::snapshot::FieldSnapshot;

mod store;

pub(crate) use store::quarantine_generation;
pub use store::{
    scan_for_restore, CheckpointSpec, CheckpointStore, QuarantinedGeneration, RecoveryScan,
    RestoredGeneration,
};

/// Magic prefix of a dump file.
const FLD_MAGIC: &[u8; 8] = b"NEKFLD01";

/// Width of a field-name tag in the dump format.
const TAG_LEN: usize = 12;

/// An encoded NEKFLD01 dump plus what the encoder had to compromise on.
pub struct EncodedFld {
    /// The serialized dump.
    pub bytes: Vec<u8>,
    /// Field names longer than the 12-byte tag, truncated on write.
    pub truncated_tags: Vec<String>,
}

/// Serialize a published snapshot in the NEKFLD01 format (the snapshot's
/// interleaved velocity is de-interleaved back into `velx`/`vely`/`velz`
/// components). Field names longer than the 12-byte tag are truncated at
/// a character boundary and reported in
/// [`EncodedFld::truncated_tags`] instead of panicking.
pub fn encode_fld(snap: &FieldSnapshot) -> EncodedFld {
    let n = snap.n_nodes as u64;
    let velocity = snap.field("velocity");
    let mut n_fields = 0u32;
    if velocity.is_some() {
        n_fields += 3;
    }
    let scalars: Vec<(&str, &[f64])> = snap
        .fields()
        .iter()
        .filter(|f| f.name != "velocity")
        .map(|f| (f.name, f.values()))
        .collect();
    n_fields += scalars.len() as u32;

    let mut truncated_tags = Vec::new();
    let mut buf = Vec::with_capacity((u64::from(n_fields) * n * 8 + 64) as usize);
    buf.extend_from_slice(FLD_MAGIC);
    buf.extend_from_slice(&(snap.version as u64).to_le_bytes());
    buf.extend_from_slice(&snap.time.to_le_bytes());
    buf.extend_from_slice(&n.to_le_bytes());
    buf.extend_from_slice(&n_fields.to_le_bytes());
    let mut push_field = |buf: &mut Vec<u8>, name: &str, values: &mut dyn Iterator<Item = f64>| {
        let mut take = name.len().min(TAG_LEN);
        while !name.is_char_boundary(take) {
            take -= 1;
        }
        if take < name.len() {
            truncated_tags.push(name.to_string());
        }
        let mut tag = [0u8; TAG_LEN];
        tag[..take].copy_from_slice(&name.as_bytes()[..take]);
        buf.extend_from_slice(&tag);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    };
    if let Some(vel) = velocity {
        let v = vel.values();
        for (c, name) in ["velx", "vely", "velz"].iter().enumerate() {
            push_field(&mut buf, name, &mut (0..n as usize).map(|i| v[3 * i + c]));
        }
    }
    for (name, values) in &scalars {
        push_field(&mut buf, name, &mut values.iter().copied());
    }
    EncodedFld {
        bytes: buf,
        truncated_tags,
    }
}

/// Raw field-dump checkpointer for one rank.
pub struct FldCheckpointer {
    output_dir: Option<std::path::PathBuf>,
    buffer_accountant: Accountant,
    files_written: u64,
    bytes_written: u64,
}

impl FldCheckpointer {
    /// Dumps go under `output_dir` when given; otherwise only the cost
    /// model and counters are exercised (the harness default).
    pub fn new(comm: &Comm, output_dir: Option<std::path::PathBuf>) -> Self {
        Self {
            output_dir,
            buffer_accountant: comm.accountant("chk-buffer"),
            files_written: 0,
            bytes_written: 0,
        }
    }

    /// Write one checkpoint from a published snapshot (NEKFLD01 format,
    /// unchanged: the snapshot's interleaved velocity is de-interleaved
    /// back into `velx`/`vely`/`velz` components). The D2H staging was
    /// already paid once at publish time. Returns bytes written by this
    /// rank.
    pub fn write(&mut self, comm: &mut Comm, snap: &FieldSnapshot) -> u64 {
        let encoded = encode_fld(snap);
        for name in &encoded.truncated_tags {
            comm.telemetry().counter("checkpoint/tag_truncated").inc();
            comm.telemetry_event(
                commsim::EventKind::CheckpointWrite,
                Some(snap.version as u64),
                format!("warning: field tag '{name}' truncated to {TAG_LEN} bytes"),
            );
        }
        let buf = encoded.bytes;
        let nbytes = buf.len() as u64;
        // The serialization buffer is resident while the write drains.
        let charge = self.buffer_accountant.charge(nbytes);
        comm.compute_host(nbytes as f64, nbytes as f64 * 2.0);
        comm.fs_write(nbytes, comm.size());
        drop(charge);
        self.files_written += 1;
        self.bytes_written += nbytes;
        comm.telemetry()
            .counter("checkpoint/bytes_written")
            .add(nbytes);
        comm.telemetry_event(
            commsim::EventKind::CheckpointWrite,
            Some(snap.version as u64),
            format!("{nbytes} B fld"),
        );
        if let Some(dir) = &self.output_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                let name = format!("fld_{:06}_r{}.bin", snap.version, comm.rank());
                let _ = std::fs::write(dir.join(name), &buf);
            }
        }
        nbytes
    }

    /// Checkpoints written by this rank.
    pub fn files_written(&self) -> u64 {
        self.files_written
    }

    /// Bytes written by this rank.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// A parsed field dump (the restart side of [`FldCheckpointer`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FldDump {
    /// Timestep index at dump time.
    pub step: u64,
    /// Simulation time at dump time.
    pub time: f64,
    /// Local node count.
    pub n_nodes: u64,
    /// (name, values) in dump order.
    pub fields: Vec<(String, Vec<f64>)>,
}

impl FldDump {
    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&[f64]> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Restore a solver from this dump (clears histories; see
    /// [`sem::navier_stokes::FlowSolver::restore`]).
    ///
    /// # Errors
    /// Returns [`RestoreError`] when a required field is missing or
    /// mis-sized — a bad dump is a quarantine event for the supervisor,
    /// never a crash.
    pub fn restore_into(
        &self,
        comm: &mut commsim::Comm,
        solver: &mut FlowSolver,
    ) -> Result<(), RestoreError> {
        let n = solver.n_nodes();
        let required = |name: &str| -> Result<Vec<f64>, RestoreError> {
            let values = self
                .field(name)
                .ok_or_else(|| RestoreError::MissingField(name.to_string()))?;
            if values.len() != n {
                return Err(RestoreError::WrongSize {
                    field: name.to_string(),
                    expected: n,
                    got: values.len(),
                });
            }
            Ok(values.to_vec())
        };
        let u = [required("velx")?, required("vely")?, required("velz")?];
        let p = required("pressure")?;
        let t = match self.field("temperature") {
            Some(values) if values.len() != n => {
                return Err(RestoreError::WrongSize {
                    field: "temperature".to_string(),
                    expected: n,
                    got: values.len(),
                })
            }
            Some(values) => Some(values.to_vec()),
            None => None,
        };
        solver.restore(comm, self.step as usize, self.time, u, p, t);
        Ok(())
    }
}

/// Why a parsed dump could not be restored into a solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// A field the solver needs is absent from the dump.
    MissingField(String),
    /// A field's length does not match the solver's local node count.
    WrongSize {
        /// Field name.
        field: String,
        /// Solver-local node count.
        expected: usize,
        /// Values found in the dump.
        got: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingField(name) => write!(f, "dump is missing field '{name}'"),
            Self::WrongSize {
                field,
                expected,
                got,
            } => write!(
                f,
                "field '{field}' has {got} values, solver needs {expected}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Parse a dump produced by [`FldCheckpointer::write`].
///
/// # Errors
/// Returns a description of the first structural problem.
pub fn read_fld(bytes: &[u8]) -> Result<FldDump, String> {
    let need = |ok: bool, what: &str| {
        if ok {
            Ok(())
        } else {
            Err(format!("truncated: {what}"))
        }
    };
    need(bytes.len() >= 8 + 8 + 8 + 8 + 4, "header")?;
    if &bytes[0..8] != FLD_MAGIC {
        return Err("bad magic".to_string());
    }
    let step = u64::from_le_bytes(bytes[8..16].try_into().expect("checked"));
    let time = f64::from_le_bytes(bytes[16..24].try_into().expect("checked"));
    let n = u64::from_le_bytes(bytes[24..32].try_into().expect("checked"));
    let n_fields = u32::from_le_bytes(bytes[32..36].try_into().expect("checked"));
    // Validate the declared sizes against what is actually present BEFORE
    // allocating anything: a corrupted header must not drive a huge (or
    // overflowing) `Vec::with_capacity`.
    let field_bytes = (n as usize)
        .checked_mul(8)
        .and_then(|b| b.checked_add(TAG_LEN))
        .ok_or_else(|| "field size overflows".to_string())?;
    let body_bytes = field_bytes
        .checked_mul(n_fields as usize)
        .and_then(|b| b.checked_add(36))
        .ok_or_else(|| "body size overflows".to_string())?;
    need(bytes.len() >= body_bytes, "declared fields")?;
    let mut pos = 36usize;
    let mut fields = Vec::with_capacity(n_fields as usize);
    for _ in 0..n_fields {
        need(bytes.len() >= pos + TAG_LEN + n as usize * 8, "field block")?;
        let tag = &bytes[pos..pos + TAG_LEN];
        let name = std::str::from_utf8(tag)
            .map_err(|_| "non-utf8 field tag".to_string())?
            .trim_end_matches('\0')
            .to_string();
        pos += TAG_LEN;
        let mut values = Vec::with_capacity(n as usize);
        for _ in 0..n {
            values.push(f64::from_le_bytes(
                bytes[pos..pos + 8].try_into().expect("checked"),
            ));
            pos += 8;
        }
        fields.push((name, values));
    }
    Ok(FldDump {
        step,
        time,
        n_nodes: n,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};
    use sem::cases::{pb146, CaseParams};
    use sem::snapshot::{SnapshotPool, SnapshotSpec};
    use std::sync::Arc;

    /// Publish the checkpoint fields (velocity + pressure + temperature if
    /// present) — the staging step that used to live inside `write`.
    fn checkpoint_snapshot(comm: &mut Comm, solver: &mut FlowSolver) -> Arc<FieldSnapshot> {
        let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
        let spec = SnapshotSpec {
            pressure: true,
            velocity: true,
            temperature: true,
            ..Default::default()
        };
        solver.publish_snapshot(comm, &spec, &pool)
    }

    #[test]
    fn dump_size_matches_field_count() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 4];
            params.order = 2;
            let mut solver = pb146(&params, 4).build(comm);
            let mut chk = FldCheckpointer::new(comm, None);
            let before_d2h = comm.stats().bytes_d2h;
            let snap = checkpoint_snapshot(comm, &mut solver);
            let staged = comm.stats().bytes_d2h - before_d2h;
            let nbytes = chk.write(comm, &snap);
            let n = solver.n_nodes() as u64;
            (
                nbytes,
                staged,
                n,
                chk.files_written(),
                comm.stats().files_written,
            )
        });
        for (nbytes, staged, n, files, fs_files) in res {
            // 4 fields (u,v,w,p) × n × 8 B + header + tags.
            assert_eq!(staged, 4 * n * 8);
            assert!(nbytes > 4 * n * 8 && nbytes < 4 * n * 8 + 200);
            assert_eq!(files, 1);
            assert_eq!(fs_files, 1);
        }
    }

    #[test]
    fn checkpoint_is_orders_of_magnitude_larger_than_an_image() {
        // The storage-economy premise at reduced scale: a raw dump of even
        // a small case beats a small PNG by a wide margin per trigger.
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [4, 4, 6];
            params.order = 3;
            let mut solver = pb146(&params, 20).build(comm);
            let mut chk = FldCheckpointer::new(comm, None);
            let snap = checkpoint_snapshot(comm, &mut solver);
            chk.write(comm, &snap)
        });
        // ~76 fluid elements × 64 nodes × 4 fields × 8 B ≈ 150 KB per
        // trigger — already ~15× a typical rendered PNG at this scale, and
        // the gap widens linearly with resolution.
        assert!(res[0] > 100_000, "dump only {} bytes", res[0]);
    }

    #[test]
    fn dump_read_back_restores_the_solver_exactly() {
        let dir = std::env::temp_dir().join(format!("fld_restart_{}", std::process::id()));
        let dir2 = dir.clone();
        let res = run_ranks(2, MachineModel::test_tiny(), move |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 4];
            params.order = 2;
            let case = pb146(&params, 4);
            let mut solver = case.build(comm);
            for _ in 0..3 {
                solver.step(comm);
            }
            let mut chk = FldCheckpointer::new(comm, Some(dir2.clone()));
            let snap = checkpoint_snapshot(comm, &mut solver);
            chk.write(comm, &snap);
            comm.barrier();
            // Read back and restore into a fresh solver.
            let path = dir2.join(format!(
                "fld_{:06}_r{}.bin",
                solver.step_index(),
                comm.rank()
            ));
            let dump = read_fld(&std::fs::read(&path).expect("dump exists")).expect("parse");
            assert_eq!(dump.step, 3);
            assert_eq!(dump.n_nodes as usize, solver.n_nodes());
            let mut fresh = case.build(comm);
            dump.restore_into(comm, &mut fresh).expect("valid dump");
            assert_eq!(fresh.step_index(), 3);
            // Restored fields are bit-exact.
            use sem::navier_stokes::FieldId;
            let a = solver.field_device(FieldId::VelZ).unwrap();
            let b = fresh.field_device(FieldId::VelZ).unwrap();
            let max_err = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            let h2d = comm.stats().bytes_h2d;
            (max_err, h2d)
        });
        for (err, h2d) in res {
            assert_eq!(err, 0.0);
            assert!(h2d > 0, "restore must pay H2D");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_fld_rejects_garbage_and_truncation() {
        assert!(read_fld(b"nonsense").is_err());
        assert!(read_fld(&[]).is_err());
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 2];
            params.order = 1;
            let mut solver = pb146(&params, 2).build(comm);
            let dir = std::env::temp_dir().join(format!("fld_trunc_{}", std::process::id()));
            let mut chk = FldCheckpointer::new(comm, Some(dir.clone()));
            let snap = checkpoint_snapshot(comm, &mut solver);
            chk.write(comm, &snap);
            let path = dir.join("fld_000000_r0.bin");
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_dir_all(&dir).ok();
            bytes
        });
        let bytes = res[0].clone();
        assert!(read_fld(&bytes).is_ok());
        for cut in [10, 40, bytes.len() - 4] {
            assert!(read_fld(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut corrupted = bytes.clone();
        corrupted[0] ^= 0xFF;
        assert!(read_fld(&corrupted).is_err());
    }

    #[test]
    fn long_field_names_truncate_instead_of_panicking() {
        use sem::snapshot::SnapshotField;
        let pool = SnapshotPool::new(memtrack::Accountant::new("t"));
        let fields = vec![
            SnapshotField::new("a_very_long_field_name", 1, vec![1.0, 2.0]),
            SnapshotField::new("pressure", 1, vec![3.0, 4.0]),
        ];
        let snap = FieldSnapshot::new(7, 0.5, 2, fields, &pool);
        let encoded = encode_fld(&snap);
        assert_eq!(encoded.truncated_tags, vec!["a_very_long_field_name"]);
        let dump = read_fld(&encoded.bytes).expect("parse");
        assert_eq!(dump.step, 7);
        assert_eq!(dump.fields[0].0, "a_very_long_", "12-byte tag prefix");
        assert_eq!(dump.field("pressure"), Some(&[3.0, 4.0][..]));
    }

    #[test]
    fn read_fld_rejects_oversized_declared_header_without_allocating() {
        // A header claiming u32::MAX fields over u64::MAX nodes must fail
        // fast instead of attempting a giant allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FLD_MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes()); // step
        bytes.extend_from_slice(&0f64.to_le_bytes()); // time
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // n_nodes
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // n_fields
        assert!(read_fld(&bytes).is_err());
        // Same with values that multiply past usize but look plausible.
        bytes.truncate(24);
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        assert!(read_fld(&bytes).is_err());
    }

    #[test]
    fn restore_into_reports_missing_and_mis_sized_fields() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 2];
            params.order = 1;
            let mut solver = pb146(&params, 2).build(comm);
            let n = solver.n_nodes();
            let mut dump = FldDump {
                step: 1,
                time: 0.0,
                n_nodes: n as u64,
                fields: vec![
                    ("velx".into(), vec![0.0; n]),
                    ("vely".into(), vec![0.0; n]),
                    ("velz".into(), vec![0.0; n]),
                ],
            };
            assert_eq!(
                dump.restore_into(comm, &mut solver),
                Err(RestoreError::MissingField("pressure".into()))
            );
            dump.fields.push(("pressure".into(), vec![0.0; n / 2]));
            assert!(matches!(
                dump.restore_into(comm, &mut solver),
                Err(RestoreError::WrongSize { ref field, .. }) if field == "pressure"
            ));
            *dump.fields.last_mut().unwrap() = ("pressure".into(), vec![0.0; n]);
            dump.restore_into(comm, &mut solver).expect("now complete");
            assert_eq!(solver.step_index(), 1);
        });
    }

    #[test]
    fn real_dump_file_is_written_with_magic() {
        let dir = std::env::temp_dir().join(format!("fld_test_{}", std::process::id()));
        let dir2 = dir.clone();
        run_ranks(1, MachineModel::test_tiny(), move |comm| {
            let mut params = CaseParams::pb146_default();
            params.elems = [2, 2, 2];
            params.order = 1;
            let mut solver = pb146(&params, 2).build(comm);
            let mut chk = FldCheckpointer::new(comm, Some(dir2.clone()));
            let snap = checkpoint_snapshot(comm, &mut solver);
            chk.write(comm, &snap);
        });
        let bytes = std::fs::read(dir.join("fld_000000_r0.bin")).unwrap();
        assert_eq!(&bytes[0..8], FLD_MAGIC);
        std::fs::remove_dir_all(&dir).ok();
    }
}
