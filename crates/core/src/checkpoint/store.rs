//! Crash-consistent checkpoint generations.
//!
//! A *generation* is one coordinated dump of every rank at the same step:
//! per-rank `gen_{step:06}_r{rank}.fld` files plus a rank-0
//! `MANIFEST_{step:06}` recording each file's length and CRC32. Writes
//! are atomic (temp file → fsync → rename) and the manifest is written
//! *last*, after a gather collective, so a crash at any instant leaves
//! either a complete, self-validating generation or a torn one that
//! [`scan_for_restore`] detects and quarantines instead of restoring.

use commsim::{Comm, EventKind, FaultPlan};
use sem::snapshot::FieldSnapshot;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use super::{encode_fld, read_fld, FldDump, TAG_LEN};

/// First line of a manifest file.
const MANIFEST_MAGIC: &str = "NEKMANIFEST1";

/// Where and how often to cut checkpoint generations, and how many
/// complete generations to retain on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Directory holding generation files, manifests, and `quarantine/`.
    pub dir: PathBuf,
    /// Cut a generation every `every` steps (0 disables cadence; the
    /// caller can still force writes).
    pub every: u64,
    /// Keep the newest `retain` complete generations; older ones are
    /// garbage-collected after each successful manifest write.
    pub retain: usize,
}

impl CheckpointSpec {
    /// Spec with the default retention of 4 generations.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        Self {
            dir: dir.into(),
            every,
            retain: 4,
        }
    }

    /// True when the cadence says step `step` should cut a generation.
    pub fn due(&self, step: u64) -> bool {
        self.every > 0 && step > 0 && step.is_multiple_of(self.every)
    }
}

/// Per-rank handle writing crash-consistent generations under a
/// [`CheckpointSpec`]. Every rank in the world must call
/// [`Self::write_generation`] collectively (it contains a gather).
#[derive(Debug)]
pub struct CheckpointStore {
    spec: CheckpointSpec,
    generations_written: u64,
    bytes_written: u64,
}

impl CheckpointStore {
    /// A store for this rank. The directory is created lazily on the
    /// first write.
    pub fn new(spec: CheckpointSpec) -> Self {
        Self {
            spec,
            generations_written: 0,
            bytes_written: 0,
        }
    }

    /// The spec this store writes under.
    pub fn spec(&self) -> &CheckpointSpec {
        &self.spec
    }

    /// Complete generations this rank has participated in.
    pub fn generations_written(&self) -> u64 {
        self.generations_written
    }

    /// Bytes this rank has written (rank files only, not manifests).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Collectively write one generation from this rank's snapshot.
    ///
    /// Order of operations is the crash-consistency argument:
    /// 1. every rank writes its own file atomically (tmp → fsync → rename);
    /// 2. scheduled on-disk corruption (from `faults`) fires *after* the
    ///    rename and after the CRC was computed, modelling bit rot that
    ///    the manifest must catch at restore time;
    /// 3. a gather of `(len, crc)` synchronizes all ranks — an implicit
    ///    barrier proving every rank file exists;
    /// 4. rank 0 writes the manifest atomically, then garbage-collects
    ///    generations beyond `retain`.
    ///
    /// A crash before step 4 leaves rank files with no manifest: a *torn*
    /// generation that [`scan_for_restore`] quarantines.
    ///
    /// Returns the bytes this rank wrote.
    pub fn write_generation(
        &mut self,
        comm: &mut Comm,
        snap: &FieldSnapshot,
        faults: &FaultPlan,
    ) -> u64 {
        let step = snap.version as u64;
        let rank = comm.rank();
        let encoded = encode_fld(snap);
        for name in &encoded.truncated_tags {
            comm.telemetry().counter("checkpoint/tag_truncated").inc();
            comm.telemetry_event(
                EventKind::CheckpointWrite,
                Some(step),
                format!("warning: field tag '{name}' truncated to {TAG_LEN} bytes"),
            );
        }
        let buf = encoded.bytes;
        let nbytes = buf.len() as u64;
        let crc = transport::crc32(&buf);

        // Cost model: serialize + parallel file-system write.
        comm.compute_host(nbytes as f64, nbytes as f64 * 2.0);
        comm.fs_write(nbytes, comm.size());

        let final_path = self.spec.dir.join(rank_file_name(step, rank));
        if let Err(err) = atomic_write(&final_path, &buf) {
            comm.telemetry_event(
                EventKind::CheckpointWrite,
                Some(step),
                format!("warning: rank file write failed: {err}"),
            );
        }

        // Scheduled bit rot: flip bytes on disk *after* the atomic rename,
        // so the file exists, the manifest records the pristine CRC, and
        // only restore-time validation can notice.
        if faults.corrupts_checkpoint(rank, step) {
            if let Ok(mut on_disk) = std::fs::read(&final_path) {
                faults.corrupt_payload(&mut on_disk, rank, step, 0);
                let _ = std::fs::write(&final_path, &on_disk);
            }
            comm.telemetry()
                .counter("checkpoint/disk_corruptions")
                .inc();
            comm.telemetry_event(
                EventKind::FaultInjected,
                Some(step),
                format!("checkpoint bytes corrupted on disk (rank {rank})"),
            );
        }

        // Gather (len, crc) — doubles as the all-files-exist barrier.
        let entries = comm.gather(0, (nbytes, crc), 12);
        if let Some(entries) = entries {
            match write_manifest(&self.spec.dir, step, snap.time, &entries) {
                Ok(manifest_bytes) => {
                    comm.fs_write(manifest_bytes, 1);
                    gc_generations(&self.spec.dir, self.spec.retain, comm);
                }
                Err(err) => {
                    comm.telemetry_event(
                        EventKind::CheckpointWrite,
                        Some(step),
                        format!("warning: manifest write failed: {err}"),
                    );
                }
            }
        }

        self.generations_written += 1;
        self.bytes_written += nbytes;
        comm.telemetry()
            .counter("checkpoint/generation_bytes")
            .add(nbytes);
        comm.telemetry().counter("checkpoint/generations").inc();
        comm.telemetry_event(
            EventKind::CheckpointWrite,
            Some(step),
            format!("generation {step}: {nbytes} B rank file"),
        );
        nbytes
    }
}

/// One generation that failed validation and was moved to
/// `dir/quarantine/gen_{step:06}/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedGeneration {
    /// The generation's step number.
    pub step: u64,
    /// First validation failure observed.
    pub reason: String,
}

/// The newest complete, CRC-valid generation, parsed and ready to
/// restore: `dumps[rank]` is rank `rank`'s field dump.
#[derive(Debug, Clone)]
pub struct RestoredGeneration {
    /// Step the generation was cut at.
    pub step: u64,
    /// Simulation time recorded in the manifest.
    pub time: f64,
    /// Per-rank dumps, indexed by rank.
    pub dumps: Vec<FldDump>,
}

/// Result of auditing a checkpoint directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryScan {
    /// The newest valid generation, if any survived validation.
    pub restored: Option<RestoredGeneration>,
    /// Every generation that failed validation this scan (now moved
    /// under `quarantine/`), newest first.
    pub quarantined: Vec<QuarantinedGeneration>,
    /// Structurally valid generations written by a different world size,
    /// newest first. Not restorable here, but not corrupt either — left
    /// on disk untouched.
    pub foreign: Vec<QuarantinedGeneration>,
}

fn rank_file_name(step: u64, rank: usize) -> String {
    format!("gen_{step:06}_r{rank}.fld")
}

fn manifest_name(step: u64) -> String {
    format!("MANIFEST_{step:06}")
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the final name.
fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Serialize and atomically write the generation manifest. Returns the
/// manifest's size in bytes.
fn write_manifest(
    dir: &Path,
    step: u64,
    time: f64,
    entries: &[(u64, u32)],
) -> std::io::Result<u64> {
    let mut body = String::new();
    body.push_str(MANIFEST_MAGIC);
    body.push('\n');
    body.push_str(&format!("step {step}\n"));
    body.push_str(&format!("time_bits {:016x}\n", time.to_bits()));
    body.push_str(&format!("ranks {}\n", entries.len()));
    for (rank, (len, crc)) in entries.iter().enumerate() {
        body.push_str(&format!("rank {rank} len {len} crc {crc:08x}\n"));
    }
    let body_crc = transport::crc32(body.as_bytes());
    body.push_str(&format!("body_crc {body_crc:08x}\n"));
    atomic_write(&dir.join(manifest_name(step)), body.as_bytes())?;
    Ok(body.len() as u64)
}

struct ManifestInfo {
    step: u64,
    time: f64,
    entries: Vec<(u64, u32)>,
}

/// Parse and self-validate a manifest (magic, field syntax, trailing
/// body CRC). Structural problems come back as `Err(reason)`.
fn parse_manifest(text: &str) -> Result<ManifestInfo, String> {
    let trimmed = text.strip_suffix('\n').unwrap_or(text);
    let (head, last) = trimmed
        .rsplit_once('\n')
        .ok_or_else(|| "manifest too short".to_string())?;
    let declared = last
        .strip_prefix("body_crc ")
        .ok_or_else(|| "manifest missing body_crc".to_string())?;
    let declared =
        u32::from_str_radix(declared, 16).map_err(|_| "bad body_crc value".to_string())?;
    // The CRC covers everything up to and including the newline before
    // the body_crc line — exactly what `write_manifest` hashed.
    let hashed_len = head.len() + 1;
    let actual = transport::crc32(&text.as_bytes()[..hashed_len]);
    if actual != declared {
        return Err(format!(
            "manifest body CRC mismatch (declared {declared:08x}, actual {actual:08x})"
        ));
    }
    let mut lines = head.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err("bad manifest magic".to_string());
    }
    let field = |line: Option<&str>, key: &str| -> Result<String, String> {
        line.and_then(|l| l.strip_prefix(key))
            .map(|v| v.trim().to_string())
            .ok_or_else(|| format!("manifest missing '{key}'"))
    };
    let step: u64 = field(lines.next(), "step ")?
        .parse()
        .map_err(|_| "bad step".to_string())?;
    let time_bits = u64::from_str_radix(&field(lines.next(), "time_bits ")?, 16)
        .map_err(|_| "bad time_bits".to_string())?;
    let ranks: usize = field(lines.next(), "ranks ")?
        .parse()
        .map_err(|_| "bad ranks".to_string())?;
    let mut entries = Vec::with_capacity(ranks);
    for expect in 0..ranks {
        let line = lines
            .next()
            .ok_or_else(|| format!("manifest missing rank {expect} entry"))?;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 6 || parts[0] != "rank" || parts[2] != "len" || parts[4] != "crc" {
            return Err(format!("malformed rank entry '{line}'"));
        }
        let rank: usize = parts[1].parse().map_err(|_| "bad rank".to_string())?;
        if rank != expect {
            return Err(format!("rank entries out of order at {rank}"));
        }
        let len: u64 = parts[3].parse().map_err(|_| "bad len".to_string())?;
        let crc = u32::from_str_radix(parts[5], 16).map_err(|_| "bad crc".to_string())?;
        entries.push((len, crc));
    }
    Ok(ManifestInfo {
        step,
        time: f64::from_bits(time_bits),
        entries,
    })
}

/// Audit every generation in `dir` and return the newest valid one.
///
/// Unlike a stop-at-first-valid scan, this validates **all** retained
/// generations: every torn generation (rank files without a manifest),
/// manifest that fails its own CRC, missing/short/bit-rotted rank file,
/// unparseable dump, or rank-count mismatch against `ranks` is moved to
/// `dir/quarantine/gen_{step:06}/` and reported — so a later fallback
/// can never silently land on a corrupt generation either.
///
/// Pure file-system work: callers (the supervisor) emit the telemetry.
pub fn scan_for_restore(dir: &Path, ranks: usize) -> RecoveryScan {
    let mut scan = RecoveryScan::default();
    let Ok(read) = std::fs::read_dir(dir) else {
        return scan;
    };
    // Collect every step mentioned by either a manifest or a rank file.
    let mut steps: Vec<u64> = Vec::new();
    for entry in read.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let step = name
            .strip_prefix("MANIFEST_")
            .and_then(|s| s.parse().ok())
            .or_else(|| {
                name.strip_prefix("gen_")
                    .and_then(|s| s.split('_').next())
                    .and_then(|s| s.parse().ok())
            });
        if let Some(step) = step {
            if !steps.contains(&step) {
                steps.push(step);
            }
        }
    }
    steps.sort_unstable();
    steps.reverse(); // newest first

    for step in steps {
        match validate_generation(dir, step, ranks) {
            Ok(generation) => {
                if scan.restored.is_none() {
                    scan.restored = Some(generation);
                }
            }
            Err(GenerationProblem::Corrupt(reason)) => {
                quarantine_generation(dir, step, ranks);
                scan.quarantined
                    .push(QuarantinedGeneration { step, reason });
            }
            Err(GenerationProblem::Foreign(reason)) => {
                scan.foreign.push(QuarantinedGeneration { step, reason });
            }
        }
    }
    scan
}

/// Why a generation cannot be restored.
enum GenerationProblem {
    /// Torn or bit-rotted: quarantine it.
    Corrupt(String),
    /// Healthy, but written by a different world size: leave it alone.
    Foreign(String),
}

impl From<String> for GenerationProblem {
    fn from(reason: String) -> Self {
        Self::Corrupt(reason)
    }
}

/// Validate one generation end-to-end; on success return it fully parsed.
fn validate_generation(
    dir: &Path,
    step: u64,
    ranks: usize,
) -> Result<RestoredGeneration, GenerationProblem> {
    let corrupt = GenerationProblem::Corrupt;
    let manifest_path = dir.join(manifest_name(step));
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|_| corrupt("torn generation: rank files without a manifest".to_string()))?;
    let info = parse_manifest(&text).map_err(corrupt)?;
    if info.step != step {
        return Err(corrupt(format!(
            "manifest step {} does not match file name step {step}",
            info.step
        )));
    }
    if info.entries.len() != ranks {
        // The manifest passed its own CRC, so this generation is healthy —
        // it just belongs to a run with a different world size.
        return Err(GenerationProblem::Foreign(format!(
            "manifest covers {} ranks, world has {ranks}",
            info.entries.len()
        )));
    }
    let mut dumps = Vec::with_capacity(ranks);
    for (rank, (len, crc)) in info.entries.iter().enumerate() {
        let path = dir.join(rank_file_name(step, rank));
        let bytes = std::fs::read(&path).map_err(|_| format!("rank {rank} file missing"))?;
        if bytes.len() as u64 != *len {
            return Err(format!(
                "rank {rank} file is {} B, manifest says {len} B",
                bytes.len()
            )
            .into());
        }
        let actual = transport::crc32(&bytes);
        if actual != *crc {
            return Err(format!(
                "rank {rank} CRC mismatch (manifest {crc:08x}, disk {actual:08x})"
            )
            .into());
        }
        let dump = read_fld(&bytes).map_err(|e| format!("rank {rank} dump unparseable: {e}"))?;
        if dump.step != step {
            return Err(format!(
                "rank {rank} dump is step {}, manifest says {step}",
                dump.step
            )
            .into());
        }
        dumps.push(dump);
    }
    Ok(RestoredGeneration {
        step,
        time: info.time,
        dumps,
    })
}

/// Move a failed generation's files under `dir/quarantine/gen_{step:06}/`
/// so no later scan can restore from it. Best-effort: an unmovable file
/// is left behind, but the scan already refused to restore it.
pub(crate) fn quarantine_generation(dir: &Path, step: u64, ranks: usize) {
    let qdir = dir.join("quarantine").join(format!("gen_{step:06}"));
    let _ = std::fs::create_dir_all(&qdir);
    let mut names: Vec<String> = (0..ranks).map(|r| rank_file_name(step, r)).collect();
    names.push(manifest_name(step));
    for name in names {
        let from = dir.join(&name);
        if from.exists() {
            let _ = std::fs::rename(&from, qdir.join(&name));
        }
    }
}

/// Rank-0 retention: delete complete generations beyond the newest
/// `retain`, manifest first so an interrupted GC leaves a torn (and
/// therefore quarantinable) remainder rather than a fake-complete one.
fn gc_generations(dir: &Path, retain: usize, comm: &mut Comm) {
    let Ok(read) = std::fs::read_dir(dir) else {
        return;
    };
    let mut steps: Vec<u64> = read
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_string_lossy()
                .strip_prefix("MANIFEST_")
                .and_then(|s| s.parse().ok())
        })
        .collect();
    steps.sort_unstable();
    if steps.len() <= retain.max(1) {
        return;
    }
    let doomed = steps.len() - retain.max(1);
    for &step in &steps[..doomed] {
        let _ = std::fs::remove_file(dir.join(manifest_name(step)));
        for rank in 0..comm.size() {
            let _ = std::fs::remove_file(dir.join(rank_file_name(step, rank)));
        }
        comm.telemetry()
            .counter("checkpoint/generations_gced")
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, CheckpointCorruption, MachineModel};
    use sem::snapshot::{SnapshotField, SnapshotPool};
    use std::sync::Arc;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ckpt_{tag}_{}", std::process::id()))
    }

    /// A synthetic per-rank snapshot: rank-distinct velocity + pressure.
    fn snapshot(step: u64, rank: usize) -> FieldSnapshot {
        let n = 6usize;
        let pool = SnapshotPool::new(memtrack::Accountant::new("t"));
        let base = (rank as f64 + 1.0) * 100.0 + step as f64;
        let velocity: Vec<f64> = (0..3 * n).map(|i| base + i as f64).collect();
        let pressure: Vec<f64> = (0..n).map(|i| base - i as f64).collect();
        let fields = vec![
            SnapshotField::new("velocity", 3, velocity),
            SnapshotField::new("pressure", 1, pressure),
        ];
        FieldSnapshot::new(step as usize, step as f64 * 0.25, n, fields, &pool)
    }

    fn write_gens(dir: &Path, steps: &[u64], ranks: usize, faults: FaultPlan) {
        let dir = dir.to_path_buf();
        let steps = steps.to_vec();
        let faults = Arc::new(faults);
        run_ranks(ranks, MachineModel::test_tiny(), move |comm| {
            let mut store = CheckpointStore::new(CheckpointSpec::new(dir.clone(), 2));
            for &s in &steps {
                let snap = snapshot(s, comm.rank());
                store.write_generation(comm, &snap, &faults);
            }
            assert_eq!(store.generations_written(), steps.len() as u64);
        });
    }

    #[test]
    fn roundtrip_restores_newest_generation() {
        let dir = tmp("roundtrip");
        write_gens(&dir, &[2, 4], 2, FaultPlan::none());
        let scan = scan_for_restore(&dir, 2);
        assert!(scan.quarantined.is_empty(), "{:?}", scan.quarantined);
        let gen = scan.restored.expect("newest generation valid");
        assert_eq!(gen.step, 4);
        assert_eq!(gen.time, 1.0);
        assert_eq!(gen.dumps.len(), 2);
        // Per-rank payloads really are rank-distinct and step-stamped.
        for (rank, dump) in gen.dumps.iter().enumerate() {
            assert_eq!(dump.step, 4);
            let base = (rank as f64 + 1.0) * 100.0 + 4.0;
            assert_eq!(dump.field("velx").unwrap()[0], base);
            assert_eq!(dump.field("pressure").unwrap()[0], base);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_generation_is_quarantined_and_older_one_restores() {
        let dir = tmp("torn");
        write_gens(&dir, &[2, 4], 2, FaultPlan::none());
        // Simulate a crash between the rank files and the manifest.
        std::fs::remove_file(dir.join(manifest_name(4))).unwrap();
        let scan = scan_for_restore(&dir, 2);
        assert_eq!(scan.quarantined.len(), 1);
        assert_eq!(scan.quarantined[0].step, 4);
        assert!(scan.quarantined[0].reason.contains("torn"));
        assert_eq!(scan.restored.expect("older gen still valid").step, 2);
        // The torn files moved under quarantine/ and are gone from the top level.
        assert!(!dir.join(rank_file_name(4, 0)).exists());
        assert!(dir
            .join("quarantine/gen_000004")
            .join(rank_file_name(4, 0))
            .exists());
        // A second scan no longer sees the quarantined generation at all.
        let again = scan_for_restore(&dir, 2);
        assert!(again.quarantined.is_empty());
        assert_eq!(again.restored.unwrap().step, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scheduled_disk_corruption_fails_crc_and_quarantines() {
        let dir = tmp("bitrot");
        let faults = FaultPlan {
            disk_corruptions: vec![CheckpointCorruption {
                rank: 1,
                at_step: 4,
            }],
            ..FaultPlan::none()
        };
        write_gens(&dir, &[2, 4], 2, faults);
        let scan = scan_for_restore(&dir, 2);
        assert_eq!(scan.quarantined.len(), 1);
        assert_eq!(scan.quarantined[0].step, 4);
        assert!(
            scan.quarantined[0].reason.contains("CRC mismatch"),
            "reason: {}",
            scan.quarantined[0].reason
        );
        assert_eq!(scan.restored.expect("fall back").step, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_manifest_body_is_rejected() {
        let dir = tmp("tamper");
        write_gens(&dir, &[2], 1, FaultPlan::none());
        let path = dir.join(manifest_name(2));
        let text = std::fs::read_to_string(&path).unwrap();
        // Inflate rank 0's declared length without fixing the body CRC.
        let tampered = text.replace("len ", "len 9");
        std::fs::write(&path, tampered).unwrap();
        let scan = scan_for_restore(&dir, 1);
        assert_eq!(scan.quarantined.len(), 1);
        assert!(scan.quarantined[0].reason.contains("body CRC"));
        assert!(scan.restored.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_rank_count_is_foreign_not_quarantined() {
        let dir = tmp("ranks");
        write_gens(&dir, &[2], 2, FaultPlan::none());
        let scan = scan_for_restore(&dir, 4);
        assert!(scan.restored.is_none());
        assert!(scan.quarantined.is_empty(), "healthy files stay put");
        assert_eq!(scan.foreign.len(), 1);
        assert!(scan.foreign[0].reason.contains("ranks"));
        // The generation is untouched on disk: a scan by the right world
        // size still restores it.
        let rescan = scan_for_restore(&dir, 2);
        assert_eq!(rescan.restored.expect("still restorable").step, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_keeps_only_the_newest_retained_generations() {
        let dir = tmp("gc");
        let dir2 = dir.clone();
        run_ranks(2, MachineModel::test_tiny(), move |comm| {
            let mut spec = CheckpointSpec::new(dir2.clone(), 2);
            spec.retain = 2;
            let mut store = CheckpointStore::new(spec);
            for s in [2u64, 4, 6, 8] {
                let snap = snapshot(s, comm.rank());
                store.write_generation(comm, &snap, &FaultPlan::none());
            }
        });
        let mut manifests: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("MANIFEST_"))
            .collect();
        manifests.sort();
        assert_eq!(manifests, vec![manifest_name(6), manifest_name(8)]);
        assert!(
            !dir.join(rank_file_name(2, 0)).exists(),
            "old gen files gone"
        );
        assert_eq!(scan_for_restore(&dir, 2).restored.unwrap().step, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_or_missing_dir_scans_clean() {
        let scan = scan_for_restore(Path::new("/nonexistent/ckpt_dir"), 2);
        assert!(scan.restored.is_none());
        assert!(scan.quarantined.is_empty());
    }
}
