//! The `nek_sensei::DataAdaptor` of the paper (Listing 2).
//!
//! Presents one rank's SEM solver state as a VTK-model multiblock. The
//! high-order element is exported the way Nek tools export to VTK: each
//! spectral element becomes `N³` linear hexahedra over its `(N+1)³` GLL
//! nodes, and nodal fields map 1:1 onto the grid points. Because the
//! solver's fields are device-resident, `add_array` stages them through
//! [`sem::navier_stokes::FlowSolver::stage_to_host`], paying the D2H copy
//! the paper identifies as the price of coupling a GPU code to VTK.

use commsim::{Comm, ReduceOp};
use insitu::DataAdaptor;
use memtrack::{Accountant, Charge};
use meshdata::{
    ArrayInfo, CellType, Centering, DataArray, MeshMetadata, MultiBlock, UnstructuredGrid,
};
use sem::navier_stokes::{FieldId, FlowSolver};

/// The mesh name this adaptor publishes (NekRS has a single fluid mesh).
pub const MESH_NAME: &str = "mesh";

/// Adapts a [`FlowSolver`] to the SENSEI-style [`DataAdaptor`] contract.
pub struct NekDataAdaptor<'a> {
    solver: &'a mut FlowSolver,
    rank: usize,
    nranks: usize,
    vtk_accountant: Accountant,
    charges: Vec<Charge>,
}

impl<'a> NekDataAdaptor<'a> {
    /// Wrap the solver for this rank; host-side VTK copies are charged to
    /// the rank's `vtk` accountant.
    pub fn new(comm: &Comm, solver: &'a mut FlowSolver) -> Self {
        Self {
            solver,
            rank: comm.rank(),
            nranks: comm.size(),
            vtk_accountant: comm.accountant("vtk"),
            charges: Vec::new(),
        }
    }

    /// Names of the arrays this solver can provide.
    pub fn available_arrays(&self) -> Vec<ArrayInfo> {
        let mut arrays = vec![
            ArrayInfo {
                name: "pressure".into(),
                centering: Centering::Point,
                components: 1,
            },
            ArrayInfo {
                name: "velocity".into(),
                centering: Centering::Point,
                components: 3,
            },
        ];
        if self.solver.field_device(FieldId::Temperature).is_some() {
            arrays.push(ArrayInfo {
                name: "temperature".into(),
                centering: Centering::Point,
                components: 1,
            });
        }
        // Derived fields, computed on demand on the device (as NekRS's
        // userchk-style post-processing kernels do) and then staged.
        arrays.push(ArrayInfo {
            name: "vorticity".into(),
            centering: Centering::Point,
            components: 3,
        });
        arrays.push(ArrayInfo {
            name: "q_criterion".into(),
            centering: Centering::Point,
            components: 1,
        });
        arrays
    }

    fn build_geometry(&mut self, comm: &mut Comm) -> UnstructuredGrid {
        let mesh = &self.solver.mesh;
        let l = mesh.layout();
        let n = mesh.spec.order;
        let np = l.np;
        let mut g = UnstructuredGrid::new();
        g.points.reserve(l.n_nodes());
        for le in 0..mesh.elems.len() {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        g.add_point(mesh.node_coords(le, i, j, k));
                    }
                }
            }
        }
        for le in 0..mesh.elems.len() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let id = |ii: usize, jj: usize, kk: usize| {
                            l.idx(le, i + ii, j + jj, k + kk) as i64
                        };
                        g.add_cell(
                            CellType::Hexahedron,
                            &[
                                id(0, 0, 0),
                                id(1, 0, 0),
                                id(1, 1, 0),
                                id(0, 1, 0),
                                id(0, 0, 1),
                                id(1, 0, 1),
                                id(1, 1, 1),
                                id(0, 1, 1),
                            ],
                        );
                    }
                }
            }
        }
        // Geometry assembly is a host-side sweep over points + cells.
        let bytes = g.heap_bytes();
        comm.compute_host(bytes as f64 * 0.5, bytes as f64);
        self.charges.push(self.vtk_accountant.charge(bytes));
        g
    }

    fn stage(&mut self, comm: &mut Comm, id: FieldId) -> insitu::Result<Vec<f64>> {
        self.solver
            .stage_to_host(comm, id)
            .ok_or_else(|| insitu::Error::NoSuchData(format!("{id:?}")))
    }
}

impl DataAdaptor for NekDataAdaptor<'_> {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_name(&self, idx: usize) -> &str {
        assert_eq!(idx, 0, "NekRS provides one mesh");
        MESH_NAME
    }

    fn mesh_metadata(&mut self, comm: &mut Comm, mesh: &str) -> insitu::Result<MeshMetadata> {
        check_mesh(mesh)?;
        let l = self.solver.mesh.layout();
        let n = self.solver.mesh.spec.order;
        let mut counts = [
            l.n_nodes() as f64,
            (self.solver.mesh.elems.len() * n * n * n) as f64,
        ];
        comm.allreduce_vec(&mut counts, ReduceOp::Sum);
        let lengths = self.solver.mesh.spec.lengths;
        Ok(MeshMetadata {
            mesh_name: MESH_NAME.into(),
            n_blocks: self.nranks,
            global_points: counts[0] as u64,
            global_cells: counts[1] as u64,
            arrays: self.available_arrays(),
            bounds: Some([0.0, lengths[0], 0.0, lengths[1], 0.0, lengths[2]]),
            time: self.solver.time(),
            time_step: self.solver.step_index() as u64,
        })
    }

    fn mesh(&mut self, comm: &mut Comm, mesh: &str) -> insitu::Result<MultiBlock> {
        check_mesh(mesh)?;
        let g = self.build_geometry(comm);
        Ok(MultiBlock::local(self.rank, self.nranks, g))
    }

    fn add_array(
        &mut self,
        comm: &mut Comm,
        mb: &mut MultiBlock,
        mesh: &str,
        centering: Centering,
        array: &str,
    ) -> insitu::Result<()> {
        check_mesh(mesh)?;
        if centering != Centering::Point {
            return Err(insitu::Error::NoSuchData(format!(
                "cell array '{array}' (solver fields are point-centered)"
            )));
        }
        let data = match array {
            "pressure" => DataArray::scalars_f64("pressure", self.stage(comm, FieldId::Pressure)?),
            "temperature" => {
                DataArray::scalars_f64("temperature", self.stage(comm, FieldId::Temperature)?)
            }
            "velocity" => {
                let u = self.stage(comm, FieldId::VelX)?;
                let v = self.stage(comm, FieldId::VelY)?;
                let w = self.stage(comm, FieldId::VelZ)?;
                DataArray::vectors_f64("velocity", interleave3(&u, &v, &w))
            }
            "vorticity" => {
                let [wx, wy, wz] = self.solver.vorticity_host(comm);
                DataArray::vectors_f64("vorticity", interleave3(&wx, &wy, &wz))
            }
            "q_criterion" => {
                DataArray::scalars_f64("q_criterion", self.solver.q_criterion_host(comm))
            }
            other => return Err(insitu::Error::NoSuchData(format!("array '{other}'"))),
        };
        self.charges.push(self.vtk_accountant.charge(data.heap_bytes()));
        let Some(block) = mb.blocks[self.rank].as_mut() else {
            return Err(insitu::Error::NoSuchData("local block missing".into()));
        };
        block.add_point_data(data)?;
        Ok(())
    }

    fn time(&self) -> f64 {
        self.solver.time()
    }

    fn time_step(&self) -> u64 {
        self.solver.step_index() as u64
    }

    fn release_data(&mut self) {
        self.charges.clear();
    }
}

fn interleave3(a: &[f64], b: &[f64], c: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() * 3);
    for i in 0..a.len() {
        out.push(a[i]);
        out.push(b[i]);
        out.push(c[i]);
    }
    out
}

fn check_mesh(mesh: &str) -> insitu::Result<()> {
    if mesh == MESH_NAME {
        Ok(())
    } else {
        Err(insitu::Error::NoSuchData(format!("mesh '{mesh}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};
    use sem::cases::{pb146, rbc, CaseParams};

    fn small_pb146_solver(comm: &mut Comm) -> FlowSolver {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        pb146(&params, 4).build(comm)
    }

    #[test]
    fn geometry_export_subdivides_elements() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            let mb = da.mesh(comm, MESH_NAME).unwrap();
            let (idx, g) = mb.local_blocks().next().unwrap();
            g.validate().unwrap();
            let n_elems = solver.mesh.elems.len();
            (
                idx,
                g.n_points() == n_elems * 27, // (N+1)³ with N=2
                g.n_cells() == n_elems * 8,   // N³
            )
        });
        assert_eq!(res[0], (0, true, true));
        assert_eq!(res[1], (1, true, true));
    }

    #[test]
    fn add_array_stages_d2h_and_charges_vtk_memory() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let n = solver.n_nodes() as u64;
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            let d2h_before = comm.stats().bytes_d2h;
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "velocity")
                .unwrap();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "pressure")
                .unwrap();
            let staged = comm.stats().bytes_d2h - d2h_before;
            let vtk_mem = comm.accountant("vtk").current();
            da.release_data();
            let after_release = comm.accountant("vtk").current();
            (staged, n, vtk_mem, after_release)
        });
        let (staged, n, vtk_mem, after) = res[0];
        // velocity = 3 fields + pressure = 1 field, 8 B per node each.
        assert_eq!(staged, 4 * n * 8);
        assert!(vtk_mem > 4 * n * 8, "geometry + arrays charged");
        assert_eq!(after, 0, "release_data frees the VTK copies");
    }

    #[test]
    fn metadata_counts_are_global_and_arrays_depend_on_case() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            let md = da.mesh_metadata(comm, MESH_NAME).unwrap();
            let has_temp = md.array("temperature").is_some();
            (md.global_cells, md.n_blocks, has_temp)
        });
        // pb146 has no temperature; cell count = global fluid elems × 8.
        for (_cells, blocks, has_temp) in &res {
            assert_eq!(*blocks, 2);
            assert!(!has_temp);
        }
        assert!(res[0].0 > 0);

        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::rbc_default();
            params.elems = [2, 2, 2];
            params.order = 2;
            let mut solver = rbc(&params, 1e4, 0.7).build(comm);
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            let md = da.mesh_metadata(comm, MESH_NAME).unwrap();
            md.array("temperature").is_some()
        });
        assert!(res[0], "RBC case must expose temperature");
    }

    #[test]
    fn unknown_requests_error() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            assert!(da.mesh(comm, "other").is_err());
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Point, "enstrophy")
                .is_err());
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Cell, "pressure")
                .is_err());
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Point, "temperature")
                .is_err());
        });
    }

    #[test]
    fn derived_fields_are_exported_on_demand() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            for _ in 0..3 {
                solver.step(comm);
            }
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            let md = da.mesh_metadata(comm, MESH_NAME).unwrap();
            assert!(md.array("vorticity").is_some());
            assert!(md.array("q_criterion").is_some());
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            let d2h_before = comm.stats().bytes_d2h;
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "vorticity")
                .unwrap();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "q_criterion")
                .unwrap();
            let (_, g) = mb.local_blocks().next().unwrap();
            let w = g.find_array("vorticity", Centering::Point).unwrap();
            let q = g.find_array("q_criterion", Centering::Point).unwrap();
            let finite = (0..w.len()).all(|i| {
                w.get(i, 0).is_finite() && w.get(i, 1).is_finite() && w.get(i, 2).is_finite()
            }) && (0..q.len()).all(|i| q.get(i, 0).is_finite());
            (
                w.components,
                q.components,
                finite,
                comm.stats().bytes_d2h > d2h_before,
            )
        });
        for (wc, qc, finite, staged) in res {
            assert_eq!(wc, 3);
            assert_eq!(qc, 1);
            assert!(finite);
            assert!(staged, "derived fields must pay D2H like primary ones");
        }
    }

    #[test]
    fn exported_field_values_match_solver_state() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let mut da = NekDataAdaptor::new(comm, &mut solver);
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "velocity")
                .unwrap();
            let (_, g) = mb.local_blocks().next().unwrap();
            let v = g.find_array("velocity", Centering::Point).unwrap();
            let w_dev = solver.field_device(FieldId::VelZ).unwrap();
            (0..v.len())
                .map(|i| (v.get(i, 2) - w_dev[i]).abs())
                .fold(0.0, f64::max)
        });
        assert_eq!(res[0], 0.0, "export must be bit-exact");
    }
}
