//! The `nek_sensei::DataAdaptor` of the paper (Listing 2), rebuilt on the
//! owned snapshot data plane.
//!
//! Presents one rank's SEM solver state as a VTK-model multiblock. The
//! high-order element is exported the way Nek tools export to VTK: each
//! spectral element becomes `N³` linear hexahedra over its `(N+1)³` GLL
//! nodes, and nodal fields map 1:1 onto the grid points.
//!
//! The coupling is split in two:
//!
//! - [`NekGeometry`] — the static export (points, cells, array catalogue,
//!   global counts, bounds). Built **once** per run with one collective,
//!   then shared by every consumer via `Arc`; the per-trigger rebuild and
//!   the per-call `Vec<ArrayInfo>` reconstruction are gone.
//! - [`SnapshotAdaptor`] — a thin view over one published
//!   [`sem::snapshot::FieldSnapshot`]. Field arrays are handed to VTK as
//!   refcounted aliases of the snapshot's staged buffers
//!   (`ArrayData::F64Shared`), so no consumer pays a second copy and no
//!   consumer ever holds `&mut FlowSolver`.
//!
//! The D2H staging the paper identifies as the price of GPU↔VTK coupling
//! is paid exactly once per published step, inside
//! [`sem::navier_stokes::FlowSolver::publish_snapshot`].

use commsim::{Comm, ReduceOp};
use insitu::DataAdaptor;
use memtrack::{Accountant, Charge};
use meshdata::{
    ArrayInfo, CellType, Centering, DataArray, MeshMetadata, MultiBlock, UnstructuredGrid,
};
use sem::navier_stokes::{FieldId, FlowSolver};
use sem::snapshot::{FieldSnapshot, SnapshotPool, SnapshotSpec};
use std::sync::Arc;

/// The mesh name this adaptor publishes (NekRS has a single fluid mesh).
pub const MESH_NAME: &str = "mesh";

/// The static half of the VTK export: grid geometry, array catalogue, and
/// global mesh metadata. Built once per run and shared by all consumers.
pub struct NekGeometry {
    grid: UnstructuredGrid,
    arrays: Vec<ArrayInfo>,
    n_blocks: usize,
    rank: usize,
    global_points: u64,
    global_cells: u64,
    bounds: [f64; 6],
    /// Keeps the host-resident geometry accounted for the run's lifetime.
    _charge: Charge,
}

impl NekGeometry {
    /// Export the solver's mesh once: subdivide elements, take the global
    /// point/cell counts (one collective), and record the array catalogue.
    pub fn build(comm: &mut Comm, solver: &FlowSolver) -> Self {
        let mesh = &solver.mesh;
        let l = mesh.layout();
        let n = mesh.spec.order;
        let np = l.np;
        let mut grid = UnstructuredGrid::new();
        grid.points.reserve(l.n_nodes());
        for le in 0..mesh.elems.len() {
            for k in 0..np {
                for j in 0..np {
                    for i in 0..np {
                        grid.add_point(mesh.node_coords(le, i, j, k));
                    }
                }
            }
        }
        for le in 0..mesh.elems.len() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let id = |ii: usize, jj: usize, kk: usize| {
                            l.idx(le, i + ii, j + jj, k + kk) as i64
                        };
                        grid.add_cell(
                            CellType::Hexahedron,
                            &[
                                id(0, 0, 0),
                                id(1, 0, 0),
                                id(1, 1, 0),
                                id(0, 1, 0),
                                id(0, 0, 1),
                                id(1, 0, 1),
                                id(1, 1, 1),
                                id(0, 1, 1),
                            ],
                        );
                    }
                }
            }
        }
        // Geometry assembly is a host-side sweep over points + cells; the
        // export stays resident for the whole run.
        let bytes = grid.heap_bytes();
        comm.compute_host(bytes as f64 * 0.5, bytes as f64);
        let charge = comm.accountant("vtk").charge(bytes);

        let mut arrays = vec![
            ArrayInfo {
                name: "pressure".into(),
                centering: Centering::Point,
                components: 1,
            },
            ArrayInfo {
                name: "velocity".into(),
                centering: Centering::Point,
                components: 3,
            },
        ];
        if solver.field_device(FieldId::Temperature).is_some() {
            arrays.push(ArrayInfo {
                name: "temperature".into(),
                centering: Centering::Point,
                components: 1,
            });
        }
        // Derived fields, computed on demand on the device (as NekRS's
        // userchk-style post-processing kernels do) at publish time.
        arrays.push(ArrayInfo {
            name: "vorticity".into(),
            centering: Centering::Point,
            components: 3,
        });
        arrays.push(ArrayInfo {
            name: "q_criterion".into(),
            centering: Centering::Point,
            components: 1,
        });

        let mut counts = [l.n_nodes() as f64, (mesh.elems.len() * n * n * n) as f64];
        comm.allreduce_vec(&mut counts, ReduceOp::Sum);
        let lengths = mesh.spec.lengths;

        Self {
            grid,
            arrays,
            n_blocks: comm.size(),
            rank: comm.rank(),
            global_points: counts[0] as u64,
            global_cells: counts[1] as u64,
            bounds: [0.0, lengths[0], 0.0, lengths[1], 0.0, lengths[2]],
            _charge: charge,
        }
    }

    /// Names of the arrays this export can provide — precomputed at
    /// construction, returned as a slice (no per-call rebuilds).
    pub fn available_arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// The rank-local exported grid.
    pub fn grid(&self) -> &UnstructuredGrid {
        &self.grid
    }

    /// Global mesh metadata stamped with `time`/`time_step`. Collective
    /// counts were taken at construction, so this is allocation-only.
    pub fn metadata(&self, time: f64, time_step: u64) -> MeshMetadata {
        MeshMetadata {
            mesh_name: MESH_NAME.into(),
            n_blocks: self.n_blocks,
            global_points: self.global_points,
            global_cells: self.global_cells,
            arrays: self.arrays.clone(),
            bounds: Some(self.bounds),
            time,
            time_step,
        }
    }
}

/// The solver-side half of the data plane, bundled for embedding code:
/// the geometry is built once and the pooled staging buffers are reused
/// across published steps, so steady-state publishing allocates nothing.
///
/// ```ignore
/// let plane = SnapshotPlane::new(comm, &solver);
/// loop {
///     solver.step(comm);
///     if bridge.triggers_at(step) {
///         let mut da = plane.publish(comm, &mut solver, bridge.arrays_at(step));
///         bridge.update(comm, step, &mut da)?;
///     }
/// }
/// ```
pub struct SnapshotPlane {
    pool: SnapshotPool,
    geometry: Arc<NekGeometry>,
}

impl SnapshotPlane {
    /// Build the geometry cache and staging pool for `solver`'s mesh.
    pub fn new(comm: &mut Comm, solver: &FlowSolver) -> Self {
        Self {
            pool: SnapshotPool::new(comm.accountant("snapshot-pool")),
            geometry: Arc::new(NekGeometry::build(comm, solver)),
        }
    }

    /// The cached geometry.
    pub fn geometry(&self) -> &Arc<NekGeometry> {
        &self.geometry
    }

    /// The staging buffer pool.
    pub fn pool(&self) -> &SnapshotPool {
        &self.pool
    }

    /// Publish the named arrays (unknown names are ignored here and
    /// surface as `NoSuchData` at consumption) and wrap the snapshot for
    /// SENSEI consumption.
    pub fn publish<S: AsRef<str>>(
        &self,
        comm: &mut Comm,
        solver: &mut FlowSolver,
        arrays: impl IntoIterator<Item = S>,
    ) -> SnapshotAdaptor {
        let spec = SnapshotSpec::from_names(arrays);
        let snapshot = solver.publish_snapshot(comm, &spec, &self.pool);
        let telemetry = comm.telemetry();
        if telemetry.enabled() {
            let stats = self.pool.stats();
            telemetry.counter("snapshot/published").inc();
            telemetry
                .gauge("snapshot/pool_resident_bytes")
                .set(stats.resident_bytes as f64);
            telemetry
                .gauge("snapshot/pool_free_buffers")
                .set(stats.free_buffers as f64);
        }
        SnapshotAdaptor::new(comm, snapshot, Arc::clone(&self.geometry))
    }
}

/// Adapts one published [`FieldSnapshot`] (plus the shared [`NekGeometry`])
/// to the SENSEI-style [`DataAdaptor`] contract. Holds no solver borrow:
/// consumers can run on another thread while the solver advances.
pub struct SnapshotAdaptor {
    snapshot: Arc<FieldSnapshot>,
    geometry: Arc<NekGeometry>,
    vtk_accountant: Accountant,
    charges: Vec<Charge>,
    time_override: Option<f64>,
    step_override: Option<u64>,
}

impl SnapshotAdaptor {
    /// View `snapshot` through `geometry`; transient host-side VTK copies
    /// are charged to the rank's `vtk` accountant.
    pub fn new(comm: &Comm, snapshot: Arc<FieldSnapshot>, geometry: Arc<NekGeometry>) -> Self {
        Self {
            snapshot,
            geometry,
            vtk_accountant: comm.accountant("vtk"),
            charges: Vec::new(),
            time_override: None,
            step_override: None,
        }
    }

    /// The snapshot being presented.
    pub fn snapshot(&self) -> &Arc<FieldSnapshot> {
        &self.snapshot
    }

    /// Override the reported `time`/`time_step` (replay and steering
    /// harnesses re-present one snapshot under synthetic stamps).
    pub fn set_time_stamp(&mut self, time: f64, time_step: u64) {
        self.time_override = Some(time);
        self.step_override = Some(time_step);
    }
}

impl DataAdaptor for SnapshotAdaptor {
    fn num_meshes(&self) -> usize {
        1
    }

    fn mesh_name(&self, idx: usize) -> &str {
        assert_eq!(idx, 0, "NekRS provides one mesh");
        MESH_NAME
    }

    fn mesh_metadata(&mut self, _comm: &mut Comm, mesh: &str) -> insitu::Result<MeshMetadata> {
        check_mesh(mesh)?;
        Ok(self.geometry.metadata(self.time(), self.time_step()))
    }

    fn mesh(&mut self, comm: &mut Comm, mesh: &str) -> insitu::Result<MultiBlock> {
        check_mesh(mesh)?;
        // The consumer gets its own VTK copy of the geometry (the paper's
        // conversion cost); field arrays below stay zero-copy.
        let g = self.geometry.grid().clone();
        let bytes = g.heap_bytes();
        comm.compute_host(bytes as f64 * 0.5, bytes as f64);
        self.charges.push(self.vtk_accountant.charge(bytes));
        Ok(MultiBlock::local(
            self.geometry.rank,
            self.geometry.n_blocks,
            g,
        ))
    }

    fn add_array(
        &mut self,
        _comm: &mut Comm,
        mb: &mut MultiBlock,
        mesh: &str,
        centering: Centering,
        array: &str,
    ) -> insitu::Result<()> {
        check_mesh(mesh)?;
        if centering != Centering::Point {
            return Err(insitu::Error::NoSuchData(format!(
                "cell array '{array}' (solver fields are point-centered)"
            )));
        }
        let Some(field) = self.snapshot.field(array) else {
            return Err(insitu::Error::NoSuchData(format!(
                "array '{array}' (not in snapshot v{})",
                self.snapshot.version
            )));
        };
        // Zero-copy: the consumer's DataArray aliases the staged buffer.
        let data = DataArray::shared_f64(field.name, field.components, field.shared());
        self.charges
            .push(self.vtk_accountant.charge(data.heap_bytes()));
        let Some(block) = mb.blocks[self.geometry.rank].as_mut() else {
            return Err(insitu::Error::NoSuchData("local block missing".into()));
        };
        block.add_point_data(data)?;
        Ok(())
    }

    fn time(&self) -> f64 {
        self.time_override.unwrap_or(self.snapshot.time)
    }

    fn time_step(&self) -> u64 {
        self.step_override.unwrap_or(self.snapshot.version as u64)
    }

    fn release_data(&mut self) {
        self.charges.clear();
    }
}

fn check_mesh(mesh: &str) -> insitu::Result<()> {
    if mesh == MESH_NAME {
        Ok(())
    } else {
        Err(insitu::Error::NoSuchData(format!("mesh '{mesh}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks, MachineModel};
    use sem::cases::{pb146, rbc, CaseParams};
    use sem::snapshot::{SnapshotPool, SnapshotSpec};

    fn small_pb146_solver(comm: &mut Comm) -> FlowSolver {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        pb146(&params, 4).build(comm)
    }

    fn publish(
        comm: &mut Comm,
        solver: &mut FlowSolver,
        spec: SnapshotSpec,
    ) -> (Arc<FieldSnapshot>, Arc<NekGeometry>, SnapshotPool) {
        let geometry = Arc::new(NekGeometry::build(comm, solver));
        let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
        let snap = solver.publish_snapshot(comm, &spec, &pool);
        (snap, geometry, pool)
    }

    #[test]
    fn geometry_export_subdivides_elements() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let (snap, geo, _pool) = publish(comm, &mut solver, SnapshotSpec::default());
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            let mb = da.mesh(comm, MESH_NAME).unwrap();
            let (idx, g) = mb.local_blocks().next().unwrap();
            g.validate().unwrap();
            let n_elems = solver.mesh.elems.len();
            (
                idx,
                g.n_points() == n_elems * 27, // (N+1)³ with N=2
                g.n_cells() == n_elems * 8,   // N³
            )
        });
        assert_eq!(res[0], (0, true, true));
        assert_eq!(res[1], (1, true, true));
    }

    #[test]
    fn publish_stages_d2h_once_for_any_number_of_consumers() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let n = solver.n_nodes() as u64;
            let geo = Arc::new(NekGeometry::build(comm, &solver));
            let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
            let spec = SnapshotSpec::from_names(["velocity", "pressure"]);
            let d2h_before = comm.stats().bytes_d2h;
            let snap = solver.publish_snapshot(comm, &spec, &pool);
            let staged = comm.stats().bytes_d2h - d2h_before;

            // Two independent consumers; neither re-stages anything.
            let d2h_mid = comm.stats().bytes_d2h;
            for _ in 0..2 {
                let mut da = SnapshotAdaptor::new(comm, Arc::clone(&snap), Arc::clone(&geo));
                let mut mb = da.mesh(comm, MESH_NAME).unwrap();
                da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "velocity")
                    .unwrap();
                da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "pressure")
                    .unwrap();
                da.release_data();
            }
            let consumer_staged = comm.stats().bytes_d2h - d2h_mid;
            (staged, n, consumer_staged)
        });
        let (staged, n, consumer_staged) = res[0];
        // velocity = 3 fields + pressure = 1 field, 8 B per node each.
        assert_eq!(staged, 4 * n * 8);
        assert_eq!(consumer_staged, 0, "consumers must not re-stage D2H");
    }

    #[test]
    fn consumer_arrays_are_zero_copy_and_vtk_charge_releases() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let spec = SnapshotSpec::from_names(["velocity", "pressure"]);
            let (snap, geo, _pool) = publish(comm, &mut solver, spec);
            let geometry_resident = comm.accountant("vtk").current();
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            let after_mesh = comm.accountant("vtk").current();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "velocity")
                .unwrap();
            let after_arrays = comm.accountant("vtk").current();
            da.release_data();
            let after_release = comm.accountant("vtk").current();
            drop(da);
            (geometry_resident, after_mesh, after_arrays, after_release)
        });
        let (geometry_resident, after_mesh, after_arrays, after_release) = res[0];
        assert!(geometry_resident > 0, "geometry export stays resident");
        assert!(after_mesh > geometry_resident, "mesh() charges a VTK copy");
        // Shared arrays alias pooled buffers: no meaningful extra charge.
        assert!(after_arrays - after_mesh < 1024, "arrays must be zero-copy");
        assert_eq!(
            after_release, geometry_resident,
            "release_data frees the transient copies, keeps the export"
        );
    }

    #[test]
    fn metadata_counts_are_global_and_arrays_depend_on_case() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let (snap, geo, _pool) = publish(comm, &mut solver, SnapshotSpec::default());
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            let md = da.mesh_metadata(comm, MESH_NAME).unwrap();
            let has_temp = md.array("temperature").is_some();
            (md.global_cells, md.n_blocks, has_temp)
        });
        // pb146 has no temperature; cell count = global fluid elems × 8.
        for (_cells, blocks, has_temp) in &res {
            assert_eq!(*blocks, 2);
            assert!(!has_temp);
        }
        assert!(res[0].0 > 0);

        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut params = CaseParams::rbc_default();
            params.elems = [2, 2, 2];
            params.order = 2;
            let mut solver = rbc(&params, 1e4, 0.7).build(comm);
            let (snap, geo, _pool) = publish(comm, &mut solver, SnapshotSpec::default());
            let da = SnapshotAdaptor::new(comm, snap, Arc::clone(&geo));
            // Satellite check: the catalogue is precomputed — repeated calls
            // return the same slice, no rebuilds.
            let first = geo.available_arrays().as_ptr();
            let second = geo.available_arrays().as_ptr();
            drop(da);
            (
                geo.available_arrays()
                    .iter()
                    .any(|a| a.name == "temperature"),
                std::ptr::eq(first, second),
            )
        });
        assert!(res[0].0, "RBC case must expose temperature");
        assert!(res[0].1, "array catalogue must not be rebuilt per call");
    }

    #[test]
    fn unknown_requests_error() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let spec = SnapshotSpec::from_names(["pressure"]);
            let (snap, geo, _pool) = publish(comm, &mut solver, spec);
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            assert!(da.mesh(comm, "other").is_err());
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Point, "enstrophy")
                .is_err());
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Cell, "pressure")
                .is_err());
            // pb146 has no temperature, so the snapshot cannot carry it.
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Point, "temperature")
                .is_err());
            // pressure was published, velocity was not requested.
            assert!(da
                .add_array(comm, &mut mb, MESH_NAME, Centering::Point, "velocity")
                .is_err());
        });
    }

    #[test]
    fn derived_fields_are_exported_on_demand() {
        let res = run_ranks(2, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            for _ in 0..3 {
                solver.step(comm);
            }
            let geo = Arc::new(NekGeometry::build(comm, &solver));
            let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
            let md = geo.metadata(solver.time(), solver.step_index() as u64);
            assert!(md.array("vorticity").is_some());
            assert!(md.array("q_criterion").is_some());
            let d2h_before = comm.stats().bytes_d2h;
            let spec = SnapshotSpec::from_names(["vorticity", "q_criterion"]);
            let snap = solver.publish_snapshot(comm, &spec, &pool);
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "vorticity")
                .unwrap();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "q_criterion")
                .unwrap();
            let (_, g) = mb.local_blocks().next().unwrap();
            let w = g.find_array("vorticity", Centering::Point).unwrap();
            let q = g.find_array("q_criterion", Centering::Point).unwrap();
            let finite = (0..w.len()).all(|i| {
                w.get(i, 0).is_finite() && w.get(i, 1).is_finite() && w.get(i, 2).is_finite()
            }) && (0..q.len()).all(|i| q.get(i, 0).is_finite());
            (
                w.components,
                q.components,
                finite,
                comm.stats().bytes_d2h > d2h_before,
            )
        });
        for (wc, qc, finite, staged) in res {
            assert_eq!(wc, 3);
            assert_eq!(qc, 1);
            assert!(finite);
            assert!(staged, "derived fields must pay D2H like primary ones");
        }
    }

    #[test]
    fn exported_field_values_match_solver_state() {
        let res = run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            let spec = SnapshotSpec::from_names(["velocity"]);
            let (snap, geo, _pool) = publish(comm, &mut solver, spec);
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            let mut mb = da.mesh(comm, MESH_NAME).unwrap();
            da.add_array(comm, &mut mb, MESH_NAME, Centering::Point, "velocity")
                .unwrap();
            let (_, g) = mb.local_blocks().next().unwrap();
            let v = g.find_array("velocity", Centering::Point).unwrap();
            let w_dev = solver.field_device(FieldId::VelZ).unwrap();
            (0..v.len())
                .map(|i| (v.get(i, 2) - w_dev[i]).abs())
                .fold(0.0, f64::max)
        });
        assert_eq!(res[0], 0.0, "export must be bit-exact");
    }

    #[test]
    fn time_stamp_override_rewrites_reported_step() {
        run_ranks(1, MachineModel::test_tiny(), |comm| {
            let mut solver = small_pb146_solver(comm);
            solver.step(comm);
            let spec = SnapshotSpec::from_names(["pressure"]);
            let (snap, geo, _pool) = publish(comm, &mut solver, spec);
            let mut da = SnapshotAdaptor::new(comm, snap, geo);
            assert_eq!(da.time_step(), 1);
            da.set_time_stamp(9.5, 42);
            assert_eq!(da.time_step(), 42);
            assert_eq!(da.time(), 9.5);
            let md = da.mesh_metadata(comm, MESH_NAME).unwrap();
            assert_eq!(md.time_step, 42);
        });
    }
}
