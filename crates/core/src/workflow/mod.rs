//! Experiment drivers for the paper's two evaluation workflows.

pub mod insitu;
pub mod intransit;
mod sampler;
pub mod supervisor;
