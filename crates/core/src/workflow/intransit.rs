//! The §4.2 in transit experiment: RBC under {No Transport, Checkpointing,
//! Catalyst} endpoint configurations with a 4:1 sim:endpoint ratio.
//!
//! Two worlds run concurrently: the simulation world (NekRS-SENSEI with
//! the ADIOS-SST-analogue transport analysis) and the endpoint world
//! (SENSEI data consumers driving either a VTU checkpoint writer or the
//! Catalyst-style renderer). The measured quantities are those of
//! Figures 5/6: mean time per timestep **on the simulation nodes**, and
//! the **per-simulation-node** memory footprint — both of which should be
//! (and are) nearly independent of the endpoint configuration, because the
//! heavy work happens on the other side of the staging link.

use crate::adaptor::{NekGeometry, SnapshotAdaptor};
use crate::metrics::{DegradationSummary, RunMetrics};
use crate::workflow::sampler::{fault_summary, memory_summary, StepSampler};
use crate::workflow::supervisor::{resume_solver, RecoveryOptions, SupervisedStepper};
use commsim::{
    run_ranks_with_registry, with_mode, CommStats, FaultPlan, MachineModel, PhaseBreakdown,
    RankTrace, SchedMode,
};
use insitu::Bridge;
use memtrack::Registry;
use parking_lot::Mutex;
use render::CatalystAnalysis;
use sem::cases::CaseSetup;
use sem::snapshot::{SnapshotPool, SnapshotSpec};
use std::sync::Arc;
use transport::{
    QueuePolicy, ReportSink, SessionSpec, StagingLink, StagingNetwork, StagingReport,
    StagingService, TransportAnalysis, WireKind, WriterConfig,
};

/// What the SENSEI endpoint does with the received data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointMode {
    /// SENSEI runtime active on the simulation, no analysis enabled, no
    /// endpoint at all (the reference measurement).
    NoTransport,
    /// Endpoint writes pressure+velocity as VTU files.
    Checkpointing,
    /// Endpoint renders two images per step via the Catalyst-style
    /// pipeline.
    Catalyst,
}

impl EndpointMode {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            EndpointMode::NoTransport => "No Transport",
            EndpointMode::Checkpointing => "Checkpointing",
            EndpointMode::Catalyst => "Catalyst",
        }
    }
}

/// One in-transit run configuration.
#[derive(Clone)]
pub struct InTransitConfig {
    /// The workload (typically [`sem::cases::rbc`]).
    pub case: CaseSetup,
    /// Simulation ranks.
    pub sim_ranks: usize,
    /// Simulation:endpoint rank ratio (4 in the paper).
    pub ratio: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Transport trigger period in steps.
    pub trigger_every: u64,
    /// Testbed model (JUWELS Booster for §4.2).
    pub machine: MachineModel,
    /// Staging link parameters (UCX/TCP analogue).
    pub link: StagingLink,
    /// Staging queue bound, in packets per endpoint rank.
    pub queue_capacity: usize,
    /// Overflow policy.
    pub policy: QueuePolicy,
    /// Endpoint behavior under test.
    pub mode: EndpointMode,
    /// How the two rank worlds are driven: free-running threads or the
    /// discrete-event scheduler (`NEK_SCHED_MODE`). Bitwise-identical
    /// virtual-time output either way.
    pub sched: SchedMode,
    /// Which wire carries the staged frames between the worlds: the
    /// in-process channel engine (bitwise-identical to the original
    /// transport) or real loopback TCP sockets (`NEK_WIRE` / `--wire`).
    pub wire: WireKind,
    /// When > 0, replace the endpoint's fixed analysis with a
    /// [`StagingService`] fanning each step out to this many concurrent
    /// consumer sessions (requires a single endpoint rank). 0 keeps the
    /// classic one-consumer endpoint.
    pub staging_consumers: usize,
    /// Where the staging service parks delivered steps (late-joiner
    /// catch-up source). Defaults to a temp dir when unset.
    pub staging_dir: Option<std::path::PathBuf>,
    /// Rendered image size (Catalyst endpoint).
    pub image_size: (usize, usize),
    /// Write real artifacts here when set.
    pub output_dir: Option<std::path::PathBuf>,
    /// Seeded fault injection plan for the staging link and endpoints
    /// ([`FaultPlan::none`] for a healthy run).
    pub faults: FaultPlan,
    /// Writer retry/backoff/circuit-breaker parameters.
    pub writer_config: WriterConfig,
    /// When set, producers whose circuit breaker opens degrade to the BP
    /// file engine in this directory instead of dropping triggers.
    pub fallback_dir: Option<std::path::PathBuf>,
    /// Record per-phase spans against the virtual clock, on both the
    /// simulation and endpoint worlds (see `trace`).
    pub trace: bool,
    /// Attach the telemetry bus (metrics + flight recorder + event log)
    /// to both worlds and collect [`InTransitReport::run_report`].
    /// Endpoint-world instruments register under `endpoint<r>/` so the
    /// two worlds never collide on a name.
    pub telemetry: bool,
    /// Crash-recovery plumbing (supervised checkpoint cadence, restart
    /// point, externally owned hub); the default disables it all. See
    /// [`crate::workflow::supervisor`].
    pub recovery: RecoveryOptions,
}

/// What one in-transit run produced.
#[derive(Debug, Clone)]
pub struct InTransitReport {
    /// Which endpoint configuration ran.
    pub mode: EndpointMode,
    /// Simulation ranks.
    pub sim_ranks: usize,
    /// Endpoint ranks (0 for NoTransport).
    pub endpoint_ranks: usize,
    /// Steps run.
    pub steps: usize,
    /// Simulation-side timing/traffic/memory (Figures 5 and 6 read this).
    pub sim: RunMetrics,
    /// Per-simulation-node host memory peak: the Figure 6 quantity
    /// (max over ranks × ranks-per-node).
    pub sim_node_mem_peak: u64,
    /// Steps fully processed by the endpoint.
    pub endpoint_steps: u64,
    /// Payload bytes that crossed the staging link.
    pub endpoint_bytes_received: u64,
    /// Bytes the endpoint wrote to storage.
    pub endpoint_bytes_written: u64,
    /// Steps the endpoints processed with at least one producer missing.
    pub endpoint_partial_steps: u64,
    /// Frames the endpoints rejected on CRC mismatch.
    pub endpoint_corrupt_rejected: u64,
    /// Endpoint ranks whose scheduled crash fault fired.
    pub endpoint_crashes: usize,
    /// Per-endpoint-rank delivered step log, in delivery order — the
    /// determinism witness (same plan + seed ⇒ identical logs).
    pub endpoint_delivered: Vec<Vec<u64>>,
    /// Producer-side fault-tolerance outcome.
    pub degradation: DegradationSummary,
    /// Raw per-rank span traces, simulation world (pid 0) then endpoint
    /// world (pid 1); empty unless `trace` was set.
    pub traces: Vec<RankTrace>,
    /// Per-phase attribution of virtual wall time (None unless traced).
    pub phases: Option<PhaseBreakdown>,
    /// The unified telemetry artifact (None unless `telemetry` was set).
    pub run_report: Option<telemetry::RunReport>,
    /// Staging fan-out outcome (None unless `staging_consumers` > 0).
    pub staging: Option<StagingReport>,
}

/// What the endpoint world produced: the classic single consumer or the
/// staging fan-out service.
enum EndpointOutcome {
    Consumer(transport::EndpointReport),
    Staging(Box<StagingReport>),
}

/// Execute one in-transit configuration.
pub fn run_intransit(cfg: &InTransitConfig) -> InTransitReport {
    assert!(cfg.ratio >= 1, "ratio must be >= 1");
    let endpoint_ranks = match cfg.mode {
        EndpointMode::NoTransport => 0,
        _ => (cfg.sim_ranks / cfg.ratio).max(1),
    };
    if cfg.staging_consumers > 0 {
        assert_eq!(
            endpoint_ranks, 1,
            "the staging service is a single-rank server; pick ratio >= sim_ranks"
        );
    }

    let registry = Registry::new();
    let hub = cfg
        .telemetry
        .then(|| cfg.recovery.hub.clone().unwrap_or_default());
    let case = cfg.case.clone();
    let steps = cfg.steps;
    let trigger = cfg.trigger_every.max(1);
    let has_temperature = case.config.temperature.is_some();

    // Endpoint world (when transporting).
    let (writers, endpoint_handle) = if endpoint_ranks > 0 {
        let (writers, readers) = StagingNetwork::build_wired(
            cfg.sim_ranks,
            endpoint_ranks,
            cfg.queue_capacity,
            cfg.link,
            cfg.policy,
            cfg.faults.clone(),
            cfg.writer_config,
            cfg.wire,
        )
        .expect("wire setup");
        let xml = endpoint_xml(cfg);
        let machine = cfg.machine.clone();
        let sim_ranks = cfg.sim_ranks;
        let mode = cfg.mode;
        let trace = cfg.trace;
        let endpoint_hub = hub.clone();
        let sched = cfg.sched;
        let staging_consumers = cfg.staging_consumers;
        let staging_dir = cfg.staging_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("nek-staging-{}", std::process::id()))
        });
        let image_size = cfg.image_size;
        let handle = std::thread::spawn(move || {
            with_mode(sched, || {
                commsim::run_ranks_with_state(machine, readers, move |comm, mut reader| {
                    if trace {
                        comm.enable_tracing(1);
                    }
                    if let Some(hub) = &endpoint_hub {
                        comm.enable_telemetry(hub, 1);
                    }
                    reader.set_accountant(comm.accountant("staging"));
                    if staging_consumers > 0 {
                        // Fan-out mode: the staging service replaces the
                        // fixed analysis; N local consumer sessions with
                        // identical specs drain concurrently (one render
                        // per step, N−1 cache hits).
                        let mut service =
                            StagingService::new(reader, sim_ranks, &staging_dir, 32);
                        let handle = service.handle();
                        let spec = SessionSpec {
                            width: image_size.0,
                            height: image_size.1,
                            ..SessionSpec::default()
                        };
                        let drains: Vec<_> = (0..staging_consumers)
                            .map(|_| {
                                let mut client = handle.attach_local(spec.clone(), 4);
                                std::thread::spawn(move || {
                                    client
                                        .drain(std::time::Duration::from_secs(120))
                                        .expect("consumer drain")
                                })
                            })
                            .collect();
                        let report = service.run(comm).expect("staging run");
                        for d in drains {
                            d.join().expect("consumer thread");
                        }
                        let stats = *comm.stats();
                        return (
                            EndpointOutcome::Staging(Box::new(report)),
                            stats,
                            comm.take_trace(),
                        );
                    }
                    let factories = match mode {
                        EndpointMode::Catalyst => vec![CatalystAnalysis::factory()],
                        _ => vec![],
                    };
                    let mut consumer =
                        transport::EndpointConsumer::new(reader, &xml, &factories, sim_ranks)
                            .expect("valid endpoint config");
                    let report = consumer.run(comm).expect("endpoint run");
                    let stats = *comm.stats();
                    (EndpointOutcome::Consumer(report), stats, comm.take_trace())
                })
            })
        });
        (Some(writers), Some(handle))
    } else {
        (None, None)
    };

    // Simulation world.
    let writer_slots: Arc<Mutex<Vec<Option<transport::SstWriter>>>> = Arc::new(Mutex::new(
        writers
            .map(|ws| ws.into_iter().map(Some).collect())
            .unwrap_or_default(),
    ));
    let mode = cfg.mode;
    let slots = Arc::clone(&writer_slots);
    let report_sink: ReportSink = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&report_sink);
    let fallback_dir = cfg.fallback_dir.clone();
    let trace = cfg.trace;
    let sim_faults = cfg.faults.clone();
    let recovery = cfg.recovery.clone();
    let rank_hub = hub.clone();
    let rank_registry = registry.clone();
    let results = with_mode(cfg.sched, || {
        run_ranks_with_registry(
            cfg.sim_ranks,
            cfg.machine.clone(),
            registry.clone(),
            move |comm| {
                if trace {
                    comm.enable_tracing(0);
                }
                if let Some(hub) = &rank_hub {
                    comm.enable_telemetry(hub, 0);
                }
                let setup = comm.span("sim/setup");
                let mut solver = case.build(comm);
                let host_base = comm.accountant("host-base");
                let _base = host_base.charge(solver.n_nodes() as u64 * 8 * 60);

                let arrays = if has_temperature {
                    "pressure,velocity,temperature"
                } else {
                    "pressure,velocity"
                };
                let (xml, factories): (String, Vec<insitu::AdaptorFactory>) = match mode {
                    EndpointMode::NoTransport => ("<sensei></sensei>".to_string(), vec![]),
                    _ => {
                        let writer = slots.lock()[comm.rank()]
                            .take()
                            .expect("one staging writer per sim rank");
                        (
                            format!(
                                r#"<sensei><analysis type="adios-sst" frequency="{trigger}" arrays="{arrays}"/></sensei>"#
                            ),
                            vec![TransportAnalysis::factory_with_recovery(
                                writer,
                                fallback_dir.clone(),
                                Some(Arc::clone(&sink)),
                            )],
                        )
                    }
                };
                let mut bridge =
                    Bridge::initialize(comm, &xml, &factories).expect("valid generated config");
                drop(setup);
                let start = resume_solver(comm, &mut solver, &recovery);
                let mut supervised = SupervisedStepper::new(comm, &recovery, &sim_faults);
                let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
                let mut sampler = (comm.rank() == 0)
                    .then(|| rank_hub.clone())
                    .flatten()
                    .map(|hub| StepSampler::new(hub, rank_registry.clone(), comm.now()));
                // Built on the first trigger: NoTransport never pays for the
                // VTK geometry, matching its bare-solver memory profile.
                let mut geometry: Option<Arc<NekGeometry>> = None;
                for s in start..=steps {
                    solver.step(comm);
                    let step = s as u64;
                    supervised.after_step(comm, &mut solver, step);
                    if bridge.triggers_at(step) {
                        if geometry.is_none() {
                            geometry = Some(Arc::new(NekGeometry::build(comm, &solver)));
                        }
                        let spec = SnapshotSpec::from_names(bridge.arrays_at(step));
                        let snap = solver.publish_snapshot(comm, &spec, &pool);
                        let mut da = SnapshotAdaptor::new(
                            comm,
                            snap,
                            Arc::clone(geometry.as_ref().expect("built above")),
                        );
                        bridge.update(comm, step, &mut da).expect("update");
                    }
                    if let Some(sampler) = &mut sampler {
                        sampler.sample(comm, step, Some(&pool), 0.0);
                    }
                }
                {
                    let _sp = comm.span("sim/finalize");
                    bridge.finalize(comm).expect("finalize");
                    comm.barrier();
                }
                comm.take_trace()
            },
        )
    });

    let times_stats: Vec<(f64, CommStats)> = results.iter().map(|r| (r.time, r.stats)).collect();
    let sim = RunMetrics::from_ranks(&times_stats, cfg.steps, &registry);
    let sim_node_mem_peak = sim.memory.host_max_rank_peak * cfg.machine.ranks_per_node as u64;

    let degradation = DegradationSummary::from_reports(&report_sink.lock());

    let mut traces: Vec<RankTrace> = results.into_iter().filter_map(|r| r.value).collect();

    let mut staging: Option<StagingReport> = None;
    let (
        endpoint_steps,
        endpoint_bytes_received,
        endpoint_bytes_written,
        endpoint_partial_steps,
        endpoint_corrupt_rejected,
        endpoint_crashes,
        endpoint_delivered,
    ) = match endpoint_handle {
        Some(handle) => {
            let endpoint_results = handle.join().expect("endpoint world");
            let mut steps = 0u64;
            let mut bytes = 0u64;
            let mut written = 0u64;
            let mut partial = 0u64;
            let mut corrupt = 0u64;
            let mut crashes = 0usize;
            let mut delivered = Vec::new();
            for (outcome, stats, trace) in endpoint_results {
                written += stats.bytes_written_fs;
                traces.extend(trace);
                match outcome {
                    EndpointOutcome::Consumer(r) => {
                        steps = steps.max(r.steps_processed);
                        bytes += r.bytes_received;
                        partial += r.partial_steps;
                        corrupt += r.corrupt_rejected;
                        crashes += usize::from(r.crashed);
                        delivered.push(r.delivered_steps);
                    }
                    EndpointOutcome::Staging(r) => {
                        steps = steps.max(r.steps);
                        bytes += r.bytes_received;
                        staging = Some(*r);
                    }
                }
            }
            (steps, bytes, written, partial, corrupt, crashes, delivered)
        }
        None => (0, 0, 0, 0, 0, 0, Vec::new()),
    };

    let phases = (!traces.is_empty()).then(|| PhaseBreakdown::from_traces(&traces));
    // Critical path before collect: the step windows are a non-draining
    // recorder peek, and the sem/critical_* gauges must be registered
    // before the metrics snapshot.
    let critical = crate::workflow::sampler::analyze_critical(&traces, hub.as_ref());
    let mut run_report = hub.as_ref().map(|hub| {
        telemetry::RunReport::collect(
            telemetry::Manifest {
                case: cfg.case.name.clone(),
                workflow: "intransit".into(),
                mode: cfg.mode.label().to_ascii_lowercase(),
                exec: "concurrent".into(),
                sched: cfg.sched.label().into(),
                wire: cfg.wire.label().into(),
                ranks: cfg.sim_ranks,
                endpoint_ranks,
                steps: cfg.steps as u64,
                trigger_every: cfg.trigger_every.max(1),
                machine: cfg.machine.name.into(),
                fault_plan: fault_summary(&cfg.faults),
                pool_threads: rayon::pool::current_threads(),
                // The staging queue bound plays the credit-depth role here.
                pipeline_depth: cfg.queue_capacity,
            },
            hub,
            registry.snapshot().entries,
            memory_summary(&sim.memory),
        )
    });
    if let Some(r) = &mut run_report {
        r.critical = critical;
    }
    InTransitReport {
        mode: cfg.mode,
        sim_ranks: cfg.sim_ranks,
        endpoint_ranks,
        steps: cfg.steps,
        sim,
        sim_node_mem_peak,
        endpoint_steps,
        endpoint_bytes_received,
        endpoint_bytes_written,
        endpoint_partial_steps,
        endpoint_corrupt_rejected,
        endpoint_crashes,
        endpoint_delivered,
        degradation,
        traces,
        phases,
        run_report,
        staging,
    }
}

fn endpoint_xml(cfg: &InTransitConfig) -> String {
    let out_attr = cfg
        .output_dir
        .as_ref()
        .map(|d| format!(r#" output="{}""#, d.display()))
        .unwrap_or_default();
    match cfg.mode {
        EndpointMode::NoTransport => "<sensei></sensei>".to_string(),
        EndpointMode::Checkpointing => format!(
            r#"<sensei><analysis type="vtu-checkpoint" frequency="1" arrays="pressure,velocity"{out_attr}/></sensei>"#
        ),
        EndpointMode::Catalyst => {
            let (w, h) = cfg.image_size;
            format!(
                r#"<sensei><analysis type="catalyst" frequency="1" width="{w}" height="{h}"
   slice_array="temperature" contour_array="velocity"{out_attr}/></sensei>"#
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem::cases::{rbc, CaseParams};

    fn tiny_config(sim_ranks: usize, mode: EndpointMode) -> InTransitConfig {
        let mut params = CaseParams::rbc_default();
        params.elems = [2, 2, sim_ranks.max(2)];
        params.order = 2;
        InTransitConfig {
            case: rbc(&params, 1e4, 0.7),
            sim_ranks,
            ratio: 4,
            steps: 4,
            trigger_every: 2,
            machine: MachineModel::juwels_booster(),
            link: StagingLink::ucx_hdr200(),
            queue_capacity: 8,
            policy: QueuePolicy::Block,
            mode,
            sched: SchedMode::default(),
            wire: WireKind::default(),
            staging_consumers: 0,
            staging_dir: None,
            image_size: (64, 48),
            output_dir: None,
            faults: FaultPlan::none(),
            writer_config: WriterConfig::default(),
            fallback_dir: None,
            trace: false,
            telemetry: false,
            recovery: RecoveryOptions::default(),
        }
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nek-sensei-intransit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn no_transport_has_no_endpoint_and_no_staging() {
        let r = run_intransit(&tiny_config(4, EndpointMode::NoTransport));
        assert_eq!(r.endpoint_ranks, 0);
        assert_eq!(r.endpoint_steps, 0);
        assert_eq!(r.endpoint_bytes_received, 0);
        assert!(r.sim.time_to_solution > 0.0);
    }

    #[test]
    fn checkpointing_endpoint_receives_and_writes() {
        let r = run_intransit(&tiny_config(4, EndpointMode::Checkpointing));
        assert_eq!(r.endpoint_ranks, 1);
        assert_eq!(r.endpoint_steps, 2, "2 triggers over 4 steps");
        assert!(r.endpoint_bytes_received > 0);
        assert!(r.endpoint_bytes_written > 0, "VTU files written");
        // Simulation ranks write nothing in transit.
        assert_eq!(r.sim.totals.bytes_written_fs, 0);
    }

    #[test]
    fn catalyst_endpoint_renders_without_sim_side_rendering() {
        let r = run_intransit(&tiny_config(4, EndpointMode::Catalyst));
        assert_eq!(r.endpoint_steps, 2);
        assert!(r.endpoint_bytes_written > 0, "PNGs written at the endpoint");
        // Images are far smaller than VTU checkpoints.
        let chk = run_intransit(&tiny_config(4, EndpointMode::Checkpointing));
        assert!(r.endpoint_bytes_written < chk.endpoint_bytes_written);
    }

    #[test]
    fn sim_overhead_of_transport_is_modest() {
        let none = run_intransit(&tiny_config(4, EndpointMode::NoTransport));
        let cat = run_intransit(&tiny_config(4, EndpointMode::Catalyst));
        let overhead = (cat.sim.mean_step_time - none.sim.mean_step_time) / none.sim.mean_step_time;
        // The paper's point: in transit costs the simulation little. At
        // this tiny scale allow a generous bound, but it must not blow up.
        assert!(
            overhead < 1.0,
            "in-transit sim-side overhead {overhead:.2} too large"
        );
    }

    #[test]
    fn total_link_failure_degrades_to_file_fallback_without_aborting() {
        use commsim::LinkFaultSpec;
        use transport::BpFileReader;

        let dir = scratch_dir("linkfail");
        let mut cfg = tiny_config(4, EndpointMode::Checkpointing);
        cfg.steps = 10; // triggers at 2,4,6,8,10
        cfg.faults = FaultPlan::with_link(
            42,
            LinkFaultSpec {
                drop_prob: 1.0,
                ..LinkFaultSpec::default()
            },
        );
        cfg.fallback_dir = Some(dir.clone());
        let r = run_intransit(&cfg);

        // Per producer: 2 triggers lost before the breaker trips at the
        // third consecutive failure, the rest parked to the file engine.
        let d = r.degradation;
        assert!(d.degraded(), "breaker must open under total loss");
        assert_eq!(d.degraded_producers, 4);
        assert_eq!(d.staged_steps, 0);
        assert_eq!(d.lost_steps, 8);
        assert_eq!(d.parked_steps, 12);
        assert_eq!(d.first_switch_step, Some(6));
        // The endpoint saw only skip markers — empty partial deliveries for
        // the two lost steps plus the breaker-tripping step.
        assert_eq!(r.endpoint_steps, 3);
        assert_eq!(r.endpoint_partial_steps, 3);
        assert_eq!(r.endpoint_bytes_received, 0);
        // Every parked trigger is a readable BP file step.
        for producer in 0..4 {
            let path = dir.join(format!("producer_{producer:05}.bp4l"));
            let mut reader = BpFileReader::open(&path).expect("fallback file");
            let mut steps = Vec::new();
            while let Some(sd) = reader.next_step().expect("valid BP frame") {
                steps.push(sd.step);
            }
            assert_eq!(steps, vec![6, 8, 10], "producer {producer}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn endpoint_crash_mid_run_parks_triggers_with_zero_loss() {
        use commsim::EndpointCrash;
        use transport::BpFileReader;

        let dir = scratch_dir("crash");
        let mut cfg = tiny_config(4, EndpointMode::Checkpointing);
        cfg.steps = 8; // triggers at 2,4,6,8
        cfg.faults = FaultPlan {
            crashes: vec![EndpointCrash {
                endpoint: 0,
                at_step: 2,
            }],
            ..FaultPlan::default()
        };
        cfg.fallback_dir = Some(dir.clone());
        let r = run_intransit(&cfg);

        assert_eq!(r.endpoint_crashes, 1);
        assert_eq!(r.endpoint_steps, 0, "endpoint died before processing");
        // The crash surfaces to producers as a disconnect: every trigger is
        // either staged before the crash or parked after it — none lost.
        let d = r.degradation;
        assert_eq!(d.lost_steps, 0, "disconnect must not lose triggers");
        assert!(d.degraded(), "producers must switch to the file engine");
        assert_eq!(d.degraded_producers, 4);
        assert_eq!(d.staged_steps + d.parked_steps, 16, "4 triggers x 4 ranks");
        assert!(d.first_switch_step.is_some());
        // Parked triggers round-trip through the BP files.
        let mut parked_total = 0u64;
        for producer in 0..4 {
            let path = dir.join(format!("producer_{producer:05}.bp4l"));
            let mut reader = BpFileReader::open(&path).expect("fallback file");
            while let Some(sd) = reader.next_step().expect("valid BP frame") {
                assert!(sd.step >= 2);
                parked_total += 1;
            }
        }
        assert_eq!(parked_total, d.parked_steps);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_node_memory_is_endpoint_independent_in_order_of_magnitude() {
        let none = run_intransit(&tiny_config(4, EndpointMode::NoTransport));
        let cat = run_intransit(&tiny_config(4, EndpointMode::Catalyst));
        let ratio = cat.sim_node_mem_peak as f64 / none.sim_node_mem_peak.max(1) as f64;
        assert!(
            (0.8..2.0).contains(&ratio),
            "sim-node memory must be endpoint-independent: ratio {ratio}"
        );
    }
}
