//! The run supervisor: turns checkpoint generations into self-healing runs.
//!
//! [`run_supervised_insitu`] / [`run_supervised_intransit`] wrap the
//! workflow drivers in a recovery ladder:
//!
//! 1. **degrade** — transport-level faults are already absorbed inside the
//!    run (retry, circuit breaker, BP-file fallback); they never reach the
//!    supervisor.
//! 2. **restore** — a rank crash, a pipeline watchdog timeout, or a failed
//!    restore surfaces as a typed panic. The supervisor tears the attempt
//!    down, audits the checkpoint directory ([`scan_for_restore`] —
//!    quarantining every torn or CRC-invalid generation), restores every
//!    rank from the newest complete generation, strips the one-shot faults
//!    that already fired ([`FaultPlan::without_fired`]), and resumes.
//! 3. **give up** — when the bounded retry budget is exhausted, the last
//!    failure is re-raised unchanged.
//!
//! Every rung is visible on the telemetry bus: `RecoveryStarted` /
//! `RecoveryCompleted` / `GenerationQuarantined` events plus
//! `supervisor/*` counters, all collected into the final attempt's
//! [`telemetry::RunReport`] because one externally owned hub spans every
//! attempt.

use std::any::Any;
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use commsim::{Comm, EventKind, FaultPlan, InjectedCrash, TelemetryHub, WatchdogTimeout};
use sem::navier_stokes::FlowSolver;
use sem::snapshot::{SnapshotPool, SnapshotSpec};

use crate::checkpoint::{
    quarantine_generation, scan_for_restore, CheckpointSpec, CheckpointStore, RestoredGeneration,
};
use crate::workflow::insitu::{run_insitu, InSituConfig, InSituReport};
use crate::workflow::intransit::{run_intransit, InTransitConfig, InTransitReport};

/// Per-driver recovery plumbing, carried inside the run configs. The
/// default disables everything — unsupervised runs behave exactly as
/// before.
#[derive(Clone, Default)]
pub struct RecoveryOptions {
    /// Cut crash-consistent checkpoint generations at this cadence, in
    /// every mode (independent of the Checkpointing consumer).
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from this restored generation instead of step 0.
    pub resume_from: Option<Arc<RestoredGeneration>>,
    /// Virtual-seconds deadline for a single pipeline-credit wait; when a
    /// backpressure stall exceeds it the producer raises a typed
    /// [`WatchdogTimeout`] panic for the supervisor to classify.
    pub watchdog: Option<f64>,
    /// Externally owned hub so one telemetry stream (and one RunReport)
    /// spans every supervised attempt.
    pub hub: Option<TelemetryHub>,
}

/// Typed panic payload raised when a rank cannot restore from a
/// generation the scan had declared valid (e.g. a node-count mismatch
/// against the current case). The supervisor quarantines the generation
/// and falls back further.
#[derive(Debug, Clone)]
pub struct RestorePanic {
    /// Rank that failed to restore.
    pub rank: usize,
    /// Generation step it was restoring.
    pub step: u64,
    /// What went wrong.
    pub reason: String,
}

/// How the supervisor classified one failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A scheduled simulation-rank crash fired ([`InjectedCrash`]).
    InjectedCrash,
    /// The pipelined producer's credit wait blew its deadline.
    Watchdog,
    /// A rank failed to restore from a scanned generation.
    RestoreFailed,
    /// A panic whose message names the transport circuit breaker.
    CircuitOpen,
    /// Any other rank panic.
    RankPanic,
}

impl FailureKind {
    /// Stable label for events and JSON summaries.
    pub fn label(self) -> &'static str {
        match self {
            Self::InjectedCrash => "injected_crash",
            Self::Watchdog => "watchdog",
            Self::RestoreFailed => "restore_failed",
            Self::CircuitOpen => "circuit_open",
            Self::RankPanic => "rank_panic",
        }
    }
}

/// One failed attempt, as recorded in [`RecoveryStats`].
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    /// Classification of the failure.
    pub failure: FailureKind,
    /// Step the failure was stamped with, when the payload carried one.
    pub at_step: Option<u64>,
    /// Step the next attempt resumed from (0 = from scratch).
    pub resumed_from: u64,
    /// Generation steps this recovery's scan quarantined. Disjoint from
    /// `resumed_from` by construction — the proof harness asserts it.
    pub quarantined: Vec<u64>,
    /// Human-readable failure description.
    pub detail: String,
}

/// What supervision did across the whole run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Restarts performed (failed attempts that were retried).
    pub restarts: u32,
    /// Steps recomputed because they post-dated the restored generation.
    pub lost_steps: u64,
    /// Generations quarantined across all recovery scans.
    pub quarantined: u64,
    /// Virtual-seconds of exponential backoff charged (bookkeeping; the
    /// worlds are torn down between attempts, so no rank clock exists to
    /// advance).
    pub backoff_total: f64,
    /// Every failed attempt, in order.
    pub outcomes: Vec<AttemptOutcome>,
}

/// A driver report plus the supervision ledger.
#[derive(Debug, Clone)]
pub struct SupervisedReport<R> {
    /// The final (successful) attempt's report.
    pub report: R,
    /// What it took to get there.
    pub recovery: RecoveryStats,
}

/// Supervisor policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Where and how often generations are cut (and scanned on failure).
    pub checkpoint: CheckpointSpec,
    /// Failed attempts to retry before giving up.
    pub max_restarts: u32,
    /// Base of the exponential backoff ledger: retry *n* records
    /// `backoff_base · 2ⁿ⁻¹` virtual seconds.
    pub backoff_base: f64,
    /// Pipeline-credit watchdog deadline handed to the drivers.
    pub watchdog: Option<f64>,
}

impl SupervisorConfig {
    /// A policy writing generations under `dir` every `every` steps, with
    /// a 3-restart budget and a 1-virtual-second backoff base.
    pub fn new(dir: impl Into<std::path::PathBuf>, every: u64) -> Self {
        Self {
            checkpoint: CheckpointSpec::new(dir, every),
            max_restarts: 3,
            backoff_base: 1.0,
            watchdog: None,
        }
    }
}

/// Run the in situ driver under supervision. Telemetry is forced on so
/// every recovery is visible in the returned report's RunReport.
pub fn run_supervised_insitu(
    cfg: &InSituConfig,
    sup: &SupervisorConfig,
) -> SupervisedReport<InSituReport> {
    let hub = cfg.recovery.hub.clone().unwrap_or_default();
    let ranks = cfg.ranks;
    supervise(sup, &hub, ranks, &cfg.faults, |faults, recovery| {
        let mut attempt = cfg.clone();
        attempt.telemetry = true;
        attempt.faults = faults;
        attempt.recovery = recovery;
        run_insitu(&attempt)
    })
}

/// Run the in transit driver under supervision (see
/// [`run_supervised_insitu`]).
pub fn run_supervised_intransit(
    cfg: &InTransitConfig,
    sup: &SupervisorConfig,
) -> SupervisedReport<InTransitReport> {
    let hub = cfg.recovery.hub.clone().unwrap_or_default();
    let ranks = cfg.sim_ranks;
    supervise(sup, &hub, ranks, &cfg.faults, |faults, recovery| {
        let mut attempt = cfg.clone();
        attempt.telemetry = true;
        attempt.faults = faults;
        attempt.recovery = recovery;
        run_intransit(&attempt)
    })
}

/// The retry loop shared by both drivers.
fn supervise<R>(
    sup: &SupervisorConfig,
    hub: &TelemetryHub,
    ranks: usize,
    base_faults: &FaultPlan,
    mut attempt: impl FnMut(FaultPlan, RecoveryOptions) -> R,
) -> SupervisedReport<R> {
    let mut faults = base_faults.clone();
    let mut resume: Option<Arc<RestoredGeneration>> = None;
    let mut stats = RecoveryStats::default();
    loop {
        let recovery = RecoveryOptions {
            checkpoint: Some(sup.checkpoint.clone()),
            resume_from: resume.clone(),
            watchdog: sup.watchdog,
            hub: Some(hub.clone()),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| attempt(faults.clone(), recovery)));
        let payload = match outcome {
            Ok(report) => {
                return SupervisedReport {
                    report,
                    recovery: stats,
                }
            }
            Err(payload) => payload,
        };
        let (kind, failed_step, detail) = classify(payload.as_ref());
        if stats.restarts >= sup.max_restarts {
            // Budget exhausted: the failure escapes unchanged (give up).
            resume_unwind(payload);
        }
        stats.restarts += 1;
        hub.counter("supervisor/restarts").inc();
        supervisor_event(
            hub,
            EventKind::RecoveryStarted,
            failed_step,
            format!("{}: {detail}", kind.label()),
        );

        // A restore failure means the scan trusted a generation the solver
        // could not load — quarantine it before rescanning so the fallback
        // can never pick it again.
        let mut quarantined_steps = Vec::new();
        if kind == FailureKind::RestoreFailed {
            if let Some(step) = failed_step {
                quarantine_generation(&sup.checkpoint.dir, step, ranks);
                stats.quarantined += 1;
                quarantined_steps.push(step);
                hub.counter("supervisor/quarantined_generations").inc();
                supervisor_event(
                    hub,
                    EventKind::GenerationQuarantined,
                    Some(step),
                    "restore failed on a scan-valid generation".to_string(),
                );
            }
        }

        let scan = scan_for_restore(&sup.checkpoint.dir, ranks);
        for q in &scan.quarantined {
            stats.quarantined += 1;
            quarantined_steps.push(q.step);
            hub.counter("supervisor/quarantined_generations").inc();
            supervisor_event(
                hub,
                EventKind::GenerationQuarantined,
                Some(q.step),
                q.reason.clone(),
            );
        }
        let resumed_from = scan.restored.as_ref().map(|g| g.step).unwrap_or(0);
        resume = scan.restored.map(Arc::new);

        let lost = failed_step
            .map(|f| f.saturating_sub(resumed_from))
            .unwrap_or(0);
        stats.lost_steps += lost;
        hub.counter("supervisor/lost_steps").add(lost);

        // One-shot faults at or before the failure already fired; a
        // replayed step must not re-trip them.
        if let Some(step) = failed_step {
            faults = faults.without_fired(step);
        }
        let backoff = sup.backoff_base * 2f64.powi(stats.restarts as i32 - 1);
        stats.backoff_total += backoff;
        supervisor_event(
            hub,
            EventKind::RecoveryCompleted,
            Some(resumed_from),
            format!("resuming from step {resumed_from} ({lost} steps lost, backoff {backoff:.1}s)"),
        );
        stats.outcomes.push(AttemptOutcome {
            failure: kind,
            at_step: failed_step,
            resumed_from,
            quarantined: quarantined_steps,
            detail,
        });
    }
}

/// Map a panic payload to a failure classification.
fn classify(payload: &(dyn Any + Send)) -> (FailureKind, Option<u64>, String) {
    if let Some(c) = payload.downcast_ref::<InjectedCrash>() {
        return (
            FailureKind::InjectedCrash,
            Some(c.step),
            format!("sim rank {} crashed at step {}", c.rank, c.step),
        );
    }
    if let Some(w) = payload.downcast_ref::<WatchdogTimeout>() {
        return (
            FailureKind::Watchdog,
            Some(w.step),
            format!(
                "rank {} pipeline wait {:.1}s blew the deadline at step {}",
                w.rank, w.waited, w.step
            ),
        );
    }
    if let Some(r) = payload.downcast_ref::<RestorePanic>() {
        return (
            FailureKind::RestoreFailed,
            Some(r.step),
            format!(
                "rank {} could not restore generation {}: {}",
                r.rank, r.step, r.reason
            ),
        );
    }
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "opaque panic payload".to_string());
    if msg.contains("CircuitOpen") {
        (FailureKind::CircuitOpen, None, msg)
    } else {
        (FailureKind::RankPanic, None, msg)
    }
}

/// Push a supervisor event. The worlds are torn down between attempts, so
/// there is no rank clock: supervisor events carry `at = 0` and rely on
/// their step stamp for ordering context.
fn supervisor_event(hub: &TelemetryHub, kind: EventKind, step: Option<u64>, detail: String) {
    hub.push_event(telemetry::Event {
        at: 0.0,
        pid: 0,
        rank: 0,
        step,
        kind,
        detail,
    });
}

// ---------------------------------------------------------------------------
// Per-rank hooks the drivers call
// ---------------------------------------------------------------------------

/// Restore this rank's solver when the attempt resumes from a generation.
/// Returns the first step the loop should run (1 when starting fresh).
///
/// Restore problems raise a typed [`RestorePanic`] — the supervisor
/// quarantines the generation and falls back, rather than crashing.
pub(crate) fn resume_solver(
    comm: &mut Comm,
    solver: &mut FlowSolver,
    recovery: &RecoveryOptions,
) -> usize {
    let Some(gen) = &recovery.resume_from else {
        return 1;
    };
    if gen.dumps.len() != comm.size() {
        panic_any(RestorePanic {
            rank: comm.rank(),
            step: gen.step,
            reason: format!(
                "generation has {} dumps, world has {}",
                gen.dumps.len(),
                comm.size()
            ),
        });
    }
    let dump = &gen.dumps[comm.rank()];
    if let Err(err) = dump.restore_into(comm, solver) {
        panic_any(RestorePanic {
            rank: comm.rank(),
            step: gen.step,
            reason: err.to_string(),
        });
    }
    comm.telemetry().counter("supervisor/ranks_restored").inc();
    gen.step as usize + 1
}

/// Per-rank supervised-step state: the scheduled crash (if any) and the
/// generation writer. Owned by each rank's closure in the drivers.
pub(crate) struct SupervisedStepper {
    crash_at: Option<u64>,
    store: Option<(CheckpointStore, SnapshotPool, SnapshotSpec)>,
    faults: FaultPlan,
}

impl SupervisedStepper {
    pub(crate) fn new(comm: &Comm, recovery: &RecoveryOptions, faults: &FaultPlan) -> Self {
        let store = recovery.checkpoint.clone().map(|spec| {
            (
                CheckpointStore::new(spec),
                SnapshotPool::new(comm.accountant("ckpt-pool")),
                SnapshotSpec {
                    pressure: true,
                    velocity: true,
                    temperature: true,
                    ..SnapshotSpec::default()
                },
            )
        });
        Self {
            crash_at: faults.sim_crash_step(comm.rank()),
            store,
            faults: faults.clone(),
        }
    }

    /// Call after every solver step. Order matters for the lost-step
    /// bound: a crash scheduled at step *s* fires **before** step *s*'s
    /// generation is cut, so at most one checkpoint interval of work is
    /// ever rolled back.
    pub(crate) fn after_step(&mut self, comm: &mut Comm, solver: &mut FlowSolver, step: u64) {
        if self.crash_at == Some(step) {
            comm.telemetry_event(
                EventKind::FaultInjected,
                Some(step),
                format!("injected sim-rank crash (rank {})", comm.rank()),
            );
            panic_any(InjectedCrash {
                rank: comm.rank(),
                step,
            });
        }
        if let Some((store, pool, spec)) = &mut self.store {
            if store.spec().due(step) {
                let snap = solver.publish_snapshot(comm, spec, pool);
                let _sp = comm.span("supervisor/checkpoint");
                store.write_generation(comm, &snap, &self.faults);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::insitu::{ExecMode, InSituMode};
    use commsim::{MachineModel, SimRankCrash};
    use sem::cases::{pb146, CaseParams};

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("supervisor_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg(steps: usize, faults: FaultPlan) -> InSituConfig {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        InSituConfig {
            case: pb146(&params, 4),
            ranks: 2,
            steps,
            trigger_every: 2,
            machine: MachineModel::test_tiny(),
            image_size: (32, 24),
            mode: InSituMode::Original,
            exec: ExecMode::Synchronous,
            sched: Default::default(),
            faults,
            output_dir: None,
            trace: false,
            telemetry: false,
            recovery: RecoveryOptions::default(),
        }
    }

    #[test]
    fn crash_is_recovered_within_one_interval() {
        let dir = scratch("recover");
        let faults = FaultPlan {
            sim_crashes: vec![SimRankCrash {
                rank: 1,
                at_step: 5,
            }],
            ..FaultPlan::none()
        };
        let sup = SupervisorConfig::new(dir.clone(), 2);
        let out = run_supervised_insitu(&tiny_cfg(8, faults), &sup);
        assert_eq!(out.recovery.restarts, 1);
        assert_eq!(out.recovery.outcomes.len(), 1);
        assert_eq!(out.recovery.outcomes[0].failure, FailureKind::InjectedCrash);
        // Crash at 5, newest generation at 4: exactly 1 step recomputed.
        assert_eq!(out.recovery.outcomes[0].resumed_from, 4);
        assert_eq!(out.recovery.lost_steps, 1);
        assert!(out.recovery.lost_steps <= 2, "<= one interval");
        let report = out.report.run_report.expect("telemetry forced on");
        let started = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::RecoveryStarted)
            .count();
        let completed = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::RecoveryCompleted)
            .count();
        assert_eq!(started, 1);
        assert_eq!(completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_exhaustion_reraises_the_typed_failure() {
        let dir = scratch("giveup");
        let faults = FaultPlan {
            sim_crashes: vec![
                SimRankCrash {
                    rank: 0,
                    at_step: 1,
                },
                SimRankCrash {
                    rank: 0,
                    at_step: 2,
                },
            ],
            ..FaultPlan::none()
        };
        let mut sup = SupervisorConfig::new(dir.clone(), 2);
        sup.max_restarts = 1;
        let cfg = tiny_cfg(6, faults);
        let err = catch_unwind(AssertUnwindSafe(|| run_supervised_insitu(&cfg, &sup)))
            .expect_err("budget of 1 cannot absorb 2 crashes");
        let crash = err
            .downcast_ref::<InjectedCrash>()
            .expect("typed payload escapes unchanged");
        assert_eq!(crash.step, 2, "the second crash is the one that escapes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_any_checkpoint_restarts_from_scratch() {
        let dir = scratch("scratch");
        let faults = FaultPlan {
            sim_crashes: vec![SimRankCrash {
                rank: 0,
                at_step: 1,
            }],
            ..FaultPlan::none()
        };
        let sup = SupervisorConfig::new(dir.clone(), 4);
        let out = run_supervised_insitu(&tiny_cfg(6, faults), &sup);
        assert_eq!(out.recovery.restarts, 1);
        assert_eq!(out.recovery.outcomes[0].resumed_from, 0);
        assert_eq!(out.recovery.lost_steps, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
