//! The §4.1 in situ experiment: pb146 under {Original, Checkpointing,
//! Catalyst} configurations.
//!
//! * **Original** — the solver runs bare: no SENSEI, no I/O.
//! * **Checkpointing** — NekRS-style raw field dumps every `trigger_every`
//!   steps ([`crate::checkpoint::FldCheckpointer`]).
//! * **Catalyst** — the SENSEI bridge drives the Catalyst-style rendering
//!   adaptor every `trigger_every` steps: device→host staging, VTK-model
//!   conversion, two images rendered and written per trigger.

use crate::adaptor::NekDataAdaptor;
use crate::checkpoint::FldCheckpointer;
use crate::metrics::{MemoryBreakdown, RunMetrics};
use commsim::{run_ranks_with_registry, CommStats, MachineModel, PhaseBreakdown, RankTrace};
use insitu::Bridge;
use memtrack::Registry;
use render::CatalystAnalysis;
use sem::cases::CaseSetup;

/// The three §4.1 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InSituMode {
    /// Bare solver (the baseline the paper derives by subtraction).
    Original,
    /// NekRS built-in checkpointing.
    Checkpointing,
    /// SENSEI + Catalyst-style rendering.
    Catalyst,
}

impl InSituMode {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            InSituMode::Original => "Original",
            InSituMode::Checkpointing => "Checkpointing",
            InSituMode::Catalyst => "Catalyst",
        }
    }
}

/// One run configuration.
#[derive(Clone)]
pub struct InSituConfig {
    /// The workload (typically [`sem::cases::pb146`]).
    pub case: CaseSetup,
    /// MPI ranks (one GPU each in the paper's mapping).
    pub ranks: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Checkpoint / in situ trigger period in steps.
    pub trigger_every: u64,
    /// Testbed model (Polaris for §4.1).
    pub machine: MachineModel,
    /// Rendered image size.
    pub image_size: (usize, usize),
    /// Mode under test.
    pub mode: InSituMode,
    /// Write real artifacts here when set (None → cost model only).
    pub output_dir: Option<std::path::PathBuf>,
    /// Record per-phase spans against the virtual clock (see `trace`).
    pub trace: bool,
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct InSituReport {
    /// Which configuration ran.
    pub mode: InSituMode,
    /// Rank count.
    pub ranks: usize,
    /// Steps run.
    pub steps: usize,
    /// Timing + traffic + memory.
    pub metrics: RunMetrics,
    /// Total bytes written to the filesystem (storage economy).
    pub bytes_written: u64,
    /// Files written (images for Catalyst, dumps for Checkpointing).
    pub files_written: u64,
    /// Raw per-rank span traces (empty unless `trace` was set).
    pub traces: Vec<RankTrace>,
    /// Per-phase attribution of virtual wall time (None unless traced).
    pub phases: Option<PhaseBreakdown>,
}

impl InSituReport {
    /// Memory breakdown shortcut.
    pub fn memory(&self) -> MemoryBreakdown {
        self.metrics.memory
    }
}

/// Execute one configuration and collect the paper's §4.1 metrics.
pub fn run_insitu(cfg: &InSituConfig) -> InSituReport {
    let registry = Registry::new();
    let case = cfg.case.clone();
    let mode = cfg.mode;
    let steps = cfg.steps;
    let trigger = cfg.trigger_every.max(1);
    let (width, height) = cfg.image_size;
    let output_dir = cfg.output_dir.clone();
    let trace = cfg.trace;

    let results = run_ranks_with_registry(
        cfg.ranks,
        cfg.machine.clone(),
        registry.clone(),
        move |comm| {
            if trace {
                comm.enable_tracing(0);
            }
            let setup = comm.span("sim/setup");
            let mut solver = case.build(comm);
            drop(setup);
            // Host-side baseline: mesh setup, solver host mirrors, MPI
            // buffers (NekRS keeps roughly the field set on the host too).
            let host_base = comm.accountant("host-base");
            let _base = host_base.charge(solver.n_nodes() as u64 * 8 * 60);

            match mode {
                InSituMode::Original => {
                    for _ in 0..steps {
                        solver.step(comm);
                    }
                }
                InSituMode::Checkpointing => {
                    let mut chk = FldCheckpointer::new(comm, output_dir.clone());
                    for s in 1..=steps {
                        solver.step(comm);
                        if (s as u64).is_multiple_of(trigger) {
                            let _sp = comm.span("insitu/checkpoint");
                            chk.write(comm, &solver);
                        }
                    }
                }
                InSituMode::Catalyst => {
                    let out_attr = output_dir
                        .as_ref()
                        .map(|d| format!(r#" output="{}""#, d.display()))
                        .unwrap_or_default();
                    let xml = format!(
                        r#"<sensei>
  <analysis type="catalyst" frequency="{trigger}" width="{width}" height="{height}"
            slice_array="pressure" contour_array="velocity"{out_attr}/>
</sensei>"#
                    );
                    let mut bridge =
                        Bridge::initialize(comm, &xml, &[CatalystAnalysis::factory()])
                            .expect("valid generated config");
                    for s in 1..=steps {
                        solver.step(comm);
                        let mut da = NekDataAdaptor::new(comm, &mut solver);
                        bridge
                            .update(comm, s as u64, &mut da)
                            .expect("in situ update");
                    }
                    bridge.finalize(comm).expect("finalize");
                }
            }
            {
                let _sp = comm.span("sim/finalize");
                comm.barrier();
            }
            comm.take_trace()
        },
    );

    let times_stats: Vec<(f64, CommStats)> =
        results.iter().map(|r| (r.time, r.stats)).collect();
    let metrics = RunMetrics::from_ranks(&times_stats, cfg.steps, &registry);
    let traces: Vec<RankTrace> = results.into_iter().filter_map(|r| r.value).collect();
    let phases = (!traces.is_empty()).then(|| PhaseBreakdown::from_traces(&traces));
    InSituReport {
        mode: cfg.mode,
        ranks: cfg.ranks,
        steps: cfg.steps,
        bytes_written: metrics.totals.bytes_written_fs,
        files_written: metrics.totals.files_written,
        metrics,
        traces,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem::cases::{pb146, CaseParams};

    fn tiny_config(ranks: usize, mode: InSituMode) -> InSituConfig {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        InSituConfig {
            case: pb146(&params, 4),
            ranks,
            steps: 4,
            trigger_every: 2,
            machine: MachineModel::polaris(),
            image_size: (64, 48),
            mode,
            output_dir: None,
            trace: false,
        }
    }

    #[test]
    fn original_is_fastest_and_writes_nothing() {
        let orig = run_insitu(&tiny_config(2, InSituMode::Original));
        let chk = run_insitu(&tiny_config(2, InSituMode::Checkpointing));
        let cat = run_insitu(&tiny_config(2, InSituMode::Catalyst));
        assert_eq!(orig.bytes_written, 0);
        assert_eq!(orig.files_written, 0);
        assert!(chk.bytes_written > 0);
        assert!(cat.bytes_written > 0);
        assert!(
            orig.metrics.time_to_solution < chk.metrics.time_to_solution,
            "checkpointing must cost time"
        );
        assert!(
            orig.metrics.time_to_solution < cat.metrics.time_to_solution,
            "in situ must cost time"
        );
    }

    #[test]
    fn catalyst_writes_far_less_storage_than_checkpointing() {
        // Needs a realistically sized mesh: the storage gap grows with
        // resolution (dump size ∝ nodes, image size ≈ constant).
        let mut cfg = tiny_config(2, InSituMode::Checkpointing);
        let mut params = CaseParams::pb146_default(); // [6,6,12] order 3
        params.elems = [4, 4, 6];
        cfg.case = pb146(&params, 20);
        cfg.steps = 2;
        cfg.trigger_every = 1;
        let chk = run_insitu(&cfg);
        cfg.mode = InSituMode::Catalyst;
        let cat = run_insitu(&cfg);
        assert!(
            chk.bytes_written > 3 * cat.bytes_written,
            "checkpoint {} vs catalyst {}",
            chk.bytes_written,
            cat.bytes_written
        );
    }

    #[test]
    fn catalyst_uses_more_host_memory_than_checkpointing() {
        let chk = run_insitu(&tiny_config(2, InSituMode::Checkpointing));
        let cat = run_insitu(&tiny_config(2, InSituMode::Catalyst));
        assert!(
            cat.memory().host_aggregate_peak > chk.memory().host_aggregate_peak,
            "catalyst {} vs checkpointing {}",
            cat.memory().host_aggregate_peak,
            chk.memory().host_aggregate_peak
        );
    }

    #[test]
    fn catalyst_stages_d2h_traffic() {
        let cat = run_insitu(&tiny_config(2, InSituMode::Catalyst));
        let orig = run_insitu(&tiny_config(2, InSituMode::Original));
        assert!(cat.metrics.totals.bytes_d2h > orig.metrics.totals.bytes_d2h);
    }
}
