//! The §4.1 in situ experiment: pb146 under {Original, Checkpointing,
//! Catalyst} configurations.
//!
//! * **Original** — the solver runs bare: no SENSEI, no I/O.
//! * **Checkpointing** — NekRS-style raw field dumps every `trigger_every`
//!   steps ([`crate::checkpoint::FldCheckpointer`]).
//! * **Catalyst** — the SENSEI bridge drives the Catalyst-style rendering
//!   adaptor every `trigger_every` steps: device→host staging, VTK-model
//!   conversion, two images rendered and written per trigger.
//!
//! Each configuration runs in one of two execution modes
//! ([`ExecMode`]):
//!
//! * **Synchronous** — the solver publishes a [`FieldSnapshot`] and runs
//!   the consumer (checkpoint writer or SENSEI bridge) inline before the
//!   next timestep, like classic tightly-coupled in situ.
//! * **Pipelined** — consumers run in a second rank world on pool
//!   threads. The solver publishes a snapshot and immediately resumes
//!   stepping while the previous snapshot is rendered/written
//!   concurrently. Snapshots are owned and immutable, so no
//!   copy-on-publish beyond the single device→host staging is needed.
//!   A credit scheme bounds the pipeline at [`PIPELINE_DEPTH`] frames in
//!   flight: the producer blocks (and its virtual clock advances to the
//!   consumer's completion time) when the consumer falls behind, so
//!   per-step cost converges to `max(solve, consume)` + publish instead
//!   of `solve + consume`.

use std::sync::mpsc;
use std::sync::Arc;

use crate::adaptor::{NekGeometry, SnapshotAdaptor};
use crate::checkpoint::FldCheckpointer;
use crate::metrics::{MemoryBreakdown, RunMetrics};
use crate::workflow::sampler::{fault_summary, memory_summary, StepSampler};
use crate::workflow::supervisor::{resume_solver, RecoveryOptions, SupervisedStepper};
use commsim::WatchdogTimeout;
use commsim::{
    run_ranks_with_registry, with_mode, Comm, CommStats, EventKind, FaultPlan, MachineModel,
    PhaseBreakdown, RankTrace, SchedMode, TelemetryHub,
};
use insitu::Bridge;
use memtrack::Registry;
use parking_lot::Mutex;
use render::CatalystAnalysis;
use sem::cases::CaseSetup;
use sem::snapshot::{FieldSnapshot, SnapshotPool, SnapshotSpec};

/// Maximum unacknowledged snapshots per rank in pipelined mode (double
/// buffering: one being consumed, one queued).
pub const PIPELINE_DEPTH: usize = 2;

/// The three §4.1 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InSituMode {
    /// Bare solver (the baseline the paper derives by subtraction).
    Original,
    /// NekRS built-in checkpointing.
    Checkpointing,
    /// SENSEI + Catalyst-style rendering.
    Catalyst,
}

impl InSituMode {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            InSituMode::Original => "Original",
            InSituMode::Checkpointing => "Checkpointing",
            InSituMode::Catalyst => "Catalyst",
        }
    }
}

/// How consumers run relative to the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Consumers run inline between timesteps.
    Synchronous,
    /// Consumers run concurrently on a second rank world, overlapped
    /// with the next timesteps (bounded by [`PIPELINE_DEPTH`]).
    Pipelined,
}

impl ExecMode {
    /// Display label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Synchronous => "synchronous",
            ExecMode::Pipelined => "pipelined",
        }
    }

    /// Read `NEK_EXEC_MODE` (`"pipelined"` / `"synchronous"`); defaults
    /// to [`ExecMode::Synchronous`] when unset or unrecognised.
    pub fn from_env() -> Self {
        match std::env::var("NEK_EXEC_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("pipelined") => ExecMode::Pipelined,
            _ => ExecMode::Synchronous,
        }
    }
}

impl Default for ExecMode {
    fn default() -> Self {
        Self::from_env()
    }
}

/// One run configuration.
#[derive(Clone)]
pub struct InSituConfig {
    /// The workload (typically [`sem::cases::pb146`]).
    pub case: CaseSetup,
    /// MPI ranks (one GPU each in the paper's mapping).
    pub ranks: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Checkpoint / in situ trigger period in steps.
    pub trigger_every: u64,
    /// Testbed model (Polaris for §4.1).
    pub machine: MachineModel,
    /// Rendered image size.
    pub image_size: (usize, usize),
    /// Mode under test.
    pub mode: InSituMode,
    /// Synchronous or pipelined consumer execution.
    pub exec: ExecMode,
    /// How rank worlds are driven: free-running threads or the
    /// discrete-event scheduler (`NEK_SCHED_MODE`). Virtual-time output
    /// is bitwise identical either way; event mode scales to far larger
    /// worlds. Applies to every world this run spawns (producer and
    /// pipelined consumer alike).
    pub sched: SchedMode,
    /// Injected consumer faults (stalls slow the pipelined consumer;
    /// ignored by the synchronous paths).
    pub faults: FaultPlan,
    /// Write real artifacts here when set (None → cost model only).
    pub output_dir: Option<std::path::PathBuf>,
    /// Record per-phase spans against the virtual clock (see `trace`).
    pub trace: bool,
    /// Run with the telemetry bus attached: typed metrics, the per-step
    /// flight recorder, and the structured event log, collected into
    /// [`InSituReport::run_report`]. Telemetry observes the virtual clock
    /// but never advances it, so solver output is bitwise identical with
    /// this on or off.
    pub telemetry: bool,
    /// Crash-recovery plumbing (supervised checkpoint cadence, restart
    /// point, pipeline watchdog, externally owned hub); the default
    /// disables it all. See [`crate::workflow::supervisor`].
    pub recovery: RecoveryOptions,
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct InSituReport {
    /// Which configuration ran.
    pub mode: InSituMode,
    /// Which execution mode ran.
    pub exec: ExecMode,
    /// Rank count.
    pub ranks: usize,
    /// Steps run.
    pub steps: usize,
    /// Timing + traffic + memory.
    pub metrics: RunMetrics,
    /// Total bytes written to the filesystem (storage economy).
    pub bytes_written: u64,
    /// Files written (images for Catalyst, dumps for Checkpointing).
    pub files_written: u64,
    /// Raw per-rank span traces (empty unless `trace` was set).
    pub traces: Vec<RankTrace>,
    /// Per-phase attribution of virtual wall time (None unless traced).
    pub phases: Option<PhaseBreakdown>,
    /// Largest single-rank peak of the `snapshot-pool` accountant: the
    /// staging-buffer high-water mark. Pipelined runs are bounded at
    /// [`PIPELINE_DEPTH`] snapshots' worth of buffers per rank.
    pub snapshot_pool_rank_peak: u64,
    /// The unified telemetry artifact (None unless `telemetry` was set):
    /// per-step flight-recorder series, metric registry dump, structured
    /// event log, and memory watermarks.
    pub run_report: Option<telemetry::RunReport>,
}

impl InSituReport {
    /// Memory breakdown shortcut.
    pub fn memory(&self) -> MemoryBreakdown {
        self.metrics.memory
    }
}

/// The Catalyst runtime configuration `run_insitu` generates: a pressure
/// slice plus a velocity contour, every `trigger` steps.
fn catalyst_xml(
    trigger: u64,
    width: usize,
    height: usize,
    output_dir: Option<&std::path::Path>,
) -> String {
    let out_attr = output_dir
        .map(|d| format!(r#" output="{}""#, d.display()))
        .unwrap_or_default();
    format!(
        r#"<sensei>
  <analysis type="catalyst" frequency="{trigger}" width="{width}" height="{height}"
            slice_array="pressure" contour_array="velocity"{out_attr}/>
</sensei>"#
    )
}

/// Execute one configuration and collect the paper's §4.1 metrics.
pub fn run_insitu(cfg: &InSituConfig) -> InSituReport {
    match cfg.exec {
        ExecMode::Synchronous => run_synchronous(cfg),
        // Original has no consumer to overlap with; the pipelined run is
        // the synchronous run by construction.
        ExecMode::Pipelined if cfg.mode == InSituMode::Original => run_synchronous(cfg),
        ExecMode::Pipelined => run_pipelined(cfg),
    }
}

fn report_from(
    cfg: &InSituConfig,
    registry: &Registry,
    times_stats: Vec<(f64, CommStats)>,
    traces: Vec<RankTrace>,
    hub: Option<&TelemetryHub>,
) -> InSituReport {
    let metrics = RunMetrics::from_ranks(&times_stats, cfg.steps, registry);
    let phases = (!traces.is_empty()).then(|| PhaseBreakdown::from_traces(&traces));
    let snapshot_pool_rank_peak = registry
        .snapshot()
        .entries
        .iter()
        .filter(|(name, _, _)| name.ends_with("/snapshot-pool"))
        .map(|(_, _, peak)| *peak)
        .max()
        .unwrap_or(0);
    // Critical path before collect: the step windows are a non-draining
    // recorder peek, and the sem/critical_* gauges must be registered
    // before the metrics snapshot.
    let critical = crate::workflow::sampler::analyze_critical(&traces, hub);
    let mut run_report = hub.map(|hub| {
        telemetry::RunReport::collect(
            insitu_manifest(cfg),
            hub,
            registry.snapshot().entries,
            memory_summary(&metrics.memory),
        )
    });
    if let Some(r) = &mut run_report {
        r.critical = critical;
    }
    InSituReport {
        mode: cfg.mode,
        exec: cfg.exec,
        ranks: cfg.ranks,
        steps: cfg.steps,
        bytes_written: metrics.totals.bytes_written_fs,
        files_written: metrics.totals.files_written,
        metrics,
        traces,
        phases,
        snapshot_pool_rank_peak,
        run_report,
    }
}

fn insitu_manifest(cfg: &InSituConfig) -> telemetry::Manifest {
    let pipelined = cfg.exec == ExecMode::Pipelined && cfg.mode != InSituMode::Original;
    telemetry::Manifest {
        case: cfg.case.name.clone(),
        workflow: "insitu".into(),
        mode: cfg.mode.label().to_ascii_lowercase(),
        exec: cfg.exec.label().into(),
        sched: cfg.sched.label().into(),
        wire: "none".into(),
        ranks: cfg.ranks,
        // The pipelined consumer world mirrors the sim world 1:1.
        endpoint_ranks: if pipelined { cfg.ranks } else { 0 },
        steps: cfg.steps as u64,
        trigger_every: cfg.trigger_every.max(1),
        machine: cfg.machine.name.into(),
        fault_plan: fault_summary(&cfg.faults),
        pool_threads: rayon::pool::current_threads(),
        pipeline_depth: if pipelined { PIPELINE_DEPTH } else { 0 },
    }
}

// ---------------------------------------------------------------------------
// Synchronous path
// ---------------------------------------------------------------------------

fn run_synchronous(cfg: &InSituConfig) -> InSituReport {
    let registry = Registry::new();
    let hub = cfg
        .telemetry
        .then(|| cfg.recovery.hub.clone().unwrap_or_default());
    let case = cfg.case.clone();
    let mode = cfg.mode;
    let steps = cfg.steps;
    let trigger = cfg.trigger_every.max(1);
    let (width, height) = cfg.image_size;
    let output_dir = cfg.output_dir.clone();
    let trace = cfg.trace;
    let faults = cfg.faults.clone();
    let recovery = cfg.recovery.clone();
    let rank_hub = hub.clone();
    let rank_registry = registry.clone();

    let results = with_mode(cfg.sched, || {
        run_ranks_with_registry(
            cfg.ranks,
            cfg.machine.clone(),
            registry.clone(),
            move |comm| {
                if trace {
                    comm.enable_tracing(0);
                }
                if let Some(hub) = &rank_hub {
                    comm.enable_telemetry(hub, 0);
                }
                let setup = comm.span("sim/setup");
                let mut solver = case.build(comm);
                drop(setup);
                // Host-side baseline: mesh setup, solver host mirrors, MPI
                // buffers (NekRS keeps roughly the field set on the host too).
                let host_base = comm.accountant("host-base");
                let _base = host_base.charge(solver.n_nodes() as u64 * 8 * 60);
                let start = resume_solver(comm, &mut solver, &recovery);
                let mut supervised = SupervisedStepper::new(comm, &recovery, &faults);
                // Rank 0 feeds the flight recorder one sample per step.
                let mut sampler = (comm.rank() == 0)
                    .then(|| rank_hub.clone())
                    .flatten()
                    .map(|hub| StepSampler::new(hub, rank_registry.clone(), comm.now()));

                match mode {
                    InSituMode::Original => {
                        for s in start..=steps {
                            solver.step(comm);
                            supervised.after_step(comm, &mut solver, s as u64);
                            if let Some(sampler) = &mut sampler {
                                sampler.sample(comm, s as u64, None, 0.0);
                            }
                        }
                    }
                    InSituMode::Checkpointing => {
                        let mut chk = FldCheckpointer::new(comm, output_dir.clone());
                        let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
                        let spec = SnapshotSpec {
                            pressure: true,
                            velocity: true,
                            temperature: true,
                            ..SnapshotSpec::default()
                        };
                        for s in start..=steps {
                            solver.step(comm);
                            supervised.after_step(comm, &mut solver, s as u64);
                            if (s as u64).is_multiple_of(trigger) {
                                let snap = solver.publish_snapshot(comm, &spec, &pool);
                                let _sp = comm.span("insitu/checkpoint");
                                chk.write(comm, &snap);
                            }
                            if let Some(sampler) = &mut sampler {
                                sampler.sample(comm, s as u64, Some(&pool), 0.0);
                            }
                        }
                    }
                    InSituMode::Catalyst => {
                        let xml = catalyst_xml(trigger, width, height, output_dir.as_deref());
                        let mut bridge =
                            Bridge::initialize(comm, &xml, &[CatalystAnalysis::factory()])
                                .expect("valid generated config");
                        let geometry = Arc::new(NekGeometry::build(comm, &solver));
                        let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
                        for s in start..=steps {
                            solver.step(comm);
                            supervised.after_step(comm, &mut solver, s as u64);
                            let step = s as u64;
                            if bridge.triggers_at(step) {
                                let spec = SnapshotSpec::from_names(bridge.arrays_at(step));
                                let snap = solver.publish_snapshot(comm, &spec, &pool);
                                let mut da =
                                    SnapshotAdaptor::new(comm, snap, Arc::clone(&geometry));
                                bridge.update(comm, step, &mut da).expect("in situ update");
                            }
                            if let Some(sampler) = &mut sampler {
                                sampler.sample(comm, step, Some(&pool), 0.0);
                            }
                        }
                        bridge.finalize(comm).expect("finalize");
                    }
                }
                {
                    let _sp = comm.span("sim/finalize");
                    comm.barrier();
                }
                comm.take_trace()
            },
        )
    });

    let times_stats: Vec<(f64, CommStats)> = results.iter().map(|r| (r.time, r.stats)).collect();
    let traces: Vec<RankTrace> = results.into_iter().filter_map(|r| r.value).collect();
    report_from(cfg, &registry, times_stats, traces, hub.as_ref())
}

// ---------------------------------------------------------------------------
// Pipelined path
// ---------------------------------------------------------------------------

/// One published step travelling from a producer rank to its consumer.
struct PublishedFrame {
    snapshot: Arc<FieldSnapshot>,
    /// Catalyst frames carry the (immutable, shared) geometry.
    geometry: Option<Arc<NekGeometry>>,
    step: u64,
    /// Producer virtual time at publish; the consumer clock advances to
    /// this before consuming (the data cannot arrive before it exists).
    published_at: f64,
}

enum ToConsumer {
    Frame(PublishedFrame),
    /// No more frames; `at` is the producer's final virtual time.
    Done {
        at: f64,
    },
}

/// Consumer → producer acknowledgement freeing one pipeline slot.
struct Credit {
    finished_at: f64,
}

/// Producer-side endpoint of one rank's pipeline.
struct ProducerLink {
    frames: mpsc::Sender<ToConsumer>,
    credits: mpsc::Receiver<Credit>,
    in_flight: usize,
    /// Cumulative virtual seconds this producer spent blocked on a full
    /// pipeline (the flight recorder diffs this per step).
    backpressure_wait: f64,
}

impl ProducerLink {
    /// Block until a pipeline slot is free. Waiting is charged to the
    /// virtual clock: the producer cannot be further ahead than the
    /// moment the consumer freed the slot. When a `watchdog` deadline is
    /// set and a single credit wait exceeds it (a stalled consumer), the
    /// producer raises a typed [`WatchdogTimeout`] panic for the
    /// supervisor to classify.
    fn reserve(&mut self, comm: &mut Comm, step: u64, watchdog: Option<f64>) {
        while self.in_flight >= PIPELINE_DEPTH {
            let _sp = comm.span("snapshot/backpressure");
            let before = comm.now();
            // The credit comes from the consumer world: wait outside the
            // event scheduler's run token so consumer ranks can run.
            let credit = comm
                .external_wait(|| self.credits.recv())
                .expect("consumer rank alive");
            comm.advance_to(credit.finished_at);
            let waited = (comm.now() - before).max(0.0);
            self.backpressure_wait += waited;
            self.in_flight -= 1;
            if let Some(deadline) = watchdog {
                if waited > deadline {
                    comm.telemetry_event(
                        EventKind::FaultInjected,
                        Some(step),
                        format!("watchdog: credit wait {waited:.1}s > deadline {deadline:.1}s"),
                    );
                    std::panic::panic_any(WatchdogTimeout {
                        rank: comm.rank(),
                        step,
                        waited,
                    });
                }
            }
        }
    }

    fn send(&mut self, frame: PublishedFrame) {
        self.frames
            .send(ToConsumer::Frame(frame))
            .expect("consumer rank alive");
        self.in_flight += 1;
    }

    /// Drain outstanding credits (without advancing the solver clock —
    /// the simulation is finished; the consumer world finishes on its
    /// own time) and signal end of stream.
    fn finish(mut self, comm: &Comm) {
        while self.in_flight > 0 {
            if comm.external_wait(|| self.credits.recv()).is_err() {
                break;
            }
            self.in_flight -= 1;
        }
        let _ = self.frames.send(ToConsumer::Done { at: comm.now() });
    }
}

/// Consumer-side endpoint of one rank's pipeline.
struct ConsumerLink {
    frames: mpsc::Receiver<ToConsumer>,
    credits: mpsc::Sender<Credit>,
}

fn pipeline_links(ranks: usize) -> (Vec<Option<ProducerLink>>, Vec<Option<ConsumerLink>>) {
    let mut producers = Vec::with_capacity(ranks);
    let mut consumers = Vec::with_capacity(ranks);
    for _ in 0..ranks {
        let (frame_tx, frame_rx) = mpsc::channel();
        let (credit_tx, credit_rx) = mpsc::channel();
        producers.push(Some(ProducerLink {
            frames: frame_tx,
            credits: credit_rx,
            in_flight: 0,
            backpressure_wait: 0.0,
        }));
        consumers.push(Some(ConsumerLink {
            frames: frame_rx,
            credits: credit_tx,
        }));
    }
    (producers, consumers)
}

/// Advance the consumer clock to the frame's publish time, then apply any
/// injected stall for this (rank, step).
fn consumer_arrive(comm: &mut Comm, faults: &FaultPlan, frame: &PublishedFrame) {
    {
        // Idle time waiting for the producer to publish: attributed so
        // traced pipelined runs account for every consumer second.
        let _sp = comm.span("insitu/wait");
        comm.advance_to(frame.published_at);
    }
    let stall = faults.stall_secs(comm.rank(), frame.step);
    if stall > 0.0 {
        // Stamped at the stall's onset: event time = when the fault bit.
        comm.telemetry_event(
            EventKind::FaultInjected,
            Some(frame.step),
            format!("consumer stall {stall}s"),
        );
        let _sp = comm.span("insitu/stall");
        comm.advance(stall);
    }
}

fn consume_checkpoints(
    comm: &mut Comm,
    link: ConsumerLink,
    faults: &FaultPlan,
    output_dir: Option<std::path::PathBuf>,
) {
    let mut chk = FldCheckpointer::new(comm, output_dir);
    // Frames come from the producer world: wait off-token (see
    // `Comm::external_wait`) so an event-scheduled producer can progress.
    while let Ok(msg) = comm.external_wait(|| link.frames.recv()) {
        match msg {
            ToConsumer::Frame(frame) => {
                consumer_arrive(comm, faults, &frame);
                {
                    let _sp = comm.span("insitu/checkpoint");
                    chk.write(comm, &frame.snapshot);
                }
                // Return the pooled buffers before crediting the slot.
                drop(frame);
                let _ = link.credits.send(Credit {
                    finished_at: comm.now(),
                });
            }
            ToConsumer::Done { at } => {
                let _sp = comm.span("insitu/wait");
                comm.advance_to(at);
                return;
            }
        }
    }
}

fn consume_catalyst(
    comm: &mut Comm,
    link: ConsumerLink,
    faults: &FaultPlan,
    trigger: u64,
    width: usize,
    height: usize,
    output_dir: Option<std::path::PathBuf>,
) {
    let xml = catalyst_xml(trigger, width, height, output_dir.as_deref());
    let mut bridge = Bridge::initialize(comm, &xml, &[CatalystAnalysis::factory()])
        .expect("valid generated config");
    while let Ok(msg) = comm.external_wait(|| link.frames.recv()) {
        match msg {
            ToConsumer::Frame(frame) => {
                consumer_arrive(comm, faults, &frame);
                let geometry = frame.geometry.expect("catalyst frames carry geometry");
                let mut da = SnapshotAdaptor::new(comm, frame.snapshot, geometry);
                bridge
                    .update(comm, frame.step, &mut da)
                    .expect("in situ update");
                // Return the pooled buffers before crediting the slot.
                drop(da);
                let _ = link.credits.send(Credit {
                    finished_at: comm.now(),
                });
            }
            ToConsumer::Done { at } => {
                {
                    let _sp = comm.span("insitu/wait");
                    comm.advance_to(at);
                }
                bridge.finalize(comm).expect("finalize");
                return;
            }
        }
    }
}

fn run_pipelined(cfg: &InSituConfig) -> InSituReport {
    let registry = Registry::new();
    let hub = cfg
        .telemetry
        .then(|| cfg.recovery.hub.clone().unwrap_or_default());
    let (producer_links, consumer_links) = pipeline_links(cfg.ranks);
    let producer_links = Arc::new(Mutex::new(producer_links));
    let consumer_links = Arc::new(Mutex::new(consumer_links));

    // Consumer world. Same registry as the producer world: the analysis
    // threads live on the same node as the rank they serve, so their
    // memory charges land on the same per-rank accountants.
    let consumer_world = {
        let machine = cfg.machine.clone();
        let registry = registry.clone();
        let ranks = cfg.ranks;
        let mode = cfg.mode;
        let trigger = cfg.trigger_every.max(1);
        let (width, height) = cfg.image_size;
        let output_dir = cfg.output_dir.clone();
        let trace = cfg.trace;
        let faults = cfg.faults.clone();
        let links = Arc::clone(&consumer_links);
        let hub = hub.clone();
        let sched = cfg.sched;
        std::thread::spawn(move || {
            with_mode(sched, || {
                run_ranks_with_registry(ranks, machine, registry, move |comm| {
                    if trace {
                        comm.enable_tracing(1);
                    }
                    if let Some(hub) = &hub {
                        comm.enable_telemetry(hub, 1);
                    }
                    let link = links.lock()[comm.rank()]
                        .take()
                        .expect("one consumer per rank");
                    match mode {
                        InSituMode::Checkpointing => {
                            consume_checkpoints(comm, link, &faults, output_dir.clone());
                        }
                        InSituMode::Catalyst => {
                            consume_catalyst(
                                comm,
                                link,
                                &faults,
                                trigger,
                                width,
                                height,
                                output_dir.clone(),
                            );
                        }
                        InSituMode::Original => unreachable!("original mode has no consumer"),
                    }
                    comm.take_trace()
                })
            })
        })
    };

    // Producer world (the solver), on the calling thread.
    let case = cfg.case.clone();
    let mode = cfg.mode;
    let steps = cfg.steps;
    let trigger = cfg.trigger_every.max(1);
    let trace = cfg.trace;
    let producer_faults = cfg.faults.clone();
    let recovery = cfg.recovery.clone();
    let links = Arc::clone(&producer_links);
    let rank_hub = hub.clone();
    let rank_registry = registry.clone();
    let producer_results = with_mode(cfg.sched, || {
        run_ranks_with_registry(
            cfg.ranks,
            cfg.machine.clone(),
            registry.clone(),
            move |comm| {
                if trace {
                    comm.enable_tracing(0);
                }
                if let Some(hub) = &rank_hub {
                    comm.enable_telemetry(hub, 0);
                }
                let setup = comm.span("sim/setup");
                let mut solver = case.build(comm);
                drop(setup);
                let host_base = comm.accountant("host-base");
                let _base = host_base.charge(solver.n_nodes() as u64 * 8 * 60);
                let start = resume_solver(comm, &mut solver, &recovery);
                let mut supervised = SupervisedStepper::new(comm, &recovery, &producer_faults);
                let watchdog = recovery.watchdog;
                let mut sampler = (comm.rank() == 0)
                    .then(|| rank_hub.clone())
                    .flatten()
                    .map(|hub| StepSampler::new(hub, rank_registry.clone(), comm.now()));

                let mut link = links.lock()[comm.rank()]
                    .take()
                    .expect("one producer per rank");
                let pool = SnapshotPool::new(comm.accountant("snapshot-pool"));
                // `run_insitu` generates the consumer configuration itself, so
                // the producer knows the requested fields up front (the
                // Catalyst config is a pressure slice + velocity contour).
                let (spec, geometry) = match mode {
                    InSituMode::Checkpointing => (
                        SnapshotSpec {
                            pressure: true,
                            velocity: true,
                            temperature: true,
                            ..SnapshotSpec::default()
                        },
                        None,
                    ),
                    InSituMode::Catalyst => (
                        SnapshotSpec {
                            pressure: true,
                            velocity: true,
                            ..SnapshotSpec::default()
                        },
                        Some(Arc::new(NekGeometry::build(comm, &solver))),
                    ),
                    InSituMode::Original => unreachable!("original runs synchronously"),
                };

                for s in start..=steps {
                    solver.step(comm);
                    let step = s as u64;
                    supervised.after_step(comm, &mut solver, step);
                    if step.is_multiple_of(trigger) {
                        link.reserve(comm, step, watchdog);
                        let snapshot = solver.publish_snapshot(comm, &spec, &pool);
                        link.send(PublishedFrame {
                            snapshot,
                            geometry: geometry.clone(),
                            step,
                            published_at: comm.now(),
                        });
                    }
                    if let Some(sampler) = &mut sampler {
                        sampler.sample(comm, step, Some(&pool), link.backpressure_wait);
                    }
                }
                link.finish(comm);
                {
                    let _sp = comm.span("sim/finalize");
                    comm.barrier();
                }
                comm.take_trace()
            },
        )
    });
    let consumer_results = consumer_world.join().expect("consumer world");

    let mut times_stats: Vec<(f64, CommStats)> =
        producer_results.iter().map(|r| (r.time, r.stats)).collect();
    times_stats.extend(consumer_results.iter().map(|r| (r.time, r.stats)));
    let traces: Vec<RankTrace> = producer_results
        .into_iter()
        .chain(consumer_results)
        .filter_map(|r| r.value)
        .collect();
    report_from(cfg, &registry, times_stats, traces, hub.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sem::cases::{pb146, CaseParams};

    fn tiny_config(ranks: usize, mode: InSituMode) -> InSituConfig {
        let mut params = CaseParams::pb146_default();
        params.elems = [2, 2, 4];
        params.order = 2;
        InSituConfig {
            case: pb146(&params, 4),
            ranks,
            steps: 4,
            trigger_every: 2,
            machine: MachineModel::polaris(),
            image_size: (64, 48),
            mode,
            exec: ExecMode::default(),
            sched: SchedMode::default(),
            faults: FaultPlan::none(),
            output_dir: None,
            trace: false,
            telemetry: false,
            recovery: RecoveryOptions::default(),
        }
    }

    #[test]
    fn original_is_fastest_and_writes_nothing() {
        let orig = run_insitu(&tiny_config(2, InSituMode::Original));
        let chk = run_insitu(&tiny_config(2, InSituMode::Checkpointing));
        let cat = run_insitu(&tiny_config(2, InSituMode::Catalyst));
        assert_eq!(orig.bytes_written, 0);
        assert_eq!(orig.files_written, 0);
        assert!(chk.bytes_written > 0);
        assert!(cat.bytes_written > 0);
        assert!(
            orig.metrics.time_to_solution < chk.metrics.time_to_solution,
            "checkpointing must cost time"
        );
        assert!(
            orig.metrics.time_to_solution < cat.metrics.time_to_solution,
            "in situ must cost time"
        );
    }

    #[test]
    fn catalyst_writes_far_less_storage_than_checkpointing() {
        // Needs a realistically sized mesh: the storage gap grows with
        // resolution (dump size ∝ nodes, image size ≈ constant).
        let mut cfg = tiny_config(2, InSituMode::Checkpointing);
        let mut params = CaseParams::pb146_default(); // [6,6,12] order 3
        params.elems = [4, 4, 6];
        cfg.case = pb146(&params, 20);
        cfg.steps = 2;
        cfg.trigger_every = 1;
        let chk = run_insitu(&cfg);
        cfg.mode = InSituMode::Catalyst;
        let cat = run_insitu(&cfg);
        assert!(
            chk.bytes_written > 3 * cat.bytes_written,
            "checkpoint {} vs catalyst {}",
            chk.bytes_written,
            cat.bytes_written
        );
    }

    #[test]
    fn catalyst_uses_more_host_memory_than_checkpointing() {
        let chk = run_insitu(&tiny_config(2, InSituMode::Checkpointing));
        let cat = run_insitu(&tiny_config(2, InSituMode::Catalyst));
        assert!(
            cat.memory().host_aggregate_peak > chk.memory().host_aggregate_peak,
            "catalyst {} vs checkpointing {}",
            cat.memory().host_aggregate_peak,
            chk.memory().host_aggregate_peak
        );
    }

    #[test]
    fn catalyst_stages_d2h_traffic() {
        let cat = run_insitu(&tiny_config(2, InSituMode::Catalyst));
        let orig = run_insitu(&tiny_config(2, InSituMode::Original));
        assert!(cat.metrics.totals.bytes_d2h > orig.metrics.totals.bytes_d2h);
    }

    #[test]
    fn pipelined_overlaps_consumers_with_stepping() {
        for mode in [InSituMode::Checkpointing, InSituMode::Catalyst] {
            let mut cfg = tiny_config(2, mode);
            cfg.exec = ExecMode::Synchronous;
            let sync = run_insitu(&cfg);
            cfg.exec = ExecMode::Pipelined;
            let piped = run_insitu(&cfg);
            assert!(
                piped.metrics.time_to_solution < sync.metrics.time_to_solution,
                "{}: pipelined {} vs synchronous {}",
                mode.label(),
                piped.metrics.time_to_solution,
                sync.metrics.time_to_solution
            );
            assert_eq!(piped.bytes_written, sync.bytes_written);
            assert_eq!(piped.files_written, sync.files_written);
            assert_eq!(
                piped.metrics.totals.bytes_d2h,
                sync.metrics.totals.bytes_d2h,
                "{}: publish stages the same bytes in both modes",
                mode.label()
            );
        }
    }

    #[test]
    fn pipelined_tolerates_consumer_stall_without_reordering() {
        use commsim::ConsumerStall;
        let mut cfg = tiny_config(2, InSituMode::Checkpointing);
        cfg.exec = ExecMode::Pipelined;
        cfg.steps = 8;
        cfg.faults = FaultPlan {
            stalls: vec![ConsumerStall {
                endpoint: 0,
                at_step: 2,
                seconds: 50.0,
            }],
            ..FaultPlan::none()
        };
        let stalled = run_insitu(&cfg);
        cfg.faults = FaultPlan::none();
        let clean = run_insitu(&cfg);
        // Every dump still lands, in order, despite the stall...
        assert_eq!(stalled.files_written, clean.files_written);
        assert_eq!(stalled.bytes_written, clean.bytes_written);
        // ...and the stall shows up as lost time (backpressure propagates
        // it to the producer once the pipeline fills).
        assert!(
            stalled.metrics.time_to_solution > clean.metrics.time_to_solution,
            "stalled {} vs clean {}",
            stalled.metrics.time_to_solution,
            clean.metrics.time_to_solution
        );
    }
}
