//! Per-step flight-recorder sampling for the workflow drivers.
//!
//! Rank 0 of the simulation world owns one [`StepSampler`] and calls
//! [`StepSampler::sample`] after every solver step. Each call snapshots
//! the cheap-to-read state of the run — rank-0 tracer self-times, the
//! snapshot pool, transport gauges on the hub, and the memory registry —
//! into one [`telemetry::StepSample`] pushed onto the hub's ring buffer.
//!
//! Everything read here is either already maintained (gauges, counters,
//! the memory registry) or derived by diffing cumulative totals between
//! consecutive calls (tracer self-time per span, backpressure wait), so
//! sampling never advances the virtual clock and a run produces bitwise
//! identical solver output with telemetry on or off.

use std::collections::BTreeMap;

use commsim::{Comm, FaultPlan};
use memtrack::Registry;
use sem::snapshot::SnapshotPool;
use telemetry::{MemorySummary, StepSample, TelemetryHub};

use crate::metrics::MemoryBreakdown;

/// Compact human-readable fault-plan description for the run manifest.
pub(crate) fn fault_summary(plan: &FaultPlan) -> String {
    let l = &plan.link;
    let mut parts = Vec::new();
    if l.drop_prob > 0.0 || l.corrupt_prob > 0.0 || l.delay_prob > 0.0 {
        parts.push(format!(
            "link(drop={} corrupt={} delay={})",
            l.drop_prob, l.corrupt_prob, l.delay_prob
        ));
    }
    if !plan.crashes.is_empty() {
        parts.push(format!("crashes={}", plan.crashes.len()));
    }
    if !plan.stalls.is_empty() {
        parts.push(format!("stalls={}", plan.stalls.len()));
    }
    if !plan.sim_crashes.is_empty() {
        parts.push(format!("sim_crashes={}", plan.sim_crashes.len()));
    }
    if !plan.disk_corruptions.is_empty() {
        parts.push(format!("disk_corruptions={}", plan.disk_corruptions.len()));
    }
    if parts.is_empty() {
        "none".into()
    } else {
        parts.join(" ")
    }
}

/// Mirror a [`MemoryBreakdown`] into the telemetry crate's plain-number
/// summary (telemetry stays dependency-free, so the types are distinct).
pub(crate) fn memory_summary(b: &MemoryBreakdown) -> MemorySummary {
    MemorySummary {
        host_aggregate_peak: b.host_aggregate_peak,
        host_max_rank_peak: b.host_max_rank_peak,
        gpu_aggregate_peak: b.gpu_aggregate_peak,
        unscoped: b.unscoped,
    }
}

/// Critical-path analysis + `sem/critical_*` gauge publication for a
/// traced run. Must run *before* `RunReport::collect`: the step windows
/// come from a non-draining peek at the flight recorder, which collect
/// drains. Returns the report so the driver can attach it to
/// `RunReport::critical`. `None` when there are no traces (tracing off).
pub(crate) fn analyze_critical(
    traces: &[commsim::RankTrace],
    hub: Option<&TelemetryHub>,
) -> Option<trace::CriticalReport> {
    if traces.is_empty() {
        return None;
    }
    let bounds = hub.map(TelemetryHub::step_bounds).unwrap_or_default();
    let critical = trace::critical::analyze(traces, &bounds);
    if let Some(hub) = hub {
        hub.gauge("sem/critical_total").set(critical.total);
        if let Some(d) = critical.dominant() {
            hub.gauge("sem/critical_dominant_secs").set(d.secs);
            hub.gauge("sem/critical_dominant_pid").set(d.pid as f64);
            hub.gauge("sem/critical_dominant_rank").set(d.rank as f64);
        }
        let max_slack = critical.slack.iter().map(|s| s.wait_s).fold(0.0, f64::max);
        hub.gauge("sem/critical_max_slack").set(max_slack);
    }
    Some(critical)
}

/// Rank-0 per-step series sampler (see module docs).
pub(crate) struct StepSampler {
    hub: TelemetryHub,
    registry: Registry,
    /// Rank-0 virtual time at the end of the previous sample.
    t_prev: f64,
    /// Cumulative tracer self-times at the previous sample (diffed to get
    /// per-step phase attribution).
    phase_prev: BTreeMap<String, f64>,
    /// Cumulative backpressure wait at the previous sample.
    backpressure_prev: f64,
}

impl StepSampler {
    /// Start a sampler at virtual time `t_start` (rank 0's clock before
    /// the first step).
    pub(crate) fn new(hub: TelemetryHub, registry: Registry, t_start: f64) -> Self {
        Self {
            hub,
            registry,
            t_prev: t_start,
            phase_prev: BTreeMap::new(),
            backpressure_prev: 0.0,
        }
    }

    /// Record one step. `backpressure_total` is the *cumulative* pipeline
    /// backpressure wait on this rank (0 for synchronous runs); the
    /// sampler diffs it against the previous call.
    pub(crate) fn sample(
        &mut self,
        comm: &Comm,
        step: u64,
        pool: Option<&SnapshotPool>,
        backpressure_total: f64,
    ) {
        let t_end = comm.now();
        let phase_now = comm.tracer().self_totals();
        let mut phase_self: Vec<(String, f64)> = Vec::new();
        for (name, total) in &phase_now {
            let delta = total - self.phase_prev.get(name).copied().unwrap_or(0.0);
            if delta > 0.0 {
                phase_self.push((name.clone(), delta));
            }
        }
        let (pool_resident_bytes, pool_free_buffers) = match pool {
            Some(p) => {
                let s = p.stats();
                (s.resident_bytes, s.free_buffers as u64)
            }
            None => (0, 0),
        };
        let (mut mem_current, mut mem_peak) = (0u64, 0u64);
        for (_, cur, peak) in &self.registry.snapshot().entries {
            mem_current += cur;
            mem_peak += peak;
        }
        self.hub.record(StepSample {
            step,
            t_start: self.t_prev,
            t_end,
            phase_self,
            pool_resident_bytes,
            pool_free_buffers,
            backpressure_wait: (backpressure_total - self.backpressure_prev).max(0.0),
            queue_depth: self.hub.gauge_sum("transport/queue_depth"),
            retries: self.hub.counter_sum("transport/retries"),
            mem_current,
            mem_peak,
        });
        self.t_prev = t_end;
        self.phase_prev = phase_now;
        self.backpressure_prev = backpressure_total;
    }
}
