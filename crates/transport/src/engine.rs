//! The staging engine: bounded queues between simulation and endpoint
//! worlds.
//!
//! Mirrors SST's architecture: writers (simulation ranks) push marshaled
//! step payloads into per-reader staging queues; readers (endpoint ranks)
//! drain them asynchronously. The queue is bounded in *steps*; when full,
//! the writer either blocks (SST's default back-pressure) or discards the
//! new step (streaming mode) — an ablation the benches exercise.
//!
//! Virtual time: payloads carry the writer's send timestamp plus the link
//! transfer cost; a reader's clock advances to at least that arrival time
//! on receive. Under the blocking policy a stalled writer advances its
//! clock to the reader's publicized drain time, modeling back-pressure.

use crate::link::StagingLink;
use crossbeam_channel::{bounded, Receiver, Sender};
use memtrack::Accountant;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What happens when the staging queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Writer blocks until the reader frees a slot (SST default).
    Block,
    /// Writer drops the new step and continues (lossy streaming).
    DiscardNewest,
}

/// One marshaled step from one producer.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Producer (simulation rank) id.
    pub producer: usize,
    /// Timestep index.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// Virtual time at which the payload is available at the reader.
    pub t_avail: f64,
    /// Marshaled bytes.
    pub payload: Vec<u8>,
}

struct ReaderState {
    /// Virtual time at which the reader last drained a packet.
    drain_time: Mutex<f64>,
}

/// Simulation-side handle: sends this rank's payloads to its endpoint.
pub struct SstWriter {
    /// This writer's producer id.
    pub producer: usize,
    /// The endpoint (reader) index this writer feeds.
    pub reader_index: usize,
    tx: Sender<Packet>,
    link: StagingLink,
    policy: QueuePolicy,
    state: Arc<ReaderState>,
    steps_written: u64,
    steps_dropped: u64,
    bytes_sent: u64,
}

impl SstWriter {
    /// Stage one step's payload. Charges marshal-transfer time to the
    /// writer's clock; under back-pressure, also the stall time.
    pub fn write(&mut self, comm: &mut commsim::Comm, step: u64, time: f64, payload: Vec<u8>) {
        let nbytes = payload.len() as u64;
        // Control announcement + pipelined RDMA put: the writer pays the
        // control latency and its share of injection, not the full
        // transfer (SST overlaps the bulk move with the simulation).
        comm.advance(self.link.control_latency);
        let t_avail = comm.now() + self.link.transfer_time(nbytes);
        let packet = Packet {
            producer: self.producer,
            step,
            time,
            t_avail,
            payload,
        };
        match self.tx.try_send(packet) {
            Ok(()) => {
                self.steps_written += 1;
                self.bytes_sent += nbytes;
            }
            Err(crossbeam_channel::TrySendError::Full(packet)) => match self.policy {
                QueuePolicy::Block => {
                    // Real back-pressure: block until a slot frees, then
                    // advance the virtual clock to the reader's drain time.
                    self.tx.send(packet).expect("reader dropped while blocked");
                    let drain = *self.state.drain_time.lock();
                    comm.advance(0.0);
                    if drain > comm.now() {
                        let wait = drain - comm.now();
                        comm.advance(wait);
                    }
                    self.steps_written += 1;
                    self.bytes_sent += nbytes;
                }
                QueuePolicy::DiscardNewest => {
                    self.steps_dropped += 1;
                }
            },
            Err(crossbeam_channel::TrySendError::Disconnected(_)) => {
                panic!("endpoint reader disconnected while writing");
            }
        }
    }

    /// Steps accepted by the queue.
    pub fn steps_written(&self) -> u64 {
        self.steps_written
    }

    /// Steps dropped (DiscardNewest only).
    pub fn steps_dropped(&self) -> u64 {
        self.steps_dropped
    }

    /// Payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

/// Endpoint-side handle: drains payloads from this reader's producers.
pub struct SstReader {
    /// This reader's index.
    pub index: usize,
    rx: Receiver<Packet>,
    state: Arc<ReaderState>,
    /// Number of producers feeding this reader.
    pub n_producers: usize,
    pending: BTreeMap<u64, Vec<Packet>>,
    queue_accountant: Option<Accountant>,
    bytes_received: u64,
}

impl SstReader {
    /// Attach a memory accountant for staged-but-unprocessed bytes.
    pub fn set_accountant(&mut self, a: Accountant) {
        self.queue_accountant = Some(a);
    }

    /// Receive the next complete step: blocks until all `n_producers`
    /// packets for the earliest outstanding step have arrived. Returns
    /// `None` when every writer has disconnected and nothing is pending.
    pub fn recv_step(&mut self, comm: &mut commsim::Comm) -> Option<(u64, f64, Vec<Packet>)> {
        loop {
            if let Some((&step, packets)) = self.pending.iter().next() {
                if packets.len() == self.n_producers {
                    let packets = self.pending.remove(&step).expect("checked above");
                    let time = packets[0].time;
                    // Clock: the step is ready when the latest payload lands.
                    let t_ready = packets.iter().map(|p| p.t_avail).fold(0.0, f64::max);
                    if t_ready > comm.now() {
                        comm.advance(t_ready - comm.now());
                    }
                    *self.state.drain_time.lock() = comm.now();
                    if let Some(a) = &self.queue_accountant {
                        let bytes: u64 = packets.iter().map(|p| p.payload.len() as u64).sum();
                        a.credit_raw(bytes);
                    }
                    return Some((step, time, packets));
                }
            }
            match self.rx.recv_timeout(std::time::Duration::from_millis(50)) {
                Ok(packet) => {
                    self.bytes_received += packet.payload.len() as u64;
                    if let Some(a) = &self.queue_accountant {
                        a.charge_raw(packet.payload.len() as u64);
                    }
                    self.pending.entry(packet.step).or_default().push(packet);
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                    // Writers are gone; only complete steps can still be
                    // served (handled above), so drain what's completable.
                    if self
                        .pending
                        .iter()
                        .next()
                        .is_some_and(|(_, p)| p.len() == self.n_producers)
                    {
                        continue;
                    }
                    return None;
                }
            }
        }
    }

    /// Total payload bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }
}

/// Factory wiring `n_writers` producers to `n_readers` endpoints
/// (`n_writers` must be a multiple of `n_readers`; the paper uses 4:1
/// *nodes*, i.e. producer `i` feeds reader `i / (n_writers/n_readers)`).
pub struct StagingNetwork;

impl StagingNetwork {
    /// Build the writer and reader handles. `capacity` is the per-reader
    /// queue bound in packets.
    ///
    /// # Panics
    /// If `n_writers % n_readers != 0` or either is zero.
    pub fn build(
        n_writers: usize,
        n_readers: usize,
        capacity: usize,
        link: StagingLink,
        policy: QueuePolicy,
    ) -> (Vec<SstWriter>, Vec<SstReader>) {
        assert!(n_writers > 0 && n_readers > 0, "need writers and readers");
        assert_eq!(
            n_writers % n_readers,
            0,
            "writers ({n_writers}) must be a multiple of readers ({n_readers})"
        );
        let per_reader = n_writers / n_readers;
        let mut writers = Vec::with_capacity(n_writers);
        let mut readers = Vec::with_capacity(n_readers);
        for r in 0..n_readers {
            let (tx, rx) = bounded(capacity);
            let state = Arc::new(ReaderState {
                drain_time: Mutex::new(0.0),
            });
            for w in 0..per_reader {
                writers.push(SstWriter {
                    producer: r * per_reader + w,
                    reader_index: r,
                    tx: tx.clone(),
                    link,
                    policy,
                    state: Arc::clone(&state),
                    steps_written: 0,
                    steps_dropped: 0,
                    bytes_sent: 0,
                });
            }
            readers.push(SstReader {
                index: r,
                rx,
                state,
                n_producers: per_reader,
                pending: BTreeMap::new(),
                queue_accountant: None,
                bytes_received: 0,
            });
        }
        // `writers` was pushed reader-major which is already producer order.
        (writers, readers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks_with_state, MachineModel};

    #[test]
    fn four_to_one_mapping() {
        let (writers, readers) =
            StagingNetwork::build(8, 2, 4, StagingLink::test_tiny(), QueuePolicy::Block);
        assert_eq!(writers.len(), 8);
        assert_eq!(readers.len(), 2);
        for (i, w) in writers.iter().enumerate() {
            assert_eq!(w.producer, i);
            assert_eq!(w.reader_index, i / 4);
        }
        assert_eq!(readers[0].n_producers, 4);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_divisible_mapping_rejected() {
        StagingNetwork::build(5, 2, 4, StagingLink::test_tiny(), QueuePolicy::Block);
    }

    #[test]
    fn writer_to_reader_step_assembly() {
        // 2 writers → 1 reader; reader assembles both packets per step.
        let (writers, readers) =
            StagingNetwork::build(2, 1, 8, StagingLink::test_tiny(), QueuePolicy::Block);
        let handle = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
                let i = comm.rank();
                for step in 0..3u64 {
                    w.write(comm, step, step as f64 * 0.1, vec![i as u8; 100]);
                }
            })
        });
        let result = run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let mut steps = Vec::new();
            while let Some((step, time, packets)) = reader.recv_step(comm) {
                assert_eq!(packets.len(), 2);
                steps.push((step, time));
            }
            (steps, comm.now(), reader.bytes_received())
        });
        handle.join().unwrap();
        let (steps, t, bytes) = result[0].clone();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].0, 0);
        assert_eq!(steps[2].0, 2);
        assert!((steps[1].1 - 0.1).abs() < 1e-12);
        assert!(t > 0.0, "reader clock advances to arrival times");
        assert_eq!(bytes, 600);
    }

    #[test]
    fn discard_policy_drops_when_full() {
        let (writers, readers) =
            StagingNetwork::build(1, 1, 2, StagingLink::test_tiny(), QueuePolicy::DiscardNewest);
        let res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            for step in 0..5u64 {
                w.write(comm, step, 0.0, vec![0; 10]);
            }
            (w.steps_written(), w.steps_dropped())
        });
        assert_eq!(res[0], (2, 3), "queue holds 2, rest dropped");
        drop(readers);
    }

    #[test]
    fn blocking_policy_applies_backpressure() {
        let (writers, readers) =
            StagingNetwork::build(1, 1, 1, StagingLink::test_tiny(), QueuePolicy::Block);
        // Reader drains slowly with a large virtual clock.
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut n = 0;
                while let Some((_, _, _packets)) = reader.recv_step(comm) {
                    comm.advance(10.0); // slow consumer: 10 virtual s/step
                    n += 1;
                }
                n
            })
        });
        let writer_times =
            run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
                for step in 0..4u64 {
                    w.write(comm, step, 0.0, vec![0; 10]);
                }
                (comm.now(), w.steps_written())
            });
        assert_eq!(reader_thread.join().unwrap()[0], 4);
        let (t, written) = writer_times[0];
        assert_eq!(written, 4);
        // The writer must have inherited some of the reader's slowness.
        assert!(t >= 10.0, "backpressure must slow the writer: t = {t}");
    }

    #[test]
    fn reader_accountant_tracks_staged_bytes() {
        let (writers, mut readers) =
            StagingNetwork::build(1, 1, 4, StagingLink::test_tiny(), QueuePolicy::Block);
        let acct = Accountant::new("staging");
        readers[0].set_accountant(acct.clone());
        run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            w.write(comm, 0, 0.0, vec![0; 500]);
        });
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let (step, _, _) = reader.recv_step(comm).unwrap();
            assert_eq!(step, 0);
        });
        // Charged on receive, credited on drain.
        assert_eq!(acct.peak(), 500);
        assert_eq!(acct.current(), 0);
    }
}
