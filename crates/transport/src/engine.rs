//! The staging engine: bounded queues between simulation and endpoint
//! worlds.
//!
//! Mirrors SST's architecture: writers (simulation ranks) push marshaled
//! step payloads into per-reader staging queues; readers (endpoint ranks)
//! drain them asynchronously. The queue is bounded in *steps*; when full,
//! the writer either blocks (SST's default back-pressure) or discards the
//! new step (streaming mode) — an ablation the benches exercise.
//!
//! Virtual time: payloads carry the writer's send timestamp plus the link
//! transfer cost; a reader's clock advances to at least that arrival time
//! on receive. Under the blocking policy a stalled writer advances its
//! clock to the reader's publicized drain time, modeling back-pressure.
//!
//! # Fault tolerance
//!
//! The engine never panics on a transport failure. Data frames ride a
//! lossy data plane governed by a seeded [`FaultPlan`]: a dropped frame
//! costs the writer an ack timeout plus exponential backoff (in virtual
//! time) before a retransmit; a corrupted frame is delivered damaged, CRC-
//! rejected by the reader, and retransmitted. Control messages —
//! [`PacketKind::Skip`] ("this step will never arrive") and
//! [`PacketKind::Detach`] ("this producer is gone") — model SST's reliable
//! TCP control plane, so the reader can resolve incomplete steps
//! *deterministically* instead of hanging on a wall-clock deadline: a step
//! is delivered (complete or [partial](StepDelivery::missing)) as soon as
//! every producer has contributed, skipped, or detached. A per-writer
//! circuit breaker trips after `breaker_threshold` consecutive step
//! failures (or instantly on disconnect), at which point every further
//! [`SstWriter::write`] fails fast with [`TransportError::CircuitOpen`] so
//! the workflow can degrade to the BP file engine.

use crate::bp;
use crate::error::{TransportError, WriteError};
use crate::link::StagingLink;
use crate::wire::{
    loopback_listener, ChannelWireRx, ChannelWireTx, TcpWireRx, TcpWireTx, WireKind, WireRecvError,
    WireSendError, WireRx, WireTx,
};
use commsim::FaultPlan;
use crossbeam_channel::bounded;
use memtrack::Accountant;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// What happens when the staging queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Writer blocks until the reader frees a slot (SST default).
    Block,
    /// Writer drops the new step and continues (lossy streaming).
    DiscardNewest,
}

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A marshaled step payload (data plane, lossy).
    Data,
    /// Control: the producer gave up on this step (reliable plane).
    Skip,
    /// Control: the producer will send nothing further (reliable plane).
    Detach,
}

/// One message from one producer.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Data or control marker.
    pub kind: PacketKind,
    /// Producer (simulation rank) id.
    pub producer: usize,
    /// Timestep index.
    pub step: u64,
    /// Simulation time.
    pub time: f64,
    /// Virtual time at which the payload is available at the reader.
    pub t_avail: f64,
    /// Producer's trace-context word ([`trace::pack_ctx`] via
    /// `Comm::trace_ctx`); 0 when the producer is untraced.
    pub ctx: u64,
    /// Producer's virtual clock when the packet left it.
    pub t_sent: f64,
    /// Marshaled bytes (empty for control markers).
    pub payload: Vec<u8>,
}

/// Retry/backoff/circuit-breaker parameters for one writer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriterConfig {
    /// Data-plane transmission attempts per step before giving up.
    pub max_attempts: u32,
    /// Virtual seconds waited before declaring an unacknowledged frame
    /// lost.
    pub ack_timeout: f64,
    /// First retry backoff in virtual seconds (doubles per attempt).
    pub backoff_base: f64,
    /// Backoff ceiling in virtual seconds.
    pub backoff_cap: f64,
    /// Consecutive failed steps that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// Real-time safety bound on a blocking enqueue (wedged-reader guard),
    /// in milliseconds. Virtual-time back-pressure is modeled separately
    /// through the reader's drain time.
    pub enqueue_timeout_ms: u64,
}

impl Default for WriterConfig {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            ack_timeout: 5.0e-4,
            backoff_base: 1.0e-4,
            backoff_cap: 1.0e-2,
            breaker_threshold: 3,
            enqueue_timeout_ms: 10_000,
        }
    }
}

impl WriterConfig {
    fn backoff(&self, attempt: u32) -> f64 {
        (self.backoff_base * f64::powi(2.0, attempt as i32)).min(self.backoff_cap)
    }

    fn enqueue_timeout(&self) -> Duration {
        Duration::from_millis(self.enqueue_timeout_ms)
    }
}

/// Successful outcome of one [`SstWriter::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The step was accepted by the staging queue.
    Delivered {
        /// Data-plane attempts used (1 = first try).
        attempts: u32,
    },
    /// The step was dropped by the [`QueuePolicy::DiscardNewest`] policy.
    Discarded,
}

struct ReaderState {
    /// Virtual time at which the reader last drained a packet.
    drain_time: Mutex<f64>,
}

/// Simulation-side handle: sends this rank's payloads to its endpoint.
pub struct SstWriter {
    /// This writer's producer id.
    pub producer: usize,
    /// The endpoint (reader) index this writer feeds.
    pub reader_index: usize,
    tx: Box<dyn WireTx>,
    link: StagingLink,
    policy: QueuePolicy,
    config: WriterConfig,
    faults: Arc<FaultPlan>,
    state: Arc<ReaderState>,
    consecutive_failures: u32,
    breaker_open: bool,
    steps_written: u64,
    steps_dropped: u64,
    steps_failed: u64,
    retries: u64,
    corrupt_frames: u64,
    bytes_sent: u64,
}

impl SstWriter {
    /// Stage one step's payload. Charges marshal-transfer time to the
    /// writer's clock; retries (with virtual-time backoff) through link
    /// faults; under back-pressure, also charges the stall time.
    ///
    /// # Errors
    /// [`WriteError`] carrying the failure kind and the payload back to
    /// the caller (fatal errors mean the endpoint is gone — degrade).
    pub fn write(
        &mut self,
        comm: &mut commsim::Comm,
        step: u64,
        time: f64,
        payload: Vec<u8>,
    ) -> Result<WriteOutcome, WriteError> {
        if self.breaker_open {
            return Err(WriteError {
                error: TransportError::CircuitOpen,
                payload,
            });
        }
        let nbytes = payload.len() as u64;
        // Control announcement + pipelined RDMA put: the writer pays the
        // control latency and its share of injection, not the full
        // transfer (SST overlaps the bulk move with the simulation).
        comm.advance(self.link.control_latency);
        let mut attempt = 0u32;
        loop {
            match self.faults.attempt_fate(self.producer, step, attempt) {
                commsim::AttemptFate::Deliver { extra_delay } => {
                    let packet = Packet {
                        kind: PacketKind::Data,
                        producer: self.producer,
                        step,
                        time,
                        t_avail: comm.now() + self.link.transfer_time(nbytes) + extra_delay,
                        ctx: comm.trace_ctx(),
                        t_sent: comm.now(),
                        payload,
                    };
                    return match self.enqueue_data(comm, packet) {
                        Ok(Some(())) => {
                            self.steps_written += 1;
                            self.bytes_sent += nbytes;
                            self.consecutive_failures = 0;
                            Ok(WriteOutcome::Delivered {
                                attempts: attempt + 1,
                            })
                        }
                        Ok(None) => {
                            self.steps_dropped += 1;
                            // Best-effort skip marker so the reader need not
                            // wait for this step (lost if the queue is full).
                            self.control(comm, PacketKind::Skip, step, false);
                            Ok(WriteOutcome::Discarded)
                        }
                        Err((error, payload)) => {
                            self.fail_step(comm, step, attempt + 1, error, payload)
                        }
                    };
                }
                commsim::AttemptFate::Drop => {
                    // Lost on the wire: wait out the ack timeout, back off,
                    // retransmit — all in virtual time.
                    let _sp = comm.span("transport/retry");
                    comm.advance(self.config.ack_timeout + self.config.backoff(attempt));
                    self.retries += 1;
                    comm.telemetry().counter("transport/retries").inc();
                    attempt += 1;
                    if attempt >= self.config.max_attempts {
                        return self.fail_step(
                            comm,
                            step,
                            attempt,
                            TransportError::StepLost {
                                step,
                                attempts: attempt,
                            },
                            payload,
                        );
                    }
                }
                commsim::AttemptFate::Corrupt => {
                    // The frame arrives damaged; ship the damaged bytes so
                    // the reader's CRC genuinely rejects them, then pay the
                    // NACK round trip and retransmit.
                    let mut damaged = payload.clone();
                    self.faults
                        .corrupt_payload(&mut damaged, self.producer, step, attempt);
                    self.best_effort_send(
                        comm,
                        Packet {
                            kind: PacketKind::Data,
                            producer: self.producer,
                            step,
                            time,
                            t_avail: comm.now() + self.link.transfer_time(nbytes),
                            ctx: comm.trace_ctx(),
                            t_sent: comm.now(),
                            payload: damaged,
                        },
                    );
                    self.corrupt_frames += 1;
                    let _sp = comm.span("transport/retry");
                    comm.advance(
                        self.link.transfer_time(nbytes)
                            + self.link.control_latency
                            + self.config.backoff(attempt),
                    );
                    self.retries += 1;
                    comm.telemetry().counter("transport/retries").inc();
                    attempt += 1;
                    if attempt >= self.config.max_attempts {
                        return self.fail_step(
                            comm,
                            step,
                            attempt,
                            TransportError::StepLost {
                                step,
                                attempts: attempt,
                            },
                            payload,
                        );
                    }
                }
            }
        }
    }

    /// Enqueue a data packet honoring the overflow policy. `Ok(Some(()))`
    /// = accepted, `Ok(None)` = discarded (DiscardNewest), `Err` = the
    /// queue failed with the packet's payload handed back.
    fn enqueue_data(
        &mut self,
        comm: &mut commsim::Comm,
        packet: Packet,
    ) -> Result<Option<()>, (TransportError, Vec<u8>)> {
        let step = packet.step;
        if self.tx.blocking() {
            // Real-socket wire: the OS send buffer is the queue and TCP
            // flow control is the back-pressure, so there is no cheap
            // "full" probe (DiscardNewest degrades to blocking here). Hold
            // the socket write outside the scheduler's run token.
            let timeout = self.config.enqueue_timeout();
            let tx = &mut self.tx;
            return match comm.external_wait(|| tx.send_timeout(packet, timeout)) {
                Ok(()) => Ok(Some(())),
                Err(WireSendError::Timeout(p)) => {
                    Err((TransportError::Backpressure { step }, p.payload))
                }
                Err(WireSendError::Full(p)) | Err(WireSendError::Closed(p)) => {
                    Err((TransportError::Disconnected, p.payload))
                }
            };
        }
        match self.tx.try_send(packet) {
            Ok(()) => Ok(Some(())),
            Err(WireSendError::Full(p)) => match self.policy {
                QueuePolicy::Block => {
                    let _sp = comm.span("transport/backpressure");
                    // The reader lives in another world; block outside the
                    // event scheduler's run token so its ranks can drain us.
                    let timeout = self.config.enqueue_timeout();
                    let tx = &mut self.tx;
                    let sent = comm.external_wait(|| tx.send_timeout(p, timeout));
                    match sent {
                        Ok(()) => {
                            // Real back-pressure: the reader freed a slot.
                            // Read the drain time *after* the blocking send —
                            // the pre-block value is stale under a slow
                            // reader.
                            let drain = *self.state.drain_time.lock();
                            if drain > comm.now() {
                                comm.advance(drain - comm.now());
                            }
                            Ok(Some(()))
                        }
                        Err(WireSendError::Timeout(p)) => {
                            Err((TransportError::Backpressure { step }, p.payload))
                        }
                        Err(WireSendError::Full(p)) | Err(WireSendError::Closed(p)) => {
                            Err((TransportError::Disconnected, p.payload))
                        }
                    }
                }
                QueuePolicy::DiscardNewest => Ok(None),
            },
            Err(WireSendError::Timeout(p)) | Err(WireSendError::Closed(p)) => {
                Err((TransportError::Disconnected, p.payload))
            }
        }
    }

    /// Fire-and-forget send (damaged frames, best-effort skips); routed
    /// off-token when the wire blocks for real.
    fn best_effort_send(&mut self, comm: &commsim::Comm, packet: Packet) {
        if self.tx.blocking() {
            let timeout = self.config.enqueue_timeout();
            let tx = &mut self.tx;
            let _ = comm.external_wait(|| tx.send_timeout(packet, timeout));
        } else {
            let _ = self.tx.try_send(packet);
        }
    }

    /// Send a control marker. Control rides SST's reliable TCP plane: when
    /// `reliable`, a full queue is waited out (bounded); otherwise the
    /// marker is best-effort.
    fn control(&mut self, comm: &commsim::Comm, kind: PacketKind, step: u64, reliable: bool) {
        let packet = Packet {
            kind,
            producer: self.producer,
            step,
            time: 0.0,
            t_avail: comm.now() + self.link.control_latency,
            ctx: comm.trace_ctx(),
            t_sent: comm.now(),
            payload: Vec::new(),
        };
        if self.tx.blocking() {
            // Socket control plane: the write is bounded-blocking either
            // way; reliability falls out of TCP itself.
            self.best_effort_send(comm, packet);
            return;
        }
        match self.tx.try_send(packet) {
            Ok(()) => {}
            Err(WireSendError::Full(p)) if reliable => {
                let timeout = self.config.enqueue_timeout();
                let tx = &mut self.tx;
                let _ = comm.external_wait(|| tx.send_timeout(p, timeout));
            }
            Err(_) => {}
        }
    }

    /// Account one failed step: notify the reader, advance the breaker,
    /// and hand the payload back to the caller.
    fn fail_step(
        &mut self,
        comm: &mut commsim::Comm,
        step: u64,
        attempts: u32,
        error: TransportError,
        payload: Vec<u8>,
    ) -> Result<WriteOutcome, WriteError> {
        let _ = attempts;
        self.steps_failed += 1;
        if error == TransportError::Disconnected {
            // Unrecoverable: the reader is gone, nothing can be notified.
            self.breaker_open = true;
            comm.telemetry_event(
                commsim::EventKind::CircuitBreakerOpen,
                Some(step),
                "endpoint disconnected",
            );
            return Err(WriteError { error, payload });
        }
        // Reliable control plane: tell the reader this step will not
        // arrive so it can resolve the step as partial instead of hanging.
        self.control(comm, PacketKind::Skip, step, true);
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.config.breaker_threshold {
            self.breaker_open = true;
            comm.telemetry_event(
                commsim::EventKind::CircuitBreakerOpen,
                Some(step),
                format!("{} consecutive failures", self.consecutive_failures),
            );
            self.control(comm, PacketKind::Detach, step, true);
            return Err(WriteError {
                error: TransportError::CircuitOpen,
                payload,
            });
        }
        Err(WriteError { error, payload })
    }

    /// Steps accepted by the queue.
    pub fn steps_written(&self) -> u64 {
        self.steps_written
    }

    /// Steps dropped (DiscardNewest only).
    pub fn steps_dropped(&self) -> u64 {
        self.steps_dropped
    }

    /// Steps that exhausted their transmission attempts or hit a fatal
    /// queue failure.
    pub fn steps_failed(&self) -> u64 {
        self.steps_failed
    }

    /// Data-plane loss events endured (timed-out and NACKed attempts).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Damaged frames put on the wire (each later CRC-rejected).
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// True once the circuit breaker has tripped (endpoint presumed dead).
    pub fn breaker_open(&self) -> bool {
        self.breaker_open
    }

    /// Payload bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }
}

/// One step handed to the endpoint: the packets that arrived plus the
/// producers that never delivered (empty when the step is complete).
#[derive(Debug, Clone)]
pub struct StepDelivery {
    /// Timestep index.
    pub step: u64,
    /// Simulation time (0.0 when no packet arrived at all).
    pub time: f64,
    /// Data packets that arrived intact, one per contributing producer.
    pub packets: Vec<Packet>,
    /// Producers that contributed nothing (skipped, detached, or crashed
    /// away), ascending.
    pub missing: Vec<usize>,
}

impl StepDelivery {
    /// True when every producer contributed.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Endpoint-side handle: drains payloads from this reader's producers.
pub struct SstReader {
    /// This reader's index.
    pub index: usize,
    rx: Option<Box<dyn WireRx>>,
    state: Arc<ReaderState>,
    /// Number of producers feeding this reader.
    pub n_producers: usize,
    producers: Vec<usize>,
    pending: BTreeMap<u64, Vec<Packet>>,
    skipped: BTreeMap<u64, BTreeSet<usize>>,
    detached: BTreeSet<usize>,
    faults: Arc<FaultPlan>,
    crashed: bool,
    last_delivered: Option<u64>,
    queue_accountant: Option<Accountant>,
    bytes_received: u64,
    corrupt_rejected: u64,
    complete_steps: u64,
    partial_steps: u64,
    short_reads: u64,
}

impl SstReader {
    /// Attach a memory accountant for staged-but-unprocessed bytes.
    pub fn set_accountant(&mut self, a: Accountant) {
        self.queue_accountant = Some(a);
    }

    /// Receive the next step. Blocks until the earliest outstanding step is
    /// *resolved*: every producer has contributed a packet, skipped the
    /// step, or detached — so a step with failed producers is returned as a
    /// partial [`StepDelivery`] (with [`StepDelivery::missing`] naming
    /// them) instead of hanging forever. Returns `Ok(None)` when every
    /// writer has disconnected and the backlog is drained, or when this
    /// endpoint's scheduled crash fires.
    ///
    /// # Errors
    /// [`TransportError::ShortRead`] when a wire connection dies mid-frame
    /// (real sockets only — the channel engine cannot truncate). The
    /// truncated frame is gone, but the reader stays usable: call again to
    /// keep draining the surviving connections. Each occurrence is counted
    /// under `transport/short_reads`.
    pub fn recv_step(
        &mut self,
        comm: &mut commsim::Comm,
    ) -> Result<Option<StepDelivery>, TransportError> {
        loop {
            if self.crashed {
                return Ok(None);
            }
            if let Some(delivery) = self.pop_deliverable(comm) {
                if let Some(at) = self.faults.crash_step(self.index) {
                    if delivery.step >= at {
                        comm.telemetry_event(
                            commsim::EventKind::EndpointCrash,
                            Some(at),
                            format!("endpoint {} crashed", self.index),
                        );
                        self.crash();
                        return Ok(None);
                    }
                }
                self.last_delivered = Some(delivery.step);
                return Ok(Some(delivery));
            }
            let Some(rx) = &mut self.rx else {
                return Ok(None);
            };
            // Producers are in a different world; wait off-token so an
            // event-scheduled sim world can make progress toward us.
            let got = comm.external_wait(|| rx.recv_timeout(Duration::from_millis(50)));
            match got {
                Ok(packet) => self.ingest(comm, packet),
                Err(WireRecvError::Timeout) => continue,
                Err(WireRecvError::Closed) => {
                    // Every producer is gone: resolve the whole backlog —
                    // complete steps first-class, stragglers as partials —
                    // instead of dropping completable steps queued behind
                    // an incomplete one.
                    self.rx = None;
                    self.detached.extend(self.producers.iter().copied());
                }
                Err(WireRecvError::ShortRead { wanted, got }) => {
                    // A connection died inside a frame: the frame is lost
                    // for good. Surface it typed — a silent `None` here
                    // would read as a clean end-of-stream.
                    self.short_reads += 1;
                    comm.telemetry().counter("transport/short_reads").inc();
                    return Err(TransportError::ShortRead { wanted, got });
                }
            }
        }
    }

    /// The endpoint process dies: stop consuming and release the channel
    /// so producers observe the disconnect.
    fn crash(&mut self) {
        self.crashed = true;
        self.rx = None;
        // Staged-but-unprocessed bytes die with the process.
        if let Some(a) = &self.queue_accountant {
            let staged: u64 = self
                .pending
                .values()
                .flatten()
                .map(|p| p.payload.len() as u64)
                .sum();
            a.credit_raw(staged);
        }
        self.pending.clear();
        self.skipped.clear();
    }

    fn ingest(&mut self, comm: &mut commsim::Comm, packet: Packet) {
        // Stale messages for already-resolved steps cannot re-open them.
        if packet.kind != PacketKind::Detach {
            if let Some(last) = self.last_delivered {
                if packet.step <= last {
                    return;
                }
            }
        }
        match packet.kind {
            PacketKind::Data => {
                let nbytes = packet.payload.len() as u64;
                self.bytes_received += nbytes;
                // Frame check: one sweep over the payload, then reject
                // damaged frames before they reach the analysis.
                comm.compute_host(nbytes as f64, nbytes as f64);
                if !bp::frame_crc_ok(&packet.payload) {
                    self.corrupt_rejected += 1;
                    return;
                }
                let entry = self.pending.entry(packet.step).or_default();
                if entry.iter().any(|p| p.producer == packet.producer) {
                    return; // duplicate retransmit
                }
                if let Some(a) = &self.queue_accountant {
                    a.charge_raw(nbytes);
                }
                entry.push(packet);
                let staged = self.staged_bytes();
                comm.telemetry()
                    .gauge("transport/queue_depth")
                    .set(staged as f64);
            }
            PacketKind::Skip => {
                self.skipped
                    .entry(packet.step)
                    .or_default()
                    .insert(packet.producer);
            }
            PacketKind::Detach => {
                self.detached.insert(packet.producer);
            }
        }
    }

    /// Resolve and remove the earliest candidate step if every producer is
    /// accounted for. Per-producer FIFO guarantees that if the earliest
    /// candidate is unresolved, later ones are too — so one check suffices.
    fn pop_deliverable(&mut self, comm: &mut commsim::Comm) -> Option<StepDelivery> {
        let step = match (
            self.pending.keys().next().copied(),
            self.skipped.keys().next().copied(),
        ) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return None,
        };
        let empty = Vec::new();
        let packets = self.pending.get(&step).unwrap_or(&empty);
        let skips = self.skipped.get(&step);
        let missing: Vec<usize> = self
            .producers
            .iter()
            .copied()
            .filter(|p| !packets.iter().any(|pkt| pkt.producer == *p))
            .collect();
        let resolved = missing
            .iter()
            .all(|p| skips.is_some_and(|s| s.contains(p)) || self.detached.contains(p));
        if !resolved {
            return None;
        }
        let packets = self.pending.remove(&step).unwrap_or_default();
        self.skipped.remove(&step);
        let time = packets.first().map(|p| p.time).unwrap_or(0.0);
        // Clock: the step is ready when the latest payload lands.
        let t_ready = packets.iter().map(|p| p.t_avail).fold(0.0, f64::max);
        // Causal edge from the critical producer — the one whose payload
        // landed last (lowest producer id among exact ties). Recorded
        // before the advance so t_recv captures the pre-wait clock.
        if let Some(crit) = packets
            .iter()
            .filter(|p| p.t_avail == t_ready)
            .min_by_key(|p| p.producer)
        {
            comm.trace_edge(crit.ctx, crit.t_sent, t_ready, commsim::EdgeKind::Wire);
        }
        if t_ready > comm.now() {
            comm.advance(t_ready - comm.now());
        }
        // Slow-consumer fault: this delivery takes extra virtual time,
        // which back-pressures writers through the published drain time.
        let stall = self.faults.stall_secs(self.index, step);
        if stall > 0.0 {
            comm.telemetry_event(
                commsim::EventKind::FaultInjected,
                Some(step),
                format!("consumer stall {stall}s on endpoint {}", self.index),
            );
            comm.advance(stall);
        }
        *self.state.drain_time.lock() = comm.now();
        if let Some(a) = &self.queue_accountant {
            let bytes: u64 = packets.iter().map(|p| p.payload.len() as u64).sum();
            a.credit_raw(bytes);
        }
        let staged = self.staged_bytes();
        comm.telemetry()
            .gauge("transport/queue_depth")
            .set(staged as f64);
        if missing.is_empty() {
            self.complete_steps += 1;
        } else {
            self.partial_steps += 1;
        }
        Some(StepDelivery {
            step,
            time,
            packets,
            missing,
        })
    }

    /// Bytes currently staged (accepted, not yet delivered).
    fn staged_bytes(&self) -> u64 {
        self.pending
            .values()
            .flatten()
            .map(|p| p.payload.len() as u64)
            .sum()
    }

    /// Total payload bytes received (including CRC-rejected frames).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Frames rejected by the CRC check.
    pub fn corrupt_rejected(&self) -> u64 {
        self.corrupt_rejected
    }

    /// Steps delivered with every producer present.
    pub fn complete_steps(&self) -> u64 {
        self.complete_steps
    }

    /// Steps delivered with at least one producer missing.
    pub fn partial_steps(&self) -> u64 {
        self.partial_steps
    }

    /// Wire frames lost to mid-frame connection deaths.
    pub fn short_reads(&self) -> u64 {
        self.short_reads
    }

    /// True once this endpoint's scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }
}

/// Factory wiring `n_writers` producers to `n_readers` endpoints
/// (`n_writers` must be a multiple of `n_readers`; the paper uses 4:1
/// *nodes*, i.e. producer `i` feeds reader `i / (n_writers/n_readers)`).
pub struct StagingNetwork;

impl StagingNetwork {
    /// Build the writer and reader handles with no fault injection and
    /// default retry parameters. `capacity` is the per-reader queue bound
    /// in packets.
    ///
    /// # Panics
    /// If `n_writers % n_readers != 0` or either is zero.
    pub fn build(
        n_writers: usize,
        n_readers: usize,
        capacity: usize,
        link: StagingLink,
        policy: QueuePolicy,
    ) -> (Vec<SstWriter>, Vec<SstReader>) {
        Self::build_faulty(
            n_writers,
            n_readers,
            capacity,
            link,
            policy,
            FaultPlan::none(),
            WriterConfig::default(),
        )
    }

    /// Build the network under a seeded [`FaultPlan`] and explicit writer
    /// retry/breaker parameters.
    ///
    /// # Panics
    /// If `n_writers % n_readers != 0` or either is zero.
    pub fn build_faulty(
        n_writers: usize,
        n_readers: usize,
        capacity: usize,
        link: StagingLink,
        policy: QueuePolicy,
        faults: FaultPlan,
        config: WriterConfig,
    ) -> (Vec<SstWriter>, Vec<SstReader>) {
        Self::build_wired(
            n_writers,
            n_readers,
            capacity,
            link,
            policy,
            faults,
            config,
            WireKind::Channel,
        )
        .expect("channel wire cannot fail to build")
    }

    /// Build the network over the selected [`WireKind`]: the in-process
    /// channel engine (exactly [`Self::build_faulty`]) or real loopback
    /// TCP sockets, one listener per reader, one connection per writer.
    ///
    /// # Errors
    /// Socket bind/connect failures (tcp only).
    ///
    /// # Panics
    /// If `n_writers % n_readers != 0` or either is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn build_wired(
        n_writers: usize,
        n_readers: usize,
        capacity: usize,
        link: StagingLink,
        policy: QueuePolicy,
        faults: FaultPlan,
        config: WriterConfig,
        wire: WireKind,
    ) -> std::io::Result<(Vec<SstWriter>, Vec<SstReader>)> {
        assert!(n_writers > 0 && n_readers > 0, "need writers and readers");
        assert_eq!(
            n_writers % n_readers,
            0,
            "writers ({n_writers}) must be a multiple of readers ({n_readers})"
        );
        let faults = Arc::new(faults);
        let per_reader = n_writers / n_readers;
        let mut writers = Vec::with_capacity(n_writers);
        let mut readers = Vec::with_capacity(n_readers);
        for r in 0..n_readers {
            let state = Arc::new(ReaderState {
                drain_time: Mutex::new(0.0),
            });
            let (mut txs, rx): (Vec<Box<dyn WireTx>>, Box<dyn WireRx>) = match wire {
                WireKind::Channel => {
                    let (tx, rx) = bounded(capacity);
                    (
                        (0..per_reader)
                            .map(|_| Box::new(ChannelWireTx(tx.clone())) as Box<dyn WireTx>)
                            .collect(),
                        Box::new(ChannelWireRx(rx)),
                    )
                }
                WireKind::Tcp => {
                    let (listener, port) = loopback_listener()?;
                    let rx = TcpWireRx::spawn(listener, per_reader, capacity);
                    let mut txs: Vec<Box<dyn WireTx>> = Vec::with_capacity(per_reader);
                    for _ in 0..per_reader {
                        txs.push(Box::new(TcpWireTx::connect(&format!("127.0.0.1:{port}"))?));
                    }
                    (txs, Box::new(rx))
                }
            };
            for w in (0..per_reader).rev() {
                writers.push(Self::make_writer(
                    r * per_reader + w,
                    r,
                    txs.pop().expect("one tx per writer"),
                    link,
                    policy,
                    config,
                    Arc::clone(&faults),
                    Arc::clone(&state),
                ));
            }
            // The rev/pop dance kept tx ownership simple; restore producer
            // order within this reader's block.
            let base = writers.len() - per_reader;
            writers[base..].reverse();
            readers.push(Self::make_reader(
                r,
                rx,
                state,
                (r * per_reader..(r + 1) * per_reader).collect(),
                Arc::clone(&faults),
            ));
        }
        // `writers` was pushed reader-major which is already producer order.
        Ok((writers, readers))
    }

    /// Standalone TCP writer for a multi-process deployment: connects to a
    /// reader's wire listener at `addr`.
    ///
    /// # Errors
    /// Socket connect failures.
    pub fn tcp_writer(
        addr: &str,
        producer: usize,
        link: StagingLink,
        policy: QueuePolicy,
        faults: FaultPlan,
        config: WriterConfig,
    ) -> std::io::Result<SstWriter> {
        Ok(Self::make_writer(
            producer,
            0,
            Box::new(TcpWireTx::connect(addr)?),
            link,
            policy,
            config,
            Arc::new(faults),
            Arc::new(ReaderState {
                drain_time: Mutex::new(0.0),
            }),
        ))
    }

    /// Standalone TCP reader for a multi-process deployment: accepts
    /// `producers.len()` writer connections off `listener`.
    pub fn tcp_reader(
        listener: std::net::TcpListener,
        producers: Vec<usize>,
        capacity: usize,
        faults: FaultPlan,
    ) -> SstReader {
        let n = producers.len();
        Self::make_reader(
            0,
            Box::new(TcpWireRx::spawn(listener, n, capacity)),
            Arc::new(ReaderState {
                drain_time: Mutex::new(0.0),
            }),
            producers,
            Arc::new(faults),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn make_writer(
        producer: usize,
        reader_index: usize,
        tx: Box<dyn WireTx>,
        link: StagingLink,
        policy: QueuePolicy,
        config: WriterConfig,
        faults: Arc<FaultPlan>,
        state: Arc<ReaderState>,
    ) -> SstWriter {
        SstWriter {
            producer,
            reader_index,
            tx,
            link,
            policy,
            config,
            faults,
            state,
            consecutive_failures: 0,
            breaker_open: false,
            steps_written: 0,
            steps_dropped: 0,
            steps_failed: 0,
            retries: 0,
            corrupt_frames: 0,
            bytes_sent: 0,
        }
    }

    fn make_reader(
        index: usize,
        rx: Box<dyn WireRx>,
        state: Arc<ReaderState>,
        producers: Vec<usize>,
        faults: Arc<FaultPlan>,
    ) -> SstReader {
        SstReader {
            index,
            rx: Some(rx),
            state,
            n_producers: producers.len(),
            producers,
            pending: BTreeMap::new(),
            skipped: BTreeMap::new(),
            detached: BTreeSet::new(),
            faults,
            crashed: false,
            last_delivered: None,
            queue_accountant: None,
            bytes_received: 0,
            corrupt_rejected: 0,
            complete_steps: 0,
            partial_steps: 0,
            short_reads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{run_ranks_with_state, EndpointCrash, LinkFaultSpec, MachineModel};

    fn payload_for(i: usize) -> Vec<u8> {
        // A CRC-framed payload so the reader's frame check passes.
        let mut body = vec![i as u8; 100];
        let crc = bp::crc32(&body).to_le_bytes();
        body.extend_from_slice(&crc);
        body
    }

    #[test]
    fn four_to_one_mapping() {
        let (writers, readers) =
            StagingNetwork::build(8, 2, 4, StagingLink::test_tiny(), QueuePolicy::Block);
        assert_eq!(writers.len(), 8);
        assert_eq!(readers.len(), 2);
        for (i, w) in writers.iter().enumerate() {
            assert_eq!(w.producer, i);
            assert_eq!(w.reader_index, i / 4);
        }
        assert_eq!(readers[0].n_producers, 4);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_divisible_mapping_rejected() {
        StagingNetwork::build(5, 2, 4, StagingLink::test_tiny(), QueuePolicy::Block);
    }

    #[test]
    fn writer_to_reader_step_assembly() {
        // 2 writers → 1 reader; reader assembles both packets per step.
        let (writers, readers) =
            StagingNetwork::build(2, 1, 8, StagingLink::test_tiny(), QueuePolicy::Block);
        let handle = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
                let i = comm.rank();
                for step in 0..3u64 {
                    w.write(comm, step, step as f64 * 0.1, payload_for(i))
                        .unwrap();
                }
            })
        });
        let result =
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut steps = Vec::new();
                while let Some(d) = reader.recv_step(comm).unwrap() {
                    assert!(d.is_complete());
                    assert_eq!(d.packets.len(), 2);
                    steps.push((d.step, d.time));
                }
                (steps, comm.now(), reader.bytes_received())
            });
        handle.join().unwrap();
        let (steps, t, bytes) = result[0].clone();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].0, 0);
        assert_eq!(steps[2].0, 2);
        assert!((steps[1].1 - 0.1).abs() < 1e-12);
        assert!(t > 0.0, "reader clock advances to arrival times");
        assert_eq!(bytes, 624, "6 packets × 104 framed bytes");
    }

    #[test]
    fn discard_policy_drops_when_full() {
        let (writers, readers) = StagingNetwork::build(
            1,
            1,
            2,
            StagingLink::test_tiny(),
            QueuePolicy::DiscardNewest,
        );
        let res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            for step in 0..5u64 {
                w.write(comm, step, 0.0, vec![0; 10]).unwrap();
            }
            (w.steps_written(), w.steps_dropped())
        });
        assert_eq!(res[0], (2, 3), "queue holds 2, rest dropped");
        drop(readers);
    }

    #[test]
    fn blocking_policy_applies_backpressure() {
        let (writers, readers) =
            StagingNetwork::build(1, 1, 1, StagingLink::test_tiny(), QueuePolicy::Block);
        // Reader drains slowly with a large virtual clock.
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut n = 0;
                while reader.recv_step(comm).unwrap().is_some() {
                    comm.advance(10.0); // slow consumer: 10 virtual s/step
                    n += 1;
                }
                n
            })
        });
        let writer_times =
            run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
                for step in 0..4u64 {
                    w.write(comm, step, 0.0, payload_for(0)).unwrap();
                }
                (comm.now(), w.steps_written())
            });
        assert_eq!(reader_thread.join().unwrap()[0], 4);
        let (t, written) = writer_times[0];
        assert_eq!(written, 4);
        // The writer must have inherited some of the reader's slowness.
        assert!(t >= 10.0, "backpressure must slow the writer: t = {t}");
    }

    #[test]
    fn reader_accountant_tracks_staged_bytes() {
        let (writers, mut readers) =
            StagingNetwork::build(1, 1, 4, StagingLink::test_tiny(), QueuePolicy::Block);
        let acct = Accountant::new("staging");
        readers[0].set_accountant(acct.clone());
        let framed = payload_for(7);
        let len = framed.len() as u64;
        run_ranks_with_state(MachineModel::test_tiny(), writers, move |comm, mut w| {
            w.write(comm, 0, 0.0, framed.clone()).unwrap();
        });
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let d = reader.recv_step(comm).unwrap().unwrap();
            assert_eq!(d.step, 0);
        });
        // Charged on receive, credited on drain.
        assert_eq!(acct.peak(), len);
        assert_eq!(acct.current(), 0);
    }

    #[test]
    fn dropped_frames_are_retried_and_cost_virtual_time() {
        // Seed 11 with 35% drops: some steps need retransmits, none fail
        // outright with 4 attempts at this rate (verified by determinism —
        // the same seed always yields the same schedule).
        let plan = FaultPlan::with_link(
            11,
            LinkFaultSpec {
                drop_prob: 0.35,
                ..Default::default()
            },
        );
        let (writers, readers) = StagingNetwork::build_faulty(
            1,
            1,
            32,
            StagingLink::test_tiny(),
            QueuePolicy::Block,
            plan,
            WriterConfig::default(),
        );
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut delivered = Vec::new();
                while let Some(d) = reader.recv_step(comm).unwrap() {
                    delivered.push((d.step, d.missing.clone()));
                }
                delivered
            })
        });
        let writer_res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            let mut failed = Vec::new();
            for step in 0..20u64 {
                if w.write(comm, step, 0.0, payload_for(0)).is_err() {
                    failed.push(step);
                }
            }
            (w.retries(), comm.now(), failed)
        });
        let delivered = reader_thread.join().unwrap().remove(0);
        let (retries, t, failed) = writer_res[0].clone();
        assert!(retries > 0, "35% drop rate must force retransmits");
        // Every step is accounted for: delivered complete, or failed
        // writer-side and resolved as an empty partial via its skip marker.
        assert_eq!(delivered.len(), 20);
        for (step, missing) in &delivered {
            if failed.contains(step) {
                assert_eq!(missing, &vec![0], "failed step resolved as partial");
            } else {
                assert!(missing.is_empty());
            }
        }
        // Retries are virtual-time-costed: ack timeouts + backoff.
        let min_cost = retries as f64 * WriterConfig::default().ack_timeout;
        assert!(
            t >= min_cost * 0.5,
            "retries must advance the clock: t={t}, retries={retries}"
        );
    }

    #[test]
    fn corrupt_frames_are_crc_rejected_and_retransmitted() {
        let plan = FaultPlan::with_link(
            7,
            LinkFaultSpec {
                corrupt_prob: 0.3,
                ..Default::default()
            },
        );
        let (writers, readers) = StagingNetwork::build_faulty(
            1,
            1,
            64,
            StagingLink::test_tiny(),
            QueuePolicy::Block,
            plan,
            WriterConfig::default(),
        );
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut complete = 0u64;
                while let Some(d) = reader.recv_step(comm).unwrap() {
                    if d.is_complete() {
                        complete += 1;
                    }
                    for p in &d.packets {
                        assert!(bp::frame_crc_ok(&p.payload), "no damaged frame delivered");
                    }
                }
                (complete, reader.corrupt_rejected())
            })
        });
        let writer_res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            let mut ok = 0u64;
            for step in 0..20u64 {
                if w.write(comm, step, 0.0, payload_for(3)).is_ok() {
                    ok += 1;
                }
            }
            (ok, w.corrupt_frames())
        });
        let (complete, rejected) = reader_thread.join().unwrap()[0];
        let (ok, corrupt_sent) = writer_res[0];
        assert!(corrupt_sent > 0, "30% corruption must damage some frames");
        assert!(rejected > 0, "reader must CRC-reject damaged frames");
        assert!(rejected <= corrupt_sent, "rejects only what was damaged");
        assert_eq!(complete, ok, "every accepted step arrives intact");
    }

    #[test]
    fn disconnect_trips_breaker_instead_of_panicking() {
        let (writers, readers) =
            StagingNetwork::build(1, 1, 2, StagingLink::test_tiny(), QueuePolicy::Block);
        drop(readers); // endpoint dies before the first write
        let res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            let first = w.write(comm, 1, 0.0, payload_for(0));
            let second = w.write(comm, 2, 0.0, payload_for(0));
            (
                first.unwrap_err().error,
                second.unwrap_err().error,
                w.breaker_open(),
            )
        });
        let (first, second, open) = res[0].clone();
        assert_eq!(first, TransportError::Disconnected);
        assert_eq!(
            second,
            TransportError::CircuitOpen,
            "breaker open after disconnect"
        );
        assert!(open);
    }

    #[test]
    fn breaker_trips_after_consecutive_step_failures() {
        // 100% drops: every step exhausts its attempts; the third failure
        // trips the breaker and later writes fail fast.
        let plan = FaultPlan::with_link(
            1,
            LinkFaultSpec {
                drop_prob: 1.0,
                ..Default::default()
            },
        );
        let cfg = WriterConfig::default();
        let (writers, readers) = StagingNetwork::build_faulty(
            1,
            1,
            8,
            StagingLink::test_tiny(),
            QueuePolicy::Block,
            plan,
            cfg,
        );
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut log = Vec::new();
                while let Some(d) = reader.recv_step(comm).unwrap() {
                    log.push((d.step, d.missing.clone()));
                }
                log
            })
        });
        let res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            let errors: Vec<_> = (1..=5u64)
                .map(|s| w.write(comm, s, 0.0, payload_for(0)).unwrap_err().error)
                .collect();
            (errors, w.steps_failed(), w.retries())
        });
        let log = reader_thread.join().unwrap().remove(0);
        let (errors, failed, retries) = res[0].clone();
        assert!(matches!(errors[0], TransportError::StepLost { .. }));
        assert!(matches!(errors[1], TransportError::StepLost { .. }));
        assert_eq!(
            errors[2],
            TransportError::CircuitOpen,
            "third failure trips"
        );
        assert_eq!(
            errors[3],
            TransportError::CircuitOpen,
            "fail-fast after trip"
        );
        assert_eq!(errors[4], TransportError::CircuitOpen);
        assert_eq!(failed, 3, "post-trip writes are not new step failures");
        assert_eq!(retries, 3 * 4, "3 steps × 4 dropped attempts each");
        // Steps 1–2 resolved as partial via skip markers; the detach at
        // step 3 resolves it too; steps 4–5 were never announced.
        assert_eq!(log, vec![(1, vec![0]), (2, vec![0]), (3, vec![0])]);
    }

    #[test]
    fn endpoint_crash_fault_stops_reader_and_writers_survive() {
        let plan = FaultPlan {
            crashes: vec![EndpointCrash {
                endpoint: 0,
                at_step: 3,
            }],
            ..FaultPlan::none()
        };
        let (writers, readers) = StagingNetwork::build_faulty(
            1,
            1,
            2,
            StagingLink::test_tiny(),
            QueuePolicy::Block,
            plan,
            WriterConfig::default(),
        );
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                let mut steps = Vec::new();
                while let Some(d) = reader.recv_step(comm).unwrap() {
                    steps.push(d.step);
                }
                (steps, reader.crashed())
            })
        });
        let res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            let mut delivered = 0u64;
            let mut fatal = 0u64;
            for step in 1..=8u64 {
                match w.write(comm, step, 0.0, payload_for(0)) {
                    Ok(_) => delivered += 1,
                    Err(e) => {
                        assert!(e.error.is_fatal(), "crash surfaces as a fatal error");
                        fatal += 1;
                    }
                }
            }
            (delivered, fatal)
        });
        let (steps, crashed) = reader_thread.join().unwrap().remove(0);
        assert!(crashed);
        assert_eq!(steps, vec![1, 2], "nothing at or after the crash step");
        let (delivered, fatal) = res[0];
        assert!(fatal > 0, "writers must notice the dead endpoint");
        assert_eq!(delivered + fatal, 8, "every write accounted for, no panic");
    }

    #[test]
    fn consumer_stall_fault_backpressures_writers() {
        use commsim::ConsumerStall;
        let plan = FaultPlan {
            stalls: vec![ConsumerStall {
                endpoint: 0,
                at_step: 1,
                seconds: 25.0,
            }],
            ..FaultPlan::none()
        };
        let (writers, readers) = StagingNetwork::build_faulty(
            1,
            1,
            1,
            StagingLink::test_tiny(),
            QueuePolicy::Block,
            plan,
            WriterConfig::default(),
        );
        let reader_thread = std::thread::spawn(move || {
            run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
                while reader.recv_step(comm).unwrap().is_some() {}
                comm.now()
            })
        });
        let res = run_ranks_with_state(MachineModel::test_tiny(), writers, |comm, mut w| {
            for step in 1..=4u64 {
                w.write(comm, step, 0.0, payload_for(0)).unwrap();
            }
            comm.now()
        });
        let reader_t = reader_thread.join().unwrap()[0];
        assert!(
            reader_t >= 25.0,
            "stall advances the reader clock: {reader_t}"
        );
        assert!(
            res[0] >= 25.0,
            "stall must back-pressure the writer through the full queue: {}",
            res[0]
        );
    }
}
