//! The simulation-side in-transit analysis: marshal and stage.
//!
//! This is what "NekRS-SENSEI complemented by ADIOS2 for data transport"
//! means on the simulation nodes: the SENSEI analysis slot is occupied by
//! an adaptor that serializes the requested arrays and hands them to the
//! staging engine. The actual visualization happens later on the endpoint
//! — the whole point of the in-transit architecture.
//!
//! # Degradation ladder
//!
//! Staging failures never abort the simulation. A transient failure
//! ([`crate::TransportError::StepLost`] /
//! [`crate::TransportError::Backpressure`]) loses that step and keeps
//! streaming. A fatal failure (disconnect or an open
//! circuit breaker) means the endpoint is gone: if a fallback directory is
//! configured the adaptor switches to the BP *file* engine — the classic
//! post-hoc workflow — parking the failed payload and every subsequent
//! trigger on disk, and records the switch step for the metrics layer.

use crate::bp;
use crate::engine::SstWriter;
use crate::error::WriteError;
use crate::file_engine::BpFileWriter;
use commsim::Comm;
use insitu::{AnalysisAdaptor, DataAdaptor};
use meshdata::Centering;
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::Arc;

/// One producer's staging outcome, for the metrics layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProducerReport {
    /// Producer (simulation rank) id.
    pub producer: usize,
    /// Steps accepted by the staging queue.
    pub staged_steps: u64,
    /// Steps lost outright (transient failures, or fatal with no fallback).
    pub lost_steps: u64,
    /// Steps parked to the BP file engine after degradation.
    pub parked_steps: u64,
    /// The trigger step at which this producer switched to the file
    /// engine, if it did.
    pub switch_step: Option<u64>,
    /// Data-plane loss events endured (timeouts and NACKed frames).
    pub retries: u64,
}

/// Shared collection point for [`ProducerReport`]s, filled at finalize.
pub type ReportSink = Arc<Mutex<Vec<ProducerReport>>>;

/// Sends the configured arrays over the staging link each trigger.
pub struct TransportAnalysis {
    mesh: String,
    arrays: Vec<String>,
    writer: SstWriter,
    marshal_flops_per_byte: f64,
    fallback_dir: Option<PathBuf>,
    fallback: Option<BpFileWriter>,
    lost_steps: u64,
    parked_steps: u64,
    switch_step: Option<u64>,
    sink: Option<ReportSink>,
}

impl TransportAnalysis {
    /// Stage `arrays` from `mesh` through `writer`.
    pub fn new(mesh: impl Into<String>, arrays: Vec<String>, writer: SstWriter) -> Self {
        Self {
            mesh: mesh.into(),
            arrays,
            writer,
            marshal_flops_per_byte: 1.0,
            fallback_dir: None,
            fallback: None,
            lost_steps: 0,
            parked_steps: 0,
            switch_step: None,
            sink: None,
        }
    }

    /// Degrade to the BP file engine under `dir` when the endpoint dies.
    #[must_use]
    pub fn with_fallback(mut self, dir: PathBuf) -> Self {
        self.fallback_dir = Some(dir);
        self
    }

    /// Push this producer's [`ProducerReport`] into `sink` at finalize.
    pub fn set_report_sink(&mut self, sink: ReportSink) {
        self.sink = Some(sink);
    }

    /// Writer statistics: (steps staged, steps dropped, bytes sent).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.writer.steps_written(),
            self.writer.steps_dropped(),
            self.writer.bytes_sent(),
        )
    }

    /// This producer's staging outcome so far.
    pub fn report(&self) -> ProducerReport {
        ProducerReport {
            producer: self.writer.producer,
            staged_steps: self.writer.steps_written(),
            lost_steps: self.lost_steps,
            parked_steps: self.parked_steps,
            switch_step: self.switch_step,
            retries: self.writer.retries(),
        }
    }

    /// A factory handling `<analysis type="adios-sst" arrays="a,b"/>` that
    /// consumes `writer` on first use (staging connections are established
    /// out-of-band, as SST does with its contact-info files).
    pub fn factory_with_writer(writer: SstWriter) -> insitu::configurable::AdaptorFactory {
        Self::factory_with_recovery(writer, None, None)
    }

    /// Like [`Self::factory_with_writer`], but with the degradation ladder
    /// wired up: a fallback directory for the BP file engine and a sink
    /// that receives the producer's report at finalize.
    pub fn factory_with_recovery(
        writer: SstWriter,
        fallback_dir: Option<PathBuf>,
        sink: Option<ReportSink>,
    ) -> insitu::configurable::AdaptorFactory {
        let slot = Mutex::new(Some((writer, fallback_dir, sink)));
        Box::new(move |spec: &insitu::configurable::AnalysisSpec| {
            if spec.kind != "adios-sst" {
                return Ok(None);
            }
            let (writer, fallback_dir, sink) = slot
                .lock()
                .take()
                .ok_or_else(|| insitu::Error::Config("adios-sst writer already consumed".into()))?;
            let arrays: Vec<String> = spec
                .attr_or("arrays", "pressure,velocity")
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let mut analysis =
                TransportAnalysis::new(spec.attr_or("mesh", "mesh").to_string(), arrays, writer);
            analysis.fallback_dir = fallback_dir;
            analysis.sink = sink;
            Ok(Some(Box::new(analysis) as Box<dyn AnalysisAdaptor>))
        })
    }

    /// Handle one failed write: lose the step, or (on a fatal error with a
    /// fallback configured) switch to the file engine and park the payload.
    fn degrade(&mut self, comm: &mut Comm, step: u64, failure: WriteError) -> insitu::Result<()> {
        let WriteError { error, payload } = failure;
        if !error.is_fatal() {
            self.lost_steps += 1;
            return Ok(());
        }
        let Some(dir) = &self.fallback_dir else {
            // Endpoint dead, nowhere to park: the step is lost, and so is
            // every later one (the breaker fails them fast).
            self.lost_steps += 1;
            return Ok(());
        };
        let _sp = comm.span("transport/park");
        let mut fw = BpFileWriter::create(dir, self.writer.producer).map_err(|e| {
            insitu::Error::Analysis(format!(
                "producer {}: fallback file engine: {e}",
                self.writer.producer
            ))
        })?;
        fw.append(comm, &payload)
            .map_err(|e| insitu::Error::Analysis(format!("fallback append: {e}")))?;
        self.parked_steps += 1;
        self.switch_step = Some(step);
        self.fallback = Some(fw);
        comm.telemetry_event(
            commsim::EventKind::EngineSwitch,
            Some(step),
            format!(
                "producer {} parked to bp file engine: {error}",
                self.writer.producer
            ),
        );
        Ok(())
    }
}

impl AnalysisAdaptor for TransportAnalysis {
    fn name(&self) -> &str {
        "adios-sst"
    }

    fn required_arrays(&self) -> Vec<String> {
        self.arrays.clone()
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> insitu::Result<bool> {
        let copy = comm.span("insitu/copy");
        let mut mb = data.mesh(comm, &self.mesh)?;
        for a in &self.arrays {
            data.add_array(comm, &mut mb, &self.mesh, Centering::Point, a)?;
        }
        drop(copy);
        let marshal = comm.span("transport/marshal");
        let payload = bp::marshal_blocks(comm.rank() as u32, data.time_step(), data.time(), &mb);
        // BP marshaling is a host-side memory sweep.
        comm.compute_host(
            payload.len() as f64 * self.marshal_flops_per_byte,
            payload.len() as f64 * 2.0,
        );
        drop(marshal);
        let step = data.time_step();
        if let Some(fw) = &mut self.fallback {
            let _sp = comm.span("transport/park");
            fw.append(comm, &payload)
                .map_err(|e| insitu::Error::Analysis(format!("fallback append: {e}")))?;
            self.parked_steps += 1;
            return Ok(true);
        }
        let send = comm.span("transport/send");
        match self.writer.write(comm, step, data.time(), payload) {
            Ok(_) => Ok(true),
            Err(failure) => {
                drop(send);
                self.degrade(comm, step, failure)?;
                Ok(true)
            }
        }
    }

    fn finalize(&mut self, _comm: &mut Comm) -> insitu::Result<()> {
        if let Some(sink) = &self.sink {
            sink.lock().push(self.report());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{QueuePolicy, StagingNetwork};
    use crate::link::StagingLink;
    use commsim::MachineModel;
    use insitu::data_adaptor::StaticDataAdaptor;
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64("pressure", vec![1.0; 8]))
            .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn adaptor_stages_payloads_per_trigger() {
        use commsim::run_ranks_with_state;
        use insitu::AnalysisAdaptor as _;
        let (mut writers, readers) =
            StagingNetwork::build(1, 1, 8, StagingLink::test_tiny(), QueuePolicy::Block);
        let analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writers.remove(0));
        let stats = run_ranks_with_state(
            MachineModel::test_tiny(),
            vec![analysis],
            |comm, mut analysis| {
                let mut da = StaticDataAdaptor::new("mesh", block(0, 1), 0.5, 9);
                analysis.execute(comm, &mut da).unwrap();
                analysis.execute(comm, &mut da).unwrap();
                analysis.stats()
            },
        );
        let (written, dropped, bytes) = stats[0];
        assert_eq!(written, 2);
        assert_eq!(dropped, 0);
        assert!(bytes > 0);
        // The endpoint can unmarshal what was staged.
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let d = reader.recv_step(comm).unwrap().unwrap();
            assert_eq!(d.step, 9);
            assert_eq!(d.time, 0.5);
            let data = crate::bp::unmarshal_blocks(&d.packets[0].payload).unwrap();
            assert_eq!(data.blocks.len(), 1);
            assert!(data.blocks[0]
                .1
                .find_array("pressure", Centering::Point)
                .is_some());
        });
    }

    #[test]
    fn dead_endpoint_degrades_to_file_engine_without_losing_triggers() {
        use commsim::run_ranks_with_state;
        use insitu::AnalysisAdaptor as _;
        let dir = std::env::temp_dir().join(format!(
            "adaptor_fallback_{}_{}",
            std::process::id(),
            line!()
        ));
        let (mut writers, readers) =
            StagingNetwork::build(1, 1, 8, StagingLink::test_tiny(), QueuePolicy::Block);
        drop(readers); // the endpoint dies before the run starts
        let analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writers.remove(0))
            .with_fallback(dir.clone());
        let reports = run_ranks_with_state(
            MachineModel::test_tiny(),
            vec![analysis],
            |comm, mut analysis| {
                for step in 1..=5u64 {
                    let mut da =
                        StaticDataAdaptor::new("mesh", block(0, 1), step as f64 * 0.1, step);
                    assert!(analysis.execute(comm, &mut da).unwrap());
                }
                analysis.report()
            },
        );
        let r = reports[0];
        assert_eq!(r.switch_step, Some(1), "first write hits the dead endpoint");
        assert_eq!(r.parked_steps, 5, "every trigger parked, none lost");
        assert_eq!(r.lost_steps, 0);
        // The parked steps read back through the file engine.
        let mut reader =
            crate::file_engine::BpFileReader::open(&dir.join("producer_00000.bp4l")).unwrap();
        let mut steps = Vec::new();
        while let Some(s) = reader.next_step().unwrap() {
            steps.push(s.step);
        }
        assert_eq!(steps, vec![1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
