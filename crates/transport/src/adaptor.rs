//! The simulation-side in-transit analysis: marshal and stage.
//!
//! This is what "NekRS-SENSEI complemented by ADIOS2 for data transport"
//! means on the simulation nodes: the SENSEI analysis slot is occupied by
//! an adaptor that serializes the requested arrays and hands them to the
//! staging engine. The actual visualization happens later on the endpoint
//! — the whole point of the in-transit architecture.

use crate::bp;
use crate::engine::SstWriter;
use commsim::Comm;
use insitu::{AnalysisAdaptor, DataAdaptor};
use meshdata::Centering;

/// Sends the configured arrays over the staging link each trigger.
pub struct TransportAnalysis {
    mesh: String,
    arrays: Vec<String>,
    writer: SstWriter,
    marshal_flops_per_byte: f64,
}

impl TransportAnalysis {
    /// Stage `arrays` from `mesh` through `writer`.
    pub fn new(mesh: impl Into<String>, arrays: Vec<String>, writer: SstWriter) -> Self {
        Self {
            mesh: mesh.into(),
            arrays,
            writer,
            marshal_flops_per_byte: 1.0,
        }
    }

    /// Writer statistics: (steps staged, steps dropped, bytes sent).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.writer.steps_written(),
            self.writer.steps_dropped(),
            self.writer.bytes_sent(),
        )
    }

    /// A factory handling `<analysis type="adios-sst" arrays="a,b"/>` that
    /// consumes `writer` on first use (staging connections are established
    /// out-of-band, as SST does with its contact-info files).
    pub fn factory_with_writer(writer: SstWriter) -> insitu::configurable::AdaptorFactory {
        let slot = parking_lot::Mutex::new(Some(writer));
        Box::new(move |spec: &insitu::configurable::AnalysisSpec| {
            if spec.kind != "adios-sst" {
                return Ok(None);
            }
            let writer = slot.lock().take().ok_or_else(|| {
                insitu::Error::Config("adios-sst writer already consumed".into())
            })?;
            let arrays: Vec<String> = spec
                .attr_or("arrays", "pressure,velocity")
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            Ok(Some(Box::new(TransportAnalysis::new(
                spec.attr_or("mesh", "mesh").to_string(),
                arrays,
                writer,
            )) as Box<dyn AnalysisAdaptor>))
        })
    }
}

impl AnalysisAdaptor for TransportAnalysis {
    fn name(&self) -> &str {
        "adios-sst"
    }

    fn execute(&mut self, comm: &mut Comm, data: &mut dyn DataAdaptor) -> insitu::Result<bool> {
        let mut mb = data.mesh(comm, &self.mesh)?;
        for a in &self.arrays {
            data.add_array(comm, &mut mb, &self.mesh, Centering::Point, a)?;
        }
        let payload = bp::marshal_blocks(
            comm.rank() as u32,
            data.time_step(),
            data.time(),
            &mb,
        );
        // BP marshaling is a host-side memory sweep.
        comm.compute_host(
            payload.len() as f64 * self.marshal_flops_per_byte,
            payload.len() as f64 * 2.0,
        );
        self.writer
            .write(comm, data.time_step(), data.time(), payload);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{QueuePolicy, StagingNetwork};
    use crate::link::StagingLink;
    use commsim::MachineModel;
    use insitu::data_adaptor::StaticDataAdaptor;
    use meshdata::{CellType, DataArray, MultiBlock, UnstructuredGrid};

    fn block(rank: usize, nranks: usize) -> MultiBlock {
        let mut g = UnstructuredGrid::new();
        for z in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for x in [0.0, 1.0] {
                    g.add_point([x, y, z]);
                }
            }
        }
        g.add_cell(CellType::Hexahedron, &[0, 1, 3, 2, 4, 5, 7, 6]);
        g.add_point_data(DataArray::scalars_f64("pressure", vec![1.0; 8]))
            .unwrap();
        MultiBlock::local(rank, nranks, g)
    }

    #[test]
    fn adaptor_stages_payloads_per_trigger() {
        use commsim::run_ranks_with_state;
        use insitu::AnalysisAdaptor as _;
        let (mut writers, readers) =
            StagingNetwork::build(1, 1, 8, StagingLink::test_tiny(), QueuePolicy::Block);
        let analysis = TransportAnalysis::new("mesh", vec!["pressure".into()], writers.remove(0));
        let stats = run_ranks_with_state(
            MachineModel::test_tiny(),
            vec![analysis],
            |comm, mut analysis| {
                let mut da = StaticDataAdaptor::new("mesh", block(0, 1), 0.5, 9);
                analysis.execute(comm, &mut da).unwrap();
                analysis.execute(comm, &mut da).unwrap();
                analysis.stats()
            },
        );
        let (written, dropped, bytes) = stats[0];
        assert_eq!(written, 2);
        assert_eq!(dropped, 0);
        assert!(bytes > 0);
        // The endpoint can unmarshal what was staged.
        run_ranks_with_state(MachineModel::test_tiny(), readers, |comm, mut reader| {
            let (step, time, packets) = reader.recv_step(comm).unwrap();
            assert_eq!(step, 9);
            assert_eq!(time, 0.5);
            let data = crate::bp::unmarshal_blocks(&packets[0].payload).unwrap();
            assert_eq!(data.blocks.len(), 1);
            assert!(data.blocks[0]
                .1
                .find_array("pressure", Centering::Point)
                .is_some());
        });
    }
}
