//! Live telemetry streaming for follow sessions.
//!
//! A running figure harness or `staging_bench` owns a [`TelemetryHub`]
//! whose instruments are plain atomics. This module streams that hub to
//! `nekstat --follow` clients as **delta snapshots**: each tick, only
//! the metrics that changed since the previous tick go down the wire,
//! serialized as one `nekstat/telemetry-snapshot/v1` JSON document
//! inside a `Telemetry` protocol message. The first tick of a session
//! is always a full snapshot so a late joiner starts from complete
//! state.
//!
//! The streaming threads run on **real time** (the wall clock), read
//! nothing but atomics, and never touch the virtual clock or any
//! `Comm` — attaching, watching, and detaching a follow client is
//! invisible to the deterministic run being observed. A client that
//! disconnects simply kills its session thread at the next write; the
//! run keeps going.

use super::protocol::{self, DownMsg, SessionSpec, TelemetryMsg};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{json, MetricValue, TelemetryHub};

/// Schema tag of one streamed snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "nekstat/telemetry-snapshot/v1";

/// Real-time interval between delta snapshots.
pub const FOLLOW_INTERVAL: Duration = Duration::from_millis(200);

/// Serialize one snapshot document: `seq`, whether it is a `full`
/// snapshot, and the (changed) metrics keyed by instrument name.
pub fn snapshot_json(seq: u64, full: bool, metrics: &[(String, MetricValue)]) -> String {
    let mut o = String::with_capacity(64 + metrics.len() * 48);
    o.push_str("{\"schema\": ");
    json::push_str(&mut o, SNAPSHOT_SCHEMA);
    o.push_str(&format!(", \"seq\": {seq}, \"full\": {full}, \"metrics\": {{"));
    for (i, (name, value)) in metrics.iter().enumerate() {
        if i > 0 {
            o.push_str(", ");
        }
        json::push_str(&mut o, name);
        o.push_str(": ");
        match value {
            MetricValue::Counter(c) => {
                o.push_str(&format!("{{\"kind\": \"counter\", \"value\": {c}}}"));
            }
            MetricValue::Gauge(g) => {
                o.push_str("{\"kind\": \"gauge\", \"value\": ");
                json::push_f64(&mut o, *g);
                o.push('}');
            }
            MetricValue::Histogram(h) => {
                o.push_str(&format!(
                    "{{\"kind\": \"histogram\", \"count\": {}, \"sum\": ",
                    h.count
                ));
                json::push_f64(&mut o, h.sum);
                for (key, v) in [
                    ("p50", h.p50),
                    ("p90", h.p90),
                    ("p95", h.p95),
                    ("p99", h.p99),
                    ("min", h.min),
                    ("max", h.max),
                ] {
                    o.push_str(&format!(", \"{key}\": "));
                    json::push_f64(&mut o, v);
                }
                o.push('}');
            }
        }
    }
    o.push_str("}}");
    o
}

/// Serve one follow session on `stream` until the client disconnects or
/// `stop` is raised. Sends a full snapshot immediately, then one delta
/// snapshot per [`FOLLOW_INTERVAL`] (possibly empty — the empty
/// snapshot doubles as a heartbeat, so a vanished client is detected
/// within one interval even when no metric moves).
pub fn serve_follow(mut stream: TcpStream, hub: &TelemetryHub, stop: &AtomicBool) {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
    let mut prev: Vec<(String, MetricValue)> = Vec::new();
    let mut seq = 0u64;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        let delta = hub.delta_snapshot(&mut prev);
        let msg = DownMsg::Telemetry(TelemetryMsg {
            seq,
            json: snapshot_json(seq, seq == 0, &delta),
        });
        if protocol::write_down(&mut stream, &msg).is_err() || stream.flush().is_err() {
            return;
        }
        seq += 1;
        if stopping {
            // The final delta (flushed above) carried the run's end
            // state; close the stream explicitly.
            let _ = protocol::write_down(&mut stream, &DownMsg::End);
            let _ = stream.flush();
            return;
        }
        std::thread::sleep(FOLLOW_INTERVAL);
    }
}

/// Consumer-side handle on one follow session: connect, pull snapshot
/// documents, drop to detach.
pub struct FollowClient {
    stream: TcpStream,
}

impl FollowClient {
    /// Attach a follow session to a staging service's consumer listener
    /// (or any other socket serving the staging protocol with a live
    /// hub).
    ///
    /// # Errors
    /// Socket connect/write failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        protocol::write_hello(&mut stream, &SessionSpec::default(), 0, true)?;
        Ok(Self { stream })
    }

    /// Wait up to `timeout` for the next snapshot. `Ok(None)` means the
    /// service ended the stream (explicit `End` or a closed socket).
    ///
    /// # Errors
    /// Wire/protocol failures; a plain timeout is `ErrorKind::TimedOut`.
    pub fn next_snapshot(&mut self, timeout: Duration) -> std::io::Result<Option<TelemetryMsg>> {
        self.stream.set_read_timeout(Some(timeout)).ok();
        loop {
            match protocol::read_down(&mut self.stream)? {
                Some(DownMsg::Telemetry(t)) => return Ok(Some(t)),
                // Frames never arrive on a follow session, but skipping
                // them keeps the client robust to a mixed-mode server.
                Some(DownMsg::Frame(_)) => continue,
                Some(DownMsg::End) | None => return Ok(None),
            }
        }
    }
}

/// A standalone real-time follow server: binds nothing itself, accepts
/// follow sessions off the listener it is given, one streaming thread
/// per connection. Used by harnesses that have no staging consumer port
/// (the staging service's own `listen_consumers` multiplexes follow
/// sessions onto the consumer port instead).
pub struct LiveServer {
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl LiveServer {
    /// Start accepting follow sessions on `listener`, streaming `hub`.
    pub fn start(listener: std::net::TcpListener, hub: TelemetryHub) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept = std::thread::spawn(move || {
            listener.set_nonblocking(true).ok();
            loop {
                if stop2.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        stream
                            .set_read_timeout(Some(Duration::from_secs(5)))
                            .ok();
                        let Ok((_, _, follow)) = protocol::read_hello(&mut stream) else {
                            continue;
                        };
                        if !follow {
                            // This listener serves telemetry only.
                            let _ = protocol::write_down(&mut stream, &DownMsg::End);
                            continue;
                        }
                        stream.set_nonblocking(false).ok();
                        let hub = hub.clone();
                        let stop = stop2.clone();
                        std::thread::spawn(move || serve_follow(stream, &hub, &stop));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => return,
                }
            }
        });
        Self {
            stop,
            accept: Some(accept),
        }
    }

    /// Stop accepting and signal every open session to send `End`.
    /// Session threads exit at their next tick.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::loopback_listener;

    #[test]
    fn snapshot_json_is_parseable_and_tagged() {
        let hub = TelemetryHub::default();
        hub.counter("staging/steps").add(3);
        hub.gauge("sem/critical_total").set(1.25);
        hub.histogram("step_time").observe(0.5);
        let mut prev = Vec::new();
        let full = hub.delta_snapshot(&mut prev);
        let doc = json::parse(&snapshot_json(0, true, &full)).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SNAPSHOT_SCHEMA));
        assert_eq!(doc.get("seq").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("full"), Some(&json::Value::Bool(true)));
        let metrics = doc.get("metrics").unwrap();
        let steps = metrics.get("staging/steps").unwrap();
        assert_eq!(steps.get("kind").unwrap().as_str(), Some("counter"));
        assert_eq!(steps.get("value").unwrap().as_u64(), Some(3));
        let hist = metrics.get("step_time").unwrap();
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));

        // Nothing changed: the delta is empty but still a valid document.
        let delta = hub.delta_snapshot(&mut prev);
        assert!(delta.is_empty());
        let doc = json::parse(&snapshot_json(1, false, &delta)).unwrap();
        assert_eq!(doc.get("full"), Some(&json::Value::Bool(false)));
    }

    #[test]
    fn live_server_streams_full_then_delta_and_detach_is_clean() {
        let (listener, port) = loopback_listener().unwrap();
        let hub = TelemetryHub::default();
        hub.counter("staging/steps").add(1);
        let server = LiveServer::start(listener, hub.clone());

        let mut client = FollowClient::connect(&format!("127.0.0.1:{port}")).unwrap();
        let first = client
            .next_snapshot(Duration::from_secs(10))
            .unwrap()
            .expect("initial snapshot");
        assert_eq!(first.seq, 0);
        let doc = json::parse(&first.json).unwrap();
        assert_eq!(doc.get("full"), Some(&json::Value::Bool(true)));
        assert!(doc.get("metrics").unwrap().get("staging/steps").is_some());

        // Bump a metric; a later delta must carry it.
        hub.counter("staging/steps").add(5);
        let mut saw_update = false;
        for _ in 0..50 {
            let Some(snap) = client.next_snapshot(Duration::from_secs(10)).unwrap() else {
                break;
            };
            let doc = json::parse(&snap.json).unwrap();
            if let Some(m) = doc.get("metrics").unwrap().get("staging/steps") {
                assert_eq!(m.get("value").unwrap().as_u64(), Some(6));
                saw_update = true;
                break;
            }
        }
        assert!(saw_update, "delta with updated counter never arrived");

        // Detach by dropping the client; the hub keeps working and the
        // server shuts down cleanly.
        drop(client);
        hub.counter("staging/steps").add(1);
        assert_eq!(hub.counter("staging/steps").get(), 7);
        server.stop();
    }
}
